//! A Chaff-style CDCL SAT solver.
//!
//! This crate reimplements the architecture of the Chaff solver
//! (Moskewicz et al., DAC 2001) that Velev's verification flow relied on:
//!
//! - conflict-driven clause learning with first-UIP cuts and
//!   non-chronological backjumping ([`solver`]);
//! - two-watched-literal Boolean constraint propagation;
//! - VSIDS decision heuristic with periodic decay and phase saving;
//! - Luby restarts and activity-based learnt-clause database reduction;
//! - resource limits (conflicts, propagations, wall-clock) so benchmark
//!   sweeps can reproduce the paper's "out of memory / time" cells
//!   gracefully ([`solver::Limits`]);
//! - CNF representation and DIMACS I/O ([`cnf`], [`dimacs`]);
//! - Tseitin translation from [`eufm`] Boolean DAGs to CNF ([`tseitin`]).
//!
//! # Example
//!
//! ```
//! use sat::cnf::{Cnf, Lit};
//! use sat::solver::{Outcome, Solver};
//!
//! let mut cnf = Cnf::new();
//! let a = cnf.new_var();
//! let b = cnf.new_var();
//! cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
//! cnf.add_clause([Lit::neg(a)]);
//! let mut solver = Solver::from_cnf(&cnf);
//! match solver.solve() {
//!     Outcome::Sat(model) => {
//!         assert!(!model.value(a));
//!         assert!(model.value(b));
//!     }
//!     other => panic!("expected SAT, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod dimacs;
pub mod proof;
pub mod solver;
pub mod tseitin;

pub use cnf::{Cnf, Lit, Var};
pub use solver::{Limits, Model, Outcome, Solver, SolverStats};
pub use tseitin::{Mode, Phase, Translation};
