//! `satcheck` — a minimal DIMACS front end for the CDCL solver.
//!
//! ```text
//! satcheck [--max-conflicts N] [--max-seconds S] [file.cnf]
//! ```
//!
//! Reads DIMACS CNF from the file (or stdin), prints `SATISFIABLE` with a
//! model line, `UNSATISFIABLE`, or `UNKNOWN`, and exits with the
//! conventional status codes 10 / 20 / 0.

use std::io::Read;

use sat::dimacs::from_dimacs;
use sat::solver::{Limits, Outcome, Solver};
use sat::Lit;

fn usage() -> ! {
    eprintln!("usage: satcheck [--max-conflicts N] [--max-seconds S] [file.cnf]");
    std::process::exit(2)
}

fn main() {
    let mut limits = Limits::none();
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-conflicts" => {
                let v = args.next().unwrap_or_else(|| usage());
                limits.max_conflicts = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--max-seconds" => {
                let v = args.next().unwrap_or_else(|| usage());
                limits.max_seconds = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--help" | "-h" => usage(),
            other => {
                if path.is_some() {
                    usage();
                }
                path = Some(other.to_owned());
            }
        }
    }

    let input = match &path {
        Some(p) => std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("satcheck: cannot read {p}: {e}");
            std::process::exit(2)
        }),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| {
                    eprintln!("satcheck: cannot read stdin: {e}");
                    std::process::exit(2)
                });
            buf
        }
    };
    let cnf = from_dimacs(&input).unwrap_or_else(|e| {
        eprintln!("satcheck: {e}");
        std::process::exit(2)
    });

    let mut solver = Solver::from_cnf(&cnf);
    match solver.solve_with_limits(limits) {
        Outcome::Sat(model) => {
            println!("s SATISFIABLE");
            let mut line = String::from("v");
            for i in 0..cnf.num_vars() {
                let var = sat::Var::from_index(i);
                let lit = Lit::with_sign(var, model.value(var));
                let n = i as i64 + 1;
                line.push_str(&format!(" {}", if lit.is_positive() { n } else { -n }));
            }
            line.push_str(" 0");
            println!("{line}");
            std::process::exit(10)
        }
        Outcome::Unsat => {
            println!("s UNSATISFIABLE");
            std::process::exit(20)
        }
        Outcome::Unknown(reason) => {
            println!("s UNKNOWN ({reason:?})");
            std::process::exit(0)
        }
    }
}
