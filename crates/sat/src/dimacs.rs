//! DIMACS CNF reading and writing.

use std::fmt::Write as _;

use crate::cnf::{Cnf, Lit, Var};

/// An error while parsing DIMACS input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// Line number (1-based) where the error occurred.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dimacs parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseDimacsError {}

/// Renders `cnf` in DIMACS format.
pub fn to_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses());
    for clause in cnf.iter() {
        for &lit in clause {
            let n = lit.var().index() as i64 + 1;
            let _ = write!(out, "{} ", if lit.is_positive() { n } else { -n });
        }
        out.push_str("0\n");
    }
    out
}

/// Parses DIMACS input into a [`Cnf`].
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed input: a missing or repeated
/// problem line, non-integer tokens, a literal exceeding the declared
/// variable count, or a clause not terminated by `0`.
pub fn from_dimacs(input: &str) -> Result<Cnf, ParseDimacsError> {
    let mut cnf = Cnf::new();
    let mut declared = false;
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if declared {
                return Err(ParseDimacsError {
                    line: lineno,
                    message: "duplicate problem line".to_owned(),
                });
            }
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(ParseDimacsError {
                    line: lineno,
                    message: "expected `p cnf <vars> <clauses>`".to_owned(),
                });
            }
            let vars: usize =
                parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ParseDimacsError {
                        line: lineno,
                        message: "bad variable count".to_owned(),
                    })?;
            cnf.reserve_vars(vars);
            declared = true;
            continue;
        }
        if !declared {
            return Err(ParseDimacsError {
                line: lineno,
                message: "clause before problem line".to_owned(),
            });
        }
        for tok in line.split_whitespace() {
            let n: i64 = tok.parse().map_err(|_| ParseDimacsError {
                line: lineno,
                message: format!("bad literal `{tok}`"),
            })?;
            if n == 0 {
                cnf.add_clause(current.drain(..));
            } else {
                let idx = usize::try_from(n.unsigned_abs()).expect("literal fits") - 1;
                if idx >= cnf.num_vars() {
                    return Err(ParseDimacsError {
                        line: lineno,
                        message: format!("literal {n} exceeds declared variable count"),
                    });
                }
                current.push(Lit::with_sign(Var::from_index(idx), n > 0));
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError {
            line: input.lines().count(),
            message: "unterminated clause at end of input".to_owned(),
        });
    }
    Ok(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([Lit::pos(a), Lit::neg(b)]);
        cnf.add_clause([Lit::neg(a)]);
        let text = to_dimacs(&cnf);
        let parsed = from_dimacs(&text).expect("parse");
        assert_eq!(parsed.num_vars(), 2);
        assert_eq!(parsed.num_clauses(), 2);
        assert_eq!(to_dimacs(&parsed), text);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let input = "c a comment\n\np cnf 2 1\n1 -2 0\n";
        let cnf = from_dimacs(input).expect("parse");
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_dimacs("1 2 0").is_err());
        assert!(from_dimacs("p cnf 1 1\n2 0").is_err());
        assert!(from_dimacs("p cnf 1 1\n1").is_err());
        assert!(from_dimacs("p cnf x 1\n").is_err());
        assert!(from_dimacs("p cnf 1 1\np cnf 1 1\n").is_err());
        assert!(from_dimacs("p sat 1 1\n").is_err());
    }
}
