//! CNF representation: variables, literals, and clause databases.

use std::fmt;

/// A propositional variable, numbered from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Creates a variable from its 0-based index.
    pub fn from_index(index: usize) -> Self {
        Var(u32::try_from(index).expect("variable index overflow"))
    }

    /// The 0-based index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation, encoded as `var << 1 | sign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `var`.
    #[inline]
    pub fn pos(var: Var) -> Self {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    #[inline]
    pub fn neg(var: Var) -> Self {
        Lit(var.0 << 1 | 1)
    }

    /// Builds a literal with an explicit sign; `positive = false` negates.
    #[inline]
    pub fn with_sign(var: Var, positive: bool) -> Self {
        if positive {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The dense index of this literal (for watch lists).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// A CNF formula under construction: a clause database plus a variable
/// counter.
///
/// Tautological clauses (containing `x` and `!x`) are dropped and duplicate
/// literals within a clause are removed at insertion.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    /// Set when an empty clause is added; the formula is trivially UNSAT.
    contradiction: bool,
}

impl Cnf {
    /// Creates an empty formula with no variables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// The number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The number of clauses stored.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The total number of literal occurrences across all clauses.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }

    /// Whether an empty clause has been added.
    pub fn has_contradiction(&self) -> bool {
        self.contradiction
    }

    /// Adds a clause. Duplicate literals are removed; tautologies are
    /// dropped; an empty clause marks the formula contradictory.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        for &lit in &clause {
            assert!(
                lit.var().index() < self.num_vars,
                "literal {lit} references unallocated var"
            );
        }
        clause.sort_unstable();
        clause.dedup();
        // tautology check: sorted, so x and !x are adjacent
        if clause.windows(2).any(|w| w[0].var() == w[1].var()) {
            return;
        }
        if clause.is_empty() {
            self.contradiction = true;
        }
        self.clauses.push(clause);
    }

    /// Iterates over the clauses.
    pub fn iter(&self) -> impl Iterator<Item = &[Lit]> {
        self.clauses.iter().map(Vec::as_slice)
    }
}

impl<'a> IntoIterator for &'a Cnf {
    type Item = &'a [Lit];
    type IntoIter = std::iter::Map<std::slice::Iter<'a, Vec<Lit>>, fn(&'a Vec<Lit>) -> &'a [Lit]>;

    fn into_iter(self) -> Self::IntoIter {
        self.clauses.iter().map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var::from_index(3);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(Lit::with_sign(v, true), p);
        assert_eq!(Lit::with_sign(v, false), n);
        assert_eq!(p.index(), 6);
        assert_eq!(n.index(), 7);
    }

    #[test]
    fn clause_normalization() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([Lit::pos(a), Lit::pos(a), Lit::pos(b)]);
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.num_literals(), 2);
        // tautology dropped
        cnf.add_clause([Lit::pos(a), Lit::neg(a)]);
        assert_eq!(cnf.num_clauses(), 1);
        // empty clause marks contradiction
        cnf.add_clause([] as [Lit; 0]);
        assert!(cnf.has_contradiction());
    }

    #[test]
    fn display_forms() {
        let v = Var::from_index(0);
        assert_eq!(Lit::pos(v).to_string(), "x0");
        assert_eq!(Lit::neg(v).to_string(), "!x0");
    }
}
