//! The CDCL solver: two-watched-literal propagation, first-UIP learning,
//! VSIDS decisions, Luby restarts, and learnt-clause database reduction.

use std::time::Instant;

use eufm::CancelToken;

use crate::cnf::{Cnf, Lit, Var};
use crate::proof::Proof;

/// Resource limits for a solve call.
///
/// When a limit is hit the solver returns [`Outcome::Unknown`] — this is how
/// the benchmark harness reproduces the paper's "ran out of memory after
/// 18,000 seconds" cells without actually exhausting the machine.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Limits {
    /// Maximum number of conflicts before giving up.
    pub max_conflicts: Option<u64>,
    /// Maximum wall-clock seconds before giving up.
    pub max_seconds: Option<f64>,
    /// Maximum learnt-clause literals held at once (a memory proxy).
    pub max_learnt_literals: Option<u64>,
}

impl Limits {
    /// No limits: run to completion.
    pub fn none() -> Self {
        Limits::default()
    }
}

/// A satisfying assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// The value of `var` in the model.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not part of the solved formula.
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// The value of a literal in the model.
    pub fn lit_value(&self, lit: Lit) -> bool {
        self.value(lit.var()) == lit.is_positive()
    }

    /// The number of variables in the model.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model is empty (zero variables).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// The outcome of a solve call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Satisfiable, with a model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// A resource limit was hit; the reported reason describes which.
    Unknown(LimitReason),
}

impl Outcome {
    /// Whether the outcome is [`Outcome::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, Outcome::Sat(_))
    }

    /// Whether the outcome is [`Outcome::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, Outcome::Unsat)
    }
}

/// Which resource limit interrupted the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitReason {
    /// The conflict budget was exhausted.
    Conflicts,
    /// The wall-clock budget was exhausted.
    Time,
    /// The learnt-literal (memory proxy) budget was exhausted.
    Memory,
    /// The attached [`CancelToken`] tripped (watchdog timeout, client
    /// disconnect, or shutdown drain).
    Cancelled,
}

/// Search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Peak learnt-literal count (memory proxy).
    pub peak_learnt_literals: u64,
}

const UNDEF: i8 = 0;
type ClauseRef = u32;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    activity: f64,
    learnt: bool,
    deleted: bool,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    clause: ClauseRef,
    blocker: Lit,
}

/// A CDCL SAT solver instance.
///
/// Build one with [`Solver::new`] (then [`Solver::add_clause`]) or directly
/// from a [`Cnf`] with [`Solver::from_cnf`], then call [`Solver::solve`].
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    learnt_refs: Vec<ClauseRef>,
    watches: Vec<Vec<Watcher>>,
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    heap: VarHeap,
    phase: Vec<bool>,
    ok: bool,
    stats: SolverStats,
    learnt_literals: u64,
    seen: Vec<bool>,
    cancel: CancelToken,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            learnt_refs: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: VarHeap::new(),
            phase: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
            learnt_literals: 0,
            seen: Vec::new(),
            cancel: CancelToken::new(),
        }
    }

    /// Attaches a cooperative cancellation token. The search polls it at
    /// every conflict and decision (the `Limits`-adjacent check sites)
    /// and returns [`Outcome::Unknown`] with [`LimitReason::Cancelled`]
    /// when it trips.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Creates a solver loaded with all clauses of `cnf`.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut solver = Solver::new();
        while solver.num_vars() < cnf.num_vars() {
            solver.new_var();
        }
        for clause in cnf.iter() {
            solver.add_clause(clause.iter().copied());
        }
        solver
    }

    /// The number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assign.len());
        self.assign.push(UNDEF);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.insert(v, &self.activity);
        v
    }

    /// Search statistics accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    #[inline]
    fn value_var(&self, v: Var) -> i8 {
        self.assign[v.index()]
    }

    #[inline]
    fn value_lit(&self, l: Lit) -> i8 {
        let raw = self.assign[l.var().index()];
        if l.is_positive() {
            raw
        } else {
            -raw
        }
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause, performing top-level simplification.
    ///
    /// Returns `false` if the formula has become trivially unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if called after search has begun (decision level > 0) or if a
    /// literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        if !self.ok {
            return false;
        }
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        for &l in &clause {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l} references unallocated var"
            );
        }
        clause.sort_unstable();
        clause.dedup();
        if clause.windows(2).any(|w| w[0].var() == w[1].var()) {
            return true; // tautology
        }
        // remove literals false at level 0; drop clause if satisfied
        clause.retain(|&l| self.value_lit(l) != -1);
        if clause.iter().any(|&l| self.value_lit(l) == 1) {
            return true;
        }
        match clause.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(clause[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(clause, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = ClauseRef::try_from(self.clauses.len()).expect("clause db overflow");
        self.watches[(!lits[0]).index()].push(Watcher {
            clause: cref,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).index()].push(Watcher {
            clause: cref,
            blocker: lits[0],
        });
        if learnt {
            self.learnt_refs.push(cref);
            self.learnt_literals += lits.len() as u64;
            self.stats.learnt_clauses += 1;
            self.stats.peak_learnt_literals =
                self.stats.peak_learnt_literals.max(self.learnt_literals);
        }
        self.clauses.push(Clause {
            lits,
            activity: 0.0,
            learnt,
            deleted: false,
        });
        cref
    }

    fn enqueue(&mut self, lit: Lit, from: Option<ClauseRef>) {
        debug_assert_eq!(self.value_lit(lit), UNDEF);
        let v = lit.var().index();
        self.assign[v] = if lit.is_positive() { 1 } else { -1 };
        self.level[v] = self.decision_level();
        self.reason[v] = from;
        self.phase[v] = lit.is_positive();
        self.trail.push(lit);
    }

    /// Boolean constraint propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut kept = 0;
            let mut i = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Quick satisfied check via blocker.
                if self.value_lit(w.blocker) == 1 {
                    ws[kept] = w;
                    kept += 1;
                    continue;
                }
                let cref = w.clause;
                if self.clauses[cref as usize].deleted {
                    continue; // drop watcher for deleted clause
                }
                // Make sure the false literal (!p) is at position 1.
                let false_lit = !p;
                {
                    let lits = &mut self.clauses[cref as usize].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                }
                let first = self.clauses[cref as usize].lits[0];
                if first != w.blocker && self.value_lit(first) == 1 {
                    ws[kept] = Watcher {
                        clause: cref,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cref as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref as usize].lits[k];
                    if self.value_lit(lk) != -1 {
                        let lits = &mut self.clauses[cref as usize].lits;
                        lits.swap(1, k);
                        let new_watch = lits[1];
                        self.watches[(!new_watch).index()].push(Watcher {
                            clause: cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting under the current assignment.
                ws[kept] = Watcher {
                    clause: cref,
                    blocker: first,
                };
                kept += 1;
                if self.value_lit(first) == -1 {
                    // conflict: keep remaining watchers and bail out
                    while i < ws.len() {
                        ws[kept] = ws[i];
                        kept += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(cref);
                } else {
                    self.enqueue(first, Some(cref));
                }
            }
            ws.truncate(kept);
            self.watches[p.index()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var::from_index(0))]; // placeholder slot 0
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = conflict;
        let mut index = self.trail.len();

        loop {
            self.bump_clause(cref);
            let lits: Vec<Lit> = self.clauses[cref as usize].lits.clone();
            let skip = usize::from(p.is_some());
            for &q in lits.iter().skip(skip) {
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // select next literal to expand from the trail
            loop {
                index -= 1;
                let lit = self.trail[index];
                if self.seen[lit.var().index()] {
                    p = Some(lit);
                    break;
                }
            }
            let pv = p.expect("UIP literal").var().index();
            self.seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p.expect("UIP literal");
                break;
            }
            cref = self.reason[pv].expect("non-decision literal has a reason");
        }

        // Conflict-clause minimization: drop literals implied by the rest.
        let keep: Vec<bool> = learnt
            .iter()
            .enumerate()
            .map(|(i, &l)| i == 0 || !self.literal_redundant(l, &learnt))
            .collect();
        let mut minimized: Vec<Lit> = learnt
            .iter()
            .zip(keep.iter())
            .filter_map(|(&l, &k)| if k { Some(l) } else { None })
            .collect();

        // compute backjump level = max level among non-asserting literals
        let mut back_level = 0;
        if minimized.len() > 1 {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            back_level = self.level[minimized[1].var().index()];
        }

        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (minimized, back_level)
    }

    /// A learnt literal is redundant if every literal of its reason clause
    /// is already in the learnt clause or assigned at level 0 (cheap,
    /// non-recursive minimization).
    fn literal_redundant(&self, lit: Lit, learnt: &[Lit]) -> bool {
        let v = lit.var().index();
        let Some(cref) = self.reason[v] else {
            return false;
        };
        self.clauses[cref as usize].lits.iter().all(|&q| {
            q.var() == lit.var() || self.level[q.var().index()] == 0 || learnt.contains(&q)
        })
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for i in (lim..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assign[v.index()] = UNDEF;
            self.reason[v.index()] = None;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(v, &self.activity);
    }

    fn decay_var_activity(&mut self) {
        self.var_inc /= 0.95;
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref as usize];
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for &r in &self.learnt_refs {
                self.clauses[r as usize].activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_clause_activity(&mut self) {
        self.cla_inc /= 0.999;
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.value_var(v) == UNDEF {
                return Some(v);
            }
        }
        None
    }

    /// Removes the lowest-activity half of the learnt clauses (keeping
    /// binary clauses and clauses that are reasons for current assignments).
    fn reduce_db(&mut self, mut proof: Option<&mut Proof>) {
        let mut refs: Vec<ClauseRef> = self.learnt_refs.clone();
        refs.sort_by(|&a, &b| {
            let ca = self.clauses[a as usize].activity;
            let cb = self.clauses[b as usize].activity;
            ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: Vec<bool> = refs
            .iter()
            .map(|&r| {
                self.clauses[r as usize]
                    .lits
                    .first()
                    .is_some_and(|&l| self.reason[l.var().index()] == Some(r))
            })
            .collect();
        let target = refs.len() / 2;
        let mut removed = 0;
        for (i, &r) in refs.iter().enumerate() {
            if removed >= target {
                break;
            }
            let c = &self.clauses[r as usize];
            if c.deleted || c.lits.len() <= 2 || locked[i] {
                continue;
            }
            self.learnt_literals -= c.lits.len() as u64;
            if let Some(proof) = proof.as_deref_mut() {
                proof.delete_clause(&self.clauses[r as usize].lits);
            }
            self.clauses[r as usize].deleted = true;
            self.clauses[r as usize].lits.clear();
            self.clauses[r as usize].lits.shrink_to_fit();
            removed += 1;
            self.stats.deleted_clauses += 1;
            self.stats.learnt_clauses -= 1;
        }
        self.learnt_refs
            .retain(|&r| !self.clauses[r as usize].deleted);
    }

    /// Solves the formula with no resource limits.
    pub fn solve(&mut self) -> Outcome {
        self.solve_with_limits(Limits::none())
    }

    /// Solves the formula, logging a DRUP-style proof of unsatisfiability
    /// into `proof` (checkable with [`crate::proof::check`]).
    pub fn solve_with_proof(&mut self, proof: &mut Proof) -> Outcome {
        self.solve_inner(Limits::none(), Some(proof))
    }

    /// Solves the formula under the given resource limits.
    pub fn solve_with_limits(&mut self, limits: Limits) -> Outcome {
        self.solve_inner(limits, None)
    }

    fn solve_inner(&mut self, limits: Limits, proof: Option<&mut Proof>) -> Outcome {
        let span = trace::span("sat.cdcl");
        let before = self.stats;
        let outcome = self.solve_loop(limits, proof);
        let after = self.stats;
        span.attr("conflicts", after.conflicts - before.conflicts);
        span.attr("decisions", after.decisions - before.decisions);
        outcome
    }

    fn solve_loop(&mut self, limits: Limits, mut proof: Option<&mut Proof>) -> Outcome {
        if !self.ok {
            return Outcome::Unsat;
        }
        let start = Instant::now();
        let mut max_learnts = (self.clauses.len() / 3).max(100) as f64;
        let mut restart_idx = 0u64;
        let mut conflicts_until_restart = luby(restart_idx) * 100;

        if self.propagate().is_some() {
            self.ok = false;
            return Outcome::Unsat;
        }

        loop {
            match self.propagate() {
                Some(conflict) => {
                    self.stats.conflicts += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        if let Some(proof) = proof.as_deref_mut() {
                            proof.add_clause(&[]);
                        }
                        return Outcome::Unsat;
                    }
                    let (learnt, back_level) = self.analyze(conflict);
                    if let Some(proof) = proof.as_deref_mut() {
                        proof.add_clause(&learnt);
                    }
                    self.backtrack_to(back_level);
                    let asserting = learnt[0];
                    if learnt.len() == 1 {
                        self.enqueue(asserting, None);
                    } else {
                        let cref = self.attach_clause(learnt, true);
                        self.enqueue(asserting, Some(cref));
                    }
                    self.decay_var_activity();
                    self.decay_clause_activity();

                    if let Some(max) = limits.max_conflicts {
                        if self.stats.conflicts >= max {
                            self.backtrack_to(0);
                            return Outcome::Unknown(LimitReason::Conflicts);
                        }
                    }
                    if self.stats.conflicts % 256 == 0 {
                        if let Some(max) = limits.max_seconds {
                            if start.elapsed().as_secs_f64() >= max {
                                self.backtrack_to(0);
                                return Outcome::Unknown(LimitReason::Time);
                            }
                        }
                    }
                    if let Some(max) = limits.max_learnt_literals {
                        if self.learnt_literals >= max {
                            self.backtrack_to(0);
                            return Outcome::Unknown(LimitReason::Memory);
                        }
                    }
                    if self.cancel.is_cancelled() {
                        self.backtrack_to(0);
                        return Outcome::Unknown(LimitReason::Cancelled);
                    }

                    conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                    if self.learnt_refs.len() as f64 >= max_learnts {
                        self.reduce_db(proof.as_deref_mut());
                        max_learnts *= 1.3;
                    }
                }
                None => {
                    if self.cancel.is_cancelled() {
                        self.backtrack_to(0);
                        return Outcome::Unknown(LimitReason::Cancelled);
                    }
                    if conflicts_until_restart == 0 {
                        self.stats.restarts += 1;
                        restart_idx += 1;
                        conflicts_until_restart = luby(restart_idx) * 100;
                        self.backtrack_to(0);
                    }
                    match self.pick_branch_var() {
                        None => {
                            // all variables assigned: SAT
                            let values = self.assign.iter().map(|&a| a == 1).collect::<Vec<bool>>();
                            let model = Model { values };
                            self.backtrack_to(0);
                            return Outcome::Sat(model);
                        }
                        Some(v) => {
                            self.stats.decisions += 1;
                            let lit = Lit::with_sign(v, self.phase[v.index()]);
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(lit, None);
                        }
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
fn luby(mut i: u64) -> u64 {
    // find the finite subsequence containing index i
    let mut k = 1u32;
    loop {
        let len = (1u64 << k) - 1;
        if i + 1 == len {
            return 1 << (k - 1);
        }
        if i + 1 < len {
            i -= (1u64 << (k - 1)) - 1;
            k = 1;
            continue;
        }
        k += 1;
    }
}

/// An indexed max-heap over variable activities.
#[derive(Debug, Default)]
struct VarHeap {
    heap: Vec<Var>,
    pos: Vec<i32>, // -1 when absent
}

impl VarHeap {
    fn new() -> Self {
        VarHeap::default()
    }

    fn insert(&mut self, v: Var, act: &[f64]) {
        while self.pos.len() <= v.index() {
            self.pos.push(-1);
        }
        if self.pos[v.index()] >= 0 {
            return;
        }
        self.pos[v.index()] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn update(&mut self, v: Var, act: &[f64]) {
        if v.index() < self.pos.len() && self.pos[v.index()] >= 0 {
            self.sift_up(self.pos[v.index()] as usize, act);
        }
    }

    fn pop_max(&mut self, act: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty heap");
        self.pos[top.index()] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].index()] = i as i32;
        self.pos[self.heap[j].index()] = j as i32;
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::needless_range_loop)] // index loops are clearest for the PHP grids

    use super::*;

    fn lit(cnf_var: Var, positive: bool) -> Lit {
        Lit::with_sign(cnf_var, positive)
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expected.len() as u64).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause([Lit::pos(a)]));
        assert!(s.solve().is_sat());

        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause([Lit::pos(a)]));
        assert!(!s.add_clause([Lit::neg(a)]));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn pre_cancelled_token_stops_the_search() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        for i in 0..3 {
            assert!(s.add_clause([lit(vars[i], true), lit(vars[i + 1], false)]));
        }
        let token = CancelToken::new();
        token.cancel();
        s.set_cancel(token);
        assert_eq!(
            s.solve(),
            Outcome::Unknown(LimitReason::Cancelled),
            "a tripped token must stop the search before any decision"
        );
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        let clauses: Vec<Vec<Lit>> = vec![
            vec![lit(vars[0], true), lit(vars[1], true)],
            vec![lit(vars[0], false), lit(vars[2], true)],
            vec![lit(vars[1], false), lit(vars[3], true)],
            vec![lit(vars[2], false), lit(vars[3], false)],
        ];
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        match s.solve() {
            Outcome::Sat(model) => {
                for c in &clauses {
                    assert!(c.iter().any(|&l| model.lit_value(l)), "unsatisfied clause");
                }
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j; 3 pigeons, 2 holes
        let mut s = Solver::new();
        let mut p = [[Var::from_index(0); 2]; 3];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause([Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in i1 + 1..3 {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn conflict_limit_interrupts() {
        // PHP(6,5) takes more than 1 conflict
        let n = 6;
        let mut s = Solver::new();
        let mut p = vec![vec![Var::from_index(0); n - 1]; n];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..n - 1 {
            for i1 in 0..n {
                for i2 in i1 + 1..n {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        let out = s.solve_with_limits(Limits {
            max_conflicts: Some(1),
            ..Limits::none()
        });
        assert_eq!(out, Outcome::Unknown(LimitReason::Conflicts));
    }

    #[test]
    fn unsat_chain_of_implications() {
        // x0 -> x1 -> ... -> x9, x0, !x9
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..10).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause([Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        s.add_clause([Lit::pos(vars[0])]);
        s.add_clause([Lit::neg(vars[9])]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn stats_are_populated() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..8).map(|_| s.new_var()).collect();
        for i in 0..7 {
            s.add_clause([Lit::neg(vars[i]), Lit::pos(vars[i + 1])]);
        }
        s.add_clause([Lit::pos(vars[0]), Lit::pos(vars[3])]);
        assert!(s.solve().is_sat());
        assert!(s.stats().decisions > 0 || s.stats().propagations > 0);
    }

    #[test]
    fn from_cnf_matches_incremental() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
        cnf.add_clause([Lit::neg(a), Lit::pos(b)]);
        cnf.add_clause([Lit::neg(b)]);
        let mut s = Solver::from_cnf(&cnf);
        assert!(s.solve().is_unsat());
    }
}

#[cfg(test)]
mod stress_tests {
    #![allow(clippy::needless_range_loop)] // index loops are clearest for the PHP grids

    use super::*;

    /// Deterministic xorshift for reproducible random instances.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn random_3sat(nvars: usize, nclauses: usize, seed: u64) -> (Solver, Vec<Vec<Lit>>) {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..nvars).map(|_| solver.new_var()).collect();
        let mut rng = Rng(seed | 1);
        let mut clauses = Vec::new();
        for _ in 0..nclauses {
            let mut clause = Vec::new();
            for _ in 0..3 {
                let v = vars[(rng.next() as usize) % nvars];
                let sign = rng.next() & 1 == 1;
                clause.push(Lit::with_sign(v, sign));
            }
            solver.add_clause(clause.iter().copied());
            clauses.push(clause);
        }
        (solver, clauses)
    }

    fn brute_force(nvars: usize, clauses: &[Vec<Lit>]) -> bool {
        (0u64..1 << nvars).any(|bits| {
            clauses.iter().all(|c| {
                c.iter()
                    .any(|l| (bits >> l.var().index() & 1 == 1) == l.is_positive())
            })
        })
    }

    #[test]
    fn random_instances_agree_with_brute_force() {
        for seed in 0..60 {
            let nvars = 6 + (seed as usize % 5);
            let nclauses = nvars * 4 + seed as usize % 7;
            let (mut solver, clauses) = random_3sat(nvars, nclauses, seed * 77 + 5);
            let expected = brute_force(nvars, &clauses);
            match solver.solve() {
                Outcome::Sat(model) => {
                    assert!(expected, "seed {seed}: solver SAT but formula UNSAT");
                    for c in &clauses {
                        assert!(c.iter().any(|&l| model.lit_value(l)));
                    }
                }
                Outcome::Unsat => assert!(!expected, "seed {seed}: solver UNSAT but SAT"),
                Outcome::Unknown(r) => panic!("seed {seed}: unexpected limit {r:?}"),
            }
        }
    }

    #[test]
    fn pigeonhole_exercises_learning_and_restarts() {
        // PHP(7,6): hard enough to force restarts and DB behavior.
        let n = 7;
        let mut s = Solver::new();
        let mut p = vec![vec![Var::from_index(0); n - 1]; n];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..n - 1 {
            for i1 in 0..n {
                for i2 in i1 + 1..n {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(s.solve().is_unsat());
        let stats = s.stats();
        assert!(
            stats.conflicts > 100,
            "expected substantial search: {stats:?}"
        );
        assert!(stats.learnt_clauses > 0 || stats.deleted_clauses > 0);
    }

    #[test]
    fn solver_survives_repeated_solves() {
        // Re-solving the same instance stays consistent (level-0 state).
        let (mut solver, _) = random_3sat(8, 20, 42);
        let first = solver.solve().is_sat();
        for _ in 0..3 {
            assert_eq!(solver.solve().is_sat(), first);
        }
    }

    #[test]
    fn incremental_clause_addition_after_solve() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        assert!(s.solve().is_sat());
        // Constrain further: force a = false, b = false -> UNSAT.
        assert!(s.add_clause([Lit::neg(a)]));
        // Either the clause addition already detects the conflict or the
        // next solve does; both paths must end UNSAT.
        let _ = s.add_clause([Lit::neg(b)]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn memory_limit_interrupts() {
        let n = 8;
        let mut s = Solver::new();
        let mut p = vec![vec![Var::from_index(0); n - 1]; n];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..n - 1 {
            for i1 in 0..n {
                for i2 in i1 + 1..n {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        let out = s.solve_with_limits(Limits {
            max_learnt_literals: Some(50),
            ..Limits::none()
        });
        assert_eq!(out, Outcome::Unknown(LimitReason::Memory));
    }
}
