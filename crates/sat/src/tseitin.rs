//! Tseitin translation from propositional EUFM DAGs to CNF.
//!
//! The input must already be purely propositional — the output of the
//! Positive-Equality reduction (no equations, terms, or memories). Each
//! internal gate gets a definition variable; the translation supports both
//! full (bi-implication) definitions and polarity-aware
//! (Plaisted–Greenbaum) definitions that emit only the implications needed
//! for the asserted polarity.

use std::collections::HashMap;

use eufm::{Context, ExprId, IdMap, Node, Sort};

use crate::cnf::{Cnf, Lit, Var};

/// Which definition clauses to emit per gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Emit both directions of every gate definition.
    #[default]
    Full,
    /// Plaisted–Greenbaum: emit only the direction(s) required by the
    /// polarity under which each gate is observed.
    PolarityAware,
}

/// The phase in which the root literal will be asserted.
///
/// Polarity-aware ([`Mode::PolarityAware`]) translation is only
/// satisfiability-preserving for assertions in the declared phase: declare
/// [`Phase::Negative`] when checking validity (the usual case in this
/// project — the correctness formula is valid iff its negation is UNSAT).
/// [`Mode::Full`] is sound for either phase regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Phase {
    /// The root will be asserted true ([`Translation::assert_root`]).
    #[default]
    Positive,
    /// The root will be asserted false
    /// ([`Translation::assert_negated_root`]).
    Negative,
    /// Either assertion may be used; all gate definitions are emitted in
    /// both directions for the root cone.
    Both,
}

/// An error during translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslateError {
    /// Description of the offending node.
    pub message: String,
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tseitin translation error: {}", self.message)
    }
}

impl std::error::Error for TranslateError {}

/// The result of translating a formula.
#[derive(Debug, Clone)]
pub struct Translation {
    /// The generated CNF (without the root assertion).
    pub cnf: Cnf,
    /// Mapping from EUFM propositional variables to CNF variables.
    pub var_map: HashMap<ExprId, Var>,
    /// Mapping from Tseitin gate variables back to the formula node each
    /// one defines (`and`/`or`/`ite` gates). Together with [`Self::var_map`]
    /// and [`Self::const_var`] this accounts for every CNF variable.
    pub gate_map: HashMap<Var, ExprId>,
    /// The variable standing for the constant `true` (allocated only when
    /// the formula contains a constant).
    pub const_var: Option<Var>,
    /// The literal equivalent to the root formula.
    pub root: Lit,
}

impl Translation {
    /// Adds the unit clause asserting the root (use to check satisfiability
    /// of the formula itself).
    pub fn assert_root(&mut self) {
        self.cnf.add_clause([self.root]);
    }

    /// Adds the unit clause asserting the *negation* of the root (use to
    /// check validity: the result is UNSAT iff the formula is valid).
    pub fn assert_negated_root(&mut self) {
        self.cnf.add_clause([!self.root]);
    }
}

const POS: u8 = 0b01;
const NEG: u8 = 0b10;

/// Literal already assigned to `id`; post-order guarantees children
/// are translated before their parents.
fn lit(map: &IdMap<Lit>, id: ExprId) -> Lit {
    map.get(id).expect("child translated before parent")
}

/// Translates the propositional formula `root` to CNF.
///
/// # Errors
///
/// Returns [`TranslateError`] if the DAG contains non-propositional nodes
/// (equations, terms, uninterpreted symbols, memories).
pub fn translate(
    ctx: &Context,
    root: ExprId,
    mode: Mode,
    phase: Phase,
) -> Result<Translation, TranslateError> {
    let span = trace::span("sat.tseitin");
    if ctx.sort(root) != Sort::Bool {
        return Err(TranslateError {
            message: "root is not a formula".to_owned(),
        });
    }
    let root_pol = match phase {
        Phase::Positive => POS,
        Phase::Negative => NEG,
        Phase::Both => POS | NEG,
    };
    // Polarity pre-pass (also validates the DAG is propositional).
    let mut polarity: IdMap<u8> = IdMap::new();
    {
        let mut work: Vec<(ExprId, u8)> = vec![(root, root_pol)];
        while let Some((id, pol)) = work.pop() {
            let seen = polarity.get(id).unwrap_or(0);
            if seen & pol == pol {
                continue;
            }
            polarity.insert(id, seen | pol);
            let flip = |p: u8| ((p & POS) << 1) | ((p & NEG) >> 1);
            match ctx.node(id) {
                Node::True | Node::False | Node::Var(_, Sort::Bool) => {}
                Node::Not(a) => work.push((a, flip(pol))),
                Node::And(xs) | Node::Or(xs) => {
                    for &x in xs.iter() {
                        work.push((x, pol));
                    }
                }
                Node::Ite(c, t, e) if ctx.sort(id) == Sort::Bool => {
                    work.push((c, POS | NEG));
                    work.push((t, pol));
                    work.push((e, pol));
                }
                other => {
                    return Err(TranslateError {
                        message: format!(
                            "non-propositional node `{}` in formula",
                            other.kind_name()
                        ),
                    })
                }
            }
        }
    }

    let mut cnf = Cnf::new();
    let mut var_map: HashMap<ExprId, Var> = HashMap::new();
    let mut gate_map: HashMap<Var, ExprId> = HashMap::new();
    let mut lit_map: IdMap<Lit> = IdMap::new();
    let mut const_true: Option<Var> = None;

    let mut order: Vec<ExprId> = Vec::new();
    ctx.visit_post_order(&[root], |id| order.push(id));

    for id in order {
        let pol = polarity.get(id).unwrap_or(POS | NEG);
        let want_pos = mode == Mode::Full || pol & POS != 0;
        let want_neg = mode == Mode::Full || pol & NEG != 0;
        let lit = match ctx.node(id) {
            Node::True => {
                let v = *const_true.get_or_insert_with(|| cnf.new_var());
                Lit::pos(v)
            }
            Node::False => {
                let v = *const_true.get_or_insert_with(|| cnf.new_var());
                Lit::neg(v)
            }
            Node::Var(_, Sort::Bool) => {
                let v = cnf.new_var();
                var_map.insert(id, v);
                Lit::pos(v)
            }
            Node::Not(a) => !lit(&lit_map, a),
            Node::And(xs) => {
                let v = cnf.new_var();
                gate_map.insert(v, id);
                let t = Lit::pos(v);
                let kids: Vec<Lit> = xs.iter().map(|&x| lit(&lit_map, x)).collect();
                if want_pos {
                    for &k in &kids {
                        cnf.add_clause([!t, k]);
                    }
                }
                if want_neg {
                    let mut clause: Vec<Lit> = kids.iter().map(|&k| !k).collect();
                    clause.push(t);
                    cnf.add_clause(clause);
                }
                t
            }
            Node::Or(xs) => {
                let v = cnf.new_var();
                gate_map.insert(v, id);
                let t = Lit::pos(v);
                let kids: Vec<Lit> = xs.iter().map(|&x| lit(&lit_map, x)).collect();
                if want_pos {
                    let mut clause = kids.clone();
                    clause.push(!t);
                    cnf.add_clause(clause);
                }
                if want_neg {
                    for &k in &kids {
                        cnf.add_clause([!k, t]);
                    }
                }
                t
            }
            Node::Ite(c, a, b) => {
                let v = cnf.new_var();
                gate_map.insert(v, id);
                let t = Lit::pos(v);
                let (c, a, b) = (lit(&lit_map, c), lit(&lit_map, a), lit(&lit_map, b));
                if want_pos {
                    cnf.add_clause([!t, !c, a]);
                    cnf.add_clause([!t, c, b]);
                }
                if want_neg {
                    cnf.add_clause([t, !c, !a]);
                    cnf.add_clause([t, c, !b]);
                }
                t
            }
            other => {
                return Err(TranslateError {
                    message: format!("non-propositional node `{}` in formula", other.kind_name()),
                })
            }
        };
        lit_map.insert(id, lit);
    }

    if let Some(v) = const_true {
        cnf.add_clause([Lit::pos(v)]);
    }

    span.attr("vars", cnf.num_vars());
    span.attr("clauses", cnf.num_clauses());

    Ok(Translation {
        cnf,
        var_map,
        gate_map,
        const_var: const_true,
        root: lit(&lit_map, root),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Outcome, Solver};

    fn solve_validity(ctx: &Context, f: ExprId, mode: Mode) -> bool {
        let mut tr = translate(ctx, f, mode, Phase::Negative).expect("translate");
        tr.assert_negated_root();
        let mut s = Solver::from_cnf(&tr.cnf);
        s.solve().is_unsat()
    }

    #[test]
    fn tautology_is_valid_both_modes() {
        let mut ctx = Context::new();
        let x = ctx.pvar("x");
        let y = ctx.pvar("y");
        // (x & y) | !x | !y
        let a = ctx.and2(x, y);
        let nx = ctx.not(x);
        let ny = ctx.not(y);
        let f = ctx.or([a, nx, ny]);
        assert!(solve_validity(&ctx, f, Mode::Full));
        assert!(solve_validity(&ctx, f, Mode::PolarityAware));
    }

    #[test]
    fn contingent_formula_is_not_valid() {
        let mut ctx = Context::new();
        let x = ctx.pvar("x");
        let y = ctx.pvar("y");
        let f = ctx.or2(x, y);
        assert!(!solve_validity(&ctx, f, Mode::Full));
        assert!(!solve_validity(&ctx, f, Mode::PolarityAware));
    }

    #[test]
    fn model_agrees_with_eufm_evaluation() {
        use eufm::eval::{eval_formula, Assignment, HashModel};
        let mut ctx = Context::new();
        let vars: Vec<ExprId> = (0..5).map(|i| ctx.pvar(&format!("v{i}"))).collect();
        // v0 ? (v1 & !v2) : (v3 | v4)
        let n2 = ctx.not(vars[2]);
        let t = ctx.and2(vars[1], n2);
        let e = ctx.or2(vars[3], vars[4]);
        let f = ctx.ite(vars[0], t, e);
        let mut tr = translate(&ctx, f, Mode::Full, Phase::Positive).expect("translate");
        tr.assert_root();
        let mut s = Solver::from_cnf(&tr.cnf);
        match s.solve() {
            Outcome::Sat(model) => {
                let mut asn = Assignment::default();
                for &v in &vars {
                    let sat_var = tr.var_map[&v];
                    asn.boolean.insert(v, model.value(sat_var));
                }
                let hm = HashModel::new(0, 2);
                assert!(
                    eval_formula(&ctx, f, &asn, &hm),
                    "SAT model must satisfy formula"
                );
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn constants_are_handled() {
        let ctx = Context::new();
        let mut tr =
            translate(&ctx, Context::TRUE, Mode::Full, Phase::Positive).expect("translate");
        tr.assert_root();
        let mut s = Solver::from_cnf(&tr.cnf);
        assert!(s.solve().is_sat());

        let mut tr =
            translate(&ctx, Context::FALSE, Mode::Full, Phase::Positive).expect("translate");
        tr.assert_root();
        let mut s = Solver::from_cnf(&tr.cnf);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn rejects_non_propositional_input() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let eq = ctx.eq(a, b);
        assert!(translate(&ctx, eq, Mode::Full, Phase::Both).is_err());
        assert!(translate(&ctx, a, Mode::Full, Phase::Both).is_err());
    }

    #[test]
    fn every_cnf_var_is_accounted_for() {
        let mut ctx = Context::new();
        let vars: Vec<ExprId> = (0..4).map(|i| ctx.pvar(&format!("v{i}"))).collect();
        let t = ctx.and2(vars[0], vars[1]);
        let e = ctx.or2(vars[1], vars[2]);
        let body = ctx.ite(vars[3], t, e);
        let tr = translate(&ctx, body, Mode::Full, Phase::Both).expect("translate");
        let mut origins = vec![0usize; tr.cnf.num_vars()];
        for &v in tr.var_map.values() {
            origins[v.index()] += 1;
        }
        for &v in tr.gate_map.keys() {
            origins[v.index()] += 1;
        }
        if let Some(v) = tr.const_var {
            origins[v.index()] += 1;
        }
        assert!(
            origins.iter().all(|&n| n == 1),
            "each CNF var must have exactly one origin: {origins:?}"
        );
        // gate vars point back at gate nodes
        for (&v, &node) in &tr.gate_map {
            assert!(v.index() < tr.cnf.num_vars());
            assert!(matches!(
                ctx.node(node),
                Node::And(..) | Node::Or(..) | Node::Ite(..)
            ));
        }
    }

    #[test]
    fn polarity_aware_emits_fewer_clauses() {
        let mut ctx = Context::new();
        let vars: Vec<ExprId> = (0..8).map(|i| ctx.pvar(&format!("v{i}"))).collect();
        let mut f = vars[0];
        for chunk in vars.chunks(2) {
            let c = ctx.and(chunk.iter().copied());
            f = ctx.or2(f, c);
        }
        let full = translate(&ctx, f, Mode::Full, Phase::Positive).expect("translate");
        let pg = translate(&ctx, f, Mode::PolarityAware, Phase::Negative).expect("translate");
        assert!(pg.cnf.num_clauses() < full.cnf.num_clauses());
    }
}
