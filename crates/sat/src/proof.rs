//! RUP/DRUP proof logging and independent checking.
//!
//! Every `Verified` verdict of the verification flow rests on an UNSAT
//! answer from the CDCL solver. To make those answers independently
//! auditable, the solver can log a DRUP-style proof — the sequence of
//! learnt clauses (each derivable by *reverse unit propagation*, RUP, from
//! the formula and the earlier learnt clauses) ending in the empty clause —
//! and [`check`] verifies such a proof with a simple, separate unit
//! propagator that shares no code with the solver's search.
//!
//! # Example
//!
//! ```
//! use sat::cnf::{Cnf, Lit};
//! use sat::proof::{check, Proof};
//! use sat::solver::{Outcome, Solver};
//!
//! let mut cnf = Cnf::new();
//! let a = cnf.new_var();
//! cnf.add_clause([Lit::pos(a)]);
//! cnf.add_clause([Lit::neg(a)]);
//! let mut solver = Solver::from_cnf(&cnf);
//! let mut proof = Proof::new();
//! assert_eq!(solver.solve_with_proof(&mut proof), Outcome::Unsat);
//! check(&cnf, &proof).expect("proof must check");
//! ```

use crate::cnf::{Cnf, Lit};

/// A DRUP-style proof: learnt (addition) steps in derivation order.
/// Deletion steps are recorded but optional for checking (the checker
/// ignores them; they only speed up real DRUP checkers).
#[derive(Debug, Clone, Default)]
pub struct Proof {
    steps: Vec<Step>,
}

#[derive(Debug, Clone)]
enum Step {
    /// A clause asserted to be RUP-derivable.
    Add(Vec<Lit>),
    /// A clause deleted from the active set (advisory).
    Delete(Vec<Lit>),
}

impl Proof {
    /// Creates an empty proof.
    pub fn new() -> Self {
        Proof::default()
    }

    /// Records a learnt clause.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.steps.push(Step::Add(lits.to_vec()));
    }

    /// Records a clause deletion (advisory).
    pub fn delete_clause(&mut self, lits: &[Lit]) {
        self.steps.push(Step::Delete(lits.to_vec()));
    }

    /// The number of addition steps.
    pub fn len(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Add(_)))
            .count()
    }

    /// Whether the proof has no addition steps.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the proof in DRUP text format (`d` lines for deletions,
    /// clause lines ending in `0`).
    pub fn to_drup(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for step in &self.steps {
            let (prefix, lits) = match step {
                Step::Add(l) => ("", l),
                Step::Delete(l) => ("d ", l),
            };
            let _ = write!(out, "{prefix}");
            for &lit in lits {
                let n = lit.var().index() as i64 + 1;
                let _ = write!(out, "{} ", if lit.is_positive() { n } else { -n });
            }
            let _ = writeln!(out, "0");
        }
        out
    }
}

/// Why a proof failed to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// Addition step `step` (0-based among additions) is not RUP-derivable.
    NotRup {
        /// Index of the failing addition step.
        step: usize,
    },
    /// The proof never derives the empty clause (or a clause that is
    /// falsified by unit propagation alone).
    NoContradiction,
}

impl std::fmt::Display for ProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofError::NotRup { step } => {
                write!(
                    f,
                    "proof step {step} is not derivable by reverse unit propagation"
                )
            }
            ProofError::NoContradiction => {
                write!(f, "proof does not derive a contradiction")
            }
        }
    }
}

impl std::error::Error for ProofError {}

/// A deliberately simple unit propagator (no watched literals, no
/// learning) used only for proof checking.
struct Propagator {
    clauses: Vec<Vec<Lit>>,
    num_vars: usize,
}

impl Propagator {
    /// Unit-propagates `assumptions` over the clause set; returns `true`
    /// if a conflict (falsified clause) is reached.
    fn propagates_to_conflict(&self, assumptions: &[Lit]) -> bool {
        let mut assign: Vec<i8> = vec![0; self.num_vars];
        let mut queue: Vec<Lit> = Vec::new();
        for &l in assumptions {
            let v = l.var().index();
            let want = if l.is_positive() { 1 } else { -1 };
            if assign[v] == -want {
                return true; // contradictory assumptions
            }
            if assign[v] == 0 {
                assign[v] = want;
                queue.push(l);
            }
        }
        loop {
            let mut progress = false;
            for clause in &self.clauses {
                let mut unassigned: Option<Lit> = None;
                let mut satisfied = false;
                let mut unassigned_count = 0;
                for &l in clause {
                    let v = assign[l.var().index()];
                    let val = if l.is_positive() { v } else { -v };
                    if val == 1 {
                        satisfied = true;
                        break;
                    }
                    if val == 0 {
                        unassigned_count += 1;
                        unassigned = Some(l);
                    }
                }
                if satisfied {
                    continue;
                }
                match (unassigned_count, unassigned) {
                    (0, _) => return true, // falsified clause: conflict
                    (1, Some(l)) => {
                        let v = l.var().index();
                        assign[v] = if l.is_positive() { 1 } else { -1 };
                        progress = true;
                    }
                    _ => {}
                }
            }
            if !progress {
                return false;
            }
        }
    }
}

/// Checks a DRUP proof of unsatisfiability for `cnf`.
///
/// Every addition step must be RUP-derivable from the original clauses
/// plus the previously added ones, and the proof must reach a
/// contradiction (the empty clause, or a final state whose propagation
/// conflicts outright).
///
/// # Errors
///
/// Returns [`ProofError`] naming the failing step.
pub fn check(cnf: &Cnf, proof: &Proof) -> Result<(), ProofError> {
    let mut prop = Propagator {
        clauses: cnf.iter().map(<[Lit]>::to_vec).collect(),
        num_vars: cnf.num_vars(),
    };
    let mut add_index = 0;
    for step in &proof.steps {
        match step {
            Step::Add(clause) => {
                // RUP check: assuming the negation of every literal must
                // propagate to a conflict.
                let assumptions: Vec<Lit> = clause.iter().map(|&l| !l).collect();
                if !prop.propagates_to_conflict(&assumptions) {
                    return Err(ProofError::NotRup { step: add_index });
                }
                if clause.is_empty() {
                    return Ok(());
                }
                prop.clauses.push(clause.clone());
                add_index += 1;
            }
            Step::Delete(clause) => {
                if let Some(pos) = prop.clauses.iter().position(|c| c == clause) {
                    prop.clauses.swap_remove(pos);
                }
            }
        }
    }
    // No explicit empty clause: accept iff propagation now conflicts.
    if prop.propagates_to_conflict(&[]) {
        Ok(())
    } else {
        Err(ProofError::NoContradiction)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::needless_range_loop)] // index loops are clearest for the PHP grids

    use super::*;
    use crate::cnf::Var;
    use crate::solver::{Outcome, Solver};

    fn pigeonhole(n: usize) -> Cnf {
        let mut cnf = Cnf::new();
        let p: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..n - 1).map(|_| cnf.new_var()).collect())
            .collect();
        for row in &p {
            cnf.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..n - 1 {
            for i1 in 0..n {
                for i2 in i1 + 1..n {
                    cnf.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        cnf
    }

    #[test]
    fn unsat_proofs_check() {
        for n in [3usize, 4, 5] {
            let cnf = pigeonhole(n);
            let mut solver = Solver::from_cnf(&cnf);
            let mut proof = Proof::new();
            assert_eq!(solver.solve_with_proof(&mut proof), Outcome::Unsat);
            assert!(!proof.is_empty(), "PHP({n}) needs learnt clauses");
            check(&cnf, &proof).unwrap_or_else(|e| panic!("PHP({n}) proof rejected: {e}"));
        }
    }

    #[test]
    fn bogus_proofs_are_rejected() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
        // claim the unit clause (a) — not RUP-derivable
        let mut proof = Proof::new();
        proof.add_clause(&[Lit::pos(a)]);
        proof.add_clause(&[]);
        assert!(matches!(
            check(&cnf, &proof),
            Err(ProofError::NotRup { step: 0 })
        ));
        // and an empty proof of a satisfiable formula
        let empty = Proof::new();
        assert_eq!(check(&cnf, &empty), Err(ProofError::NoContradiction));
    }

    #[test]
    fn drup_text_format() {
        let mut proof = Proof::new();
        proof.add_clause(&[Lit::pos(Var::from_index(0)), Lit::neg(Var::from_index(1))]);
        proof.delete_clause(&[Lit::pos(Var::from_index(0))]);
        proof.add_clause(&[]);
        let text = proof.to_drup();
        assert_eq!(text, "1 -2 0\nd 1 0\n0\n");
        assert_eq!(proof.len(), 2);
    }

    #[test]
    fn trivial_contradiction_checks_without_steps() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        cnf.add_clause([Lit::pos(a)]);
        cnf.add_clause([Lit::neg(a)]);
        let mut solver = Solver::from_cnf(&cnf);
        let mut proof = Proof::new();
        assert_eq!(solver.solve_with_proof(&mut proof), Outcome::Unsat);
        check(&cnf, &proof).expect("proof checks");
    }
}
