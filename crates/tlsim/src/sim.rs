//! The symbolic simulation engine.

use std::collections::HashMap;

#[cfg(test)]
use eufm::Sort;
use eufm::{CancelToken, Context, ExprId};

use crate::ir::{Design, InputId, InputKind, LatchId, SignalDef, SignalId};

/// Evaluation events across all simulated cycles (see [`StepStats`]).
static SIM_EVENTS: trace::Counter = trace::Counter::new("tlsim.sim.events");

/// How combinational logic is evaluated each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalStrategy {
    /// Demand-driven with short-circuiting on concrete multiplexer
    /// selectors and absorbing gate inputs: only the cone of influence of
    /// dynamically active logic is evaluated. This is the paper's
    /// event-pruning optimization and the default.
    #[default]
    Lazy,
    /// Every reachable cell is evaluated every cycle (ablation baseline).
    Eager,
}

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A latch has no next-state function.
    MissingNext(String),
    /// A controlled input was not driven for this step.
    MissingControl(String),
    /// The netlist contains a combinational cycle through the named signal.
    CombinationalCycle(usize),
    /// A provided override had the wrong sort.
    SortMismatch(String),
    /// The simulation was cooperatively cancelled before this step.
    Cancelled,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::MissingNext(name) => {
                write!(f, "latch `{name}` has no next-state function")
            }
            SimError::MissingControl(name) => {
                write!(f, "controlled input `{name}` was not driven this cycle")
            }
            SimError::CombinationalCycle(sig) => {
                write!(f, "combinational cycle through signal #{sig}")
            }
            SimError::SortMismatch(name) => {
                write!(f, "override for input `{name}` has the wrong sort")
            }
            SimError::Cancelled => write!(f, "simulation cancelled"),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-step evaluation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepStats {
    /// The cycle number that was simulated (0-based).
    pub cycle: u64,
    /// Number of cells evaluated (memo misses) — the "events" of the
    /// event-driven engine.
    pub events: usize,
}

/// A symbolic simulation of a [`Design`].
///
/// The simulator holds one EUFM expression per latch. [`Simulator::step`]
/// computes every latch's next-state expression and the design's marked
/// outputs, then commits the new state.
#[derive(Debug)]
pub struct Simulator<'d> {
    design: &'d Design,
    state: Vec<ExprId>,
    symbolic_inputs: Vec<Option<ExprId>>,
    outputs: HashMap<String, ExprId>,
    cycle: u64,
    strategy: EvalStrategy,
    total_events: u64,
    cancel: CancelToken,
}

impl<'d> Simulator<'d> {
    /// Creates a simulator with a fresh symbolic initial state: each latch
    /// starts as a variable named after the latch.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MissingNext`] if any latch's next-state function
    /// is unset.
    pub fn new(
        design: &'d Design,
        ctx: &mut Context,
        strategy: EvalStrategy,
    ) -> Result<Self, SimError> {
        for info in &design.latches {
            if info.next.is_none() {
                return Err(SimError::MissingNext(info.name.clone()));
            }
        }
        let state = design
            .latches
            .iter()
            .map(|info| ctx.var(&info.name, info.sort))
            .collect();
        Ok(Simulator {
            design,
            state,
            symbolic_inputs: vec![None; design.num_inputs()],
            outputs: HashMap::new(),
            cycle: 0,
            strategy,
            total_events: 0,
            cancel: CancelToken::new(),
        })
    }

    /// Attaches a cooperative cancellation token, polled at the start of
    /// every [`Simulator::step`].
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// The design being simulated.
    pub fn design(&self) -> &Design {
        self.design
    }

    /// The current cycle count (number of committed steps).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total cells evaluated across all steps so far.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// The current symbolic state of `latch`.
    pub fn latch_state(&self, latch: LatchId) -> ExprId {
        self.state[latch.index()]
    }

    /// Overrides the symbolic state of `latch` (e.g. to share an initial
    /// state between an implementation and a specification machine).
    ///
    /// # Panics
    ///
    /// Panics if the expression's sort differs from the latch's sort.
    pub fn set_state(&mut self, ctx: &Context, latch: LatchId, value: ExprId) {
        let want = self.design.latches[latch.index()].sort;
        assert_eq!(ctx.sort(value), want, "set_state: sort mismatch");
        self.state[latch.index()] = value;
    }

    /// The value a marked output had during the most recent step.
    pub fn output(&self, name: &str) -> Option<ExprId> {
        self.outputs.get(name).copied()
    }

    /// Advances the design one clock cycle.
    ///
    /// `controls` drives [`InputKind::Controlled`] inputs and may override
    /// any other input for this cycle.
    ///
    /// # Errors
    ///
    /// Returns an error if a controlled input is missing, an override has
    /// the wrong sort, or the netlist has a combinational cycle.
    pub fn step(
        &mut self,
        ctx: &mut Context,
        controls: &HashMap<InputId, ExprId>,
    ) -> Result<StepStats, SimError> {
        if self.cancel.is_cancelled() {
            return Err(SimError::Cancelled);
        }
        let span = trace::span("tlsim.step");
        span.attr("cycle", self.cycle);
        // Resolve input values for this cycle.
        let mut input_values: Vec<ExprId> = Vec::with_capacity(self.design.num_inputs());
        for (idx, info) in self.design.inputs.iter().enumerate() {
            let id = InputId(idx as u32);
            let value = if let Some(&v) = controls.get(&id) {
                if ctx.sort(v) != info.sort {
                    return Err(SimError::SortMismatch(info.name.clone()));
                }
                v
            } else {
                match info.kind {
                    InputKind::FreshPerCycle => {
                        ctx.var(&format!("{}@{}", info.name, self.cycle), info.sort)
                    }
                    InputKind::Symbolic => {
                        let slot = &mut self.symbolic_inputs[idx];
                        match *slot {
                            Some(v) => v,
                            None => {
                                let v = ctx.var(&info.name, info.sort);
                                *slot = Some(v);
                                v
                            }
                        }
                    }
                    InputKind::Controlled => {
                        return Err(SimError::MissingControl(info.name.clone()));
                    }
                }
            };
            input_values.push(value);
        }

        let mut eval = Eval {
            design: self.design,
            state: &self.state,
            inputs: &input_values,
            memo: vec![None; self.design.num_signals()],
            visiting: vec![false; self.design.num_signals()],
            events: 0,
        };

        let mut next_state = Vec::with_capacity(self.state.len());
        if self.strategy == EvalStrategy::Eager {
            // evaluate every signal reachable from latch next functions and
            // outputs, in demand order but without short-circuiting
            for info in &self.design.latches {
                let next = info.next.expect("validated in new");
                eval.eval(ctx, next, false)?;
            }
            for (_, sig) in self.design.outputs() {
                eval.eval(ctx, sig, false)?;
            }
        }
        for info in &self.design.latches {
            let next = info.next.expect("validated in new");
            next_state.push(eval.eval(ctx, next, true)?);
        }
        self.outputs.clear();
        let output_list: Vec<(String, SignalId)> = self
            .design
            .outputs()
            .map(|(n, s)| (n.to_owned(), s))
            .collect();
        for (name, sig) in output_list {
            let v = eval.eval(ctx, sig, true)?;
            self.outputs.insert(name, v);
        }

        let stats = StepStats {
            cycle: self.cycle,
            events: eval.events,
        };
        SIM_EVENTS.add(eval.events as u64);
        self.total_events += eval.events as u64;
        self.state = next_state;
        self.cycle += 1;
        Ok(stats)
    }
}

struct Eval<'a> {
    design: &'a Design,
    state: &'a [ExprId],
    inputs: &'a [ExprId],
    memo: Vec<Option<ExprId>>,
    visiting: Vec<bool>,
    events: usize,
}

impl Eval<'_> {
    /// Evaluates a signal to an EUFM expression. With `lazy` set,
    /// multiplexers with concrete selectors evaluate only the taken branch
    /// and gates stop at absorbing constants.
    fn eval(&mut self, ctx: &mut Context, sig: SignalId, lazy: bool) -> Result<ExprId, SimError> {
        if let Some(v) = self.memo[sig.index()] {
            return Ok(v);
        }
        if self.visiting[sig.index()] {
            return Err(SimError::CombinationalCycle(sig.index()));
        }
        self.visiting[sig.index()] = true;
        self.events += 1;
        let value = match self.design.def(sig).clone() {
            SignalDef::Input(i) => self.inputs[i.index()],
            SignalDef::LatchOut(l) => self.state[l.index()],
            SignalDef::Const(b) => ctx.bool_const(b),
            SignalDef::Not(a) => {
                let va = self.eval(ctx, a, lazy)?;
                ctx.not(va)
            }
            SignalDef::And(xs) => {
                let mut vals = Vec::with_capacity(xs.len());
                let mut absorbed = false;
                for x in xs {
                    let v = self.eval(ctx, x, lazy)?;
                    if lazy && ctx.is_false(v) {
                        absorbed = true;
                        vals.clear();
                        vals.push(v);
                        break;
                    }
                    vals.push(v);
                }
                let _ = absorbed;
                ctx.and(vals)
            }
            SignalDef::Or(xs) => {
                let mut vals = Vec::with_capacity(xs.len());
                for x in xs {
                    let v = self.eval(ctx, x, lazy)?;
                    if lazy && ctx.is_true(v) {
                        vals.clear();
                        vals.push(v);
                        break;
                    }
                    vals.push(v);
                }
                ctx.or(vals)
            }
            SignalDef::Mux(s, a, b) => {
                let vs = self.eval(ctx, s, lazy)?;
                if lazy && ctx.is_true(vs) {
                    self.eval(ctx, a, lazy)?
                } else if lazy && ctx.is_false(vs) {
                    self.eval(ctx, b, lazy)?
                } else {
                    let va = self.eval(ctx, a, lazy)?;
                    let vb = self.eval(ctx, b, lazy)?;
                    ctx.ite(vs, va, vb)
                }
            }
            SignalDef::EqCmp(a, b) => {
                let va = self.eval(ctx, a, lazy)?;
                let vb = self.eval(ctx, b, lazy)?;
                ctx.eq(va, vb)
            }
            SignalDef::Uf(name, args, sort) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(ctx, a, lazy)?);
                }
                ctx.apply(&name, vals, sort)
            }
            SignalDef::Read(m, a) => {
                let vm = self.eval(ctx, m, lazy)?;
                let va = self.eval(ctx, a, lazy)?;
                ctx.read(vm, va)
            }
            SignalDef::Write(m, a, d) => {
                let vm = self.eval(ctx, m, lazy)?;
                let va = self.eval(ctx, a, lazy)?;
                let vd = self.eval(ctx, d, lazy)?;
                ctx.write(vm, va, vd)
            }
        };
        self.visiting[sig.index()] = false;
        self.memo[sig.index()] = Some(value);
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::InputKind;

    /// A two-latch toggler with a controlled input.
    fn toggle_design() -> Design {
        let mut d = Design::new("toggle");
        let en = d.input("en", Sort::Bool, InputKind::Controlled);
        let l = d.latch("q", Sort::Bool);
        let q = d.latch_out(l);
        let nq = d.not(q);
        let en_sig = d.input_signal(en);
        let next = d.mux(en_sig, nq, q);
        d.set_next(l, next);
        d.mark_output("q_now", q);
        d
    }

    #[test]
    fn controlled_input_required() {
        let d = toggle_design();
        let mut ctx = Context::new();
        let mut sim = Simulator::new(&d, &mut ctx, EvalStrategy::Lazy).expect("sim");
        let err = sim.step(&mut ctx, &HashMap::new()).unwrap_err();
        assert_eq!(err, SimError::MissingControl("en".to_owned()));
    }

    #[test]
    fn concrete_toggle() {
        let d = toggle_design();
        let mut ctx = Context::new();
        let mut sim = Simulator::new(&d, &mut ctx, EvalStrategy::Lazy).expect("sim");
        let en = d.input_ids().next().expect("input");
        let q0 = sim.latch_state(d.latch_ids().next().expect("latch"));
        let mut controls = HashMap::new();
        controls.insert(en, Context::TRUE);
        sim.step(&mut ctx, &controls).expect("step");
        let l = d.latch_ids().next().expect("latch");
        let expected = ctx.not(q0);
        assert_eq!(sim.latch_state(l), expected);
        sim.step(&mut ctx, &controls).expect("step");
        assert_eq!(sim.latch_state(l), q0);
        assert_eq!(sim.output("q_now"), Some(expected));
        assert_eq!(sim.cycle(), 2);
    }

    #[test]
    fn fresh_inputs_get_cycle_stamped_names() {
        let mut d = Design::new("acc");
        let i = d.input("in", Sort::Term, InputKind::FreshPerCycle);
        let l = d.latch("acc", Sort::Term);
        let acc = d.latch_out(l);
        let in_sig = d.input_signal(i);
        let next = d.uf("f", vec![acc, in_sig]);
        d.set_next(l, next);
        let mut ctx = Context::new();
        let mut sim = Simulator::new(&d, &mut ctx, EvalStrategy::Lazy).expect("sim");
        sim.step(&mut ctx, &HashMap::new()).expect("step");
        sim.step(&mut ctx, &HashMap::new()).expect("step");
        let acc0 = ctx.tvar("acc");
        let in0 = ctx.tvar("in@0");
        let in1 = ctx.tvar("in@1");
        let f0 = ctx.uf("f", vec![acc0, in0]);
        let f1 = ctx.uf("f", vec![f0, in1]);
        assert_eq!(sim.latch_state(l), f1);
    }

    #[test]
    fn lazy_skips_inactive_mux_branches() {
        // next = sel ? expensive : cheap, with sel driven concretely false
        let mut d = Design::new("gated");
        let sel = d.input("sel", Sort::Bool, InputKind::Controlled);
        let l = d.latch("r", Sort::Term);
        let r = d.latch_out(l);
        // "expensive" cone: chain of 50 UF applications
        let mut expensive = r;
        for _ in 0..50 {
            expensive = d.uf("g", vec![expensive]);
        }
        let sel_sig = d.input_signal(sel);
        let next = d.mux(sel_sig, expensive, r);
        d.set_next(l, next);

        let mut ctx = Context::new();
        let mut sim = Simulator::new(&d, &mut ctx, EvalStrategy::Lazy).expect("sim");
        let mut controls = HashMap::new();
        controls.insert(sel, Context::FALSE);
        let stats = sim.step(&mut ctx, &controls).expect("step");
        assert!(stats.events < 10, "lazy evaluation must skip the UF chain");

        let mut ctx = Context::new();
        let mut sim = Simulator::new(&d, &mut ctx, EvalStrategy::Eager).expect("sim");
        let stats = sim.step(&mut ctx, &controls).expect("step");
        assert!(stats.events > 50, "eager evaluation visits the whole cone");
    }

    #[test]
    fn symbolic_selector_builds_ite() {
        let d = toggle_design();
        let mut ctx = Context::new();
        let mut sim = Simulator::new(&d, &mut ctx, EvalStrategy::Lazy).expect("sim");
        let en = d.input_ids().next().expect("input");
        let sym = ctx.pvar("en_sym");
        let mut controls = HashMap::new();
        controls.insert(en, sym);
        sim.step(&mut ctx, &controls).expect("step");
        let l = d.latch_ids().next().expect("latch");
        let q0 = ctx.pvar("q");
        let nq0 = ctx.not(q0);
        let expected = ctx.ite(sym, nq0, q0);
        assert_eq!(sim.latch_state(l), expected);
    }

    #[test]
    fn shared_state_between_machines() {
        let d = toggle_design();
        let mut ctx = Context::new();
        let mut sim1 = Simulator::new(&d, &mut ctx, EvalStrategy::Lazy).expect("sim");
        let mut sim2 = Simulator::new(&d, &mut ctx, EvalStrategy::Lazy).expect("sim");
        let l = d.latch_ids().next().expect("latch");
        // share initial state, then drive identically: states stay equal
        let shared = ctx.pvar("shared_q");
        sim1.set_state(&ctx, l, shared);
        sim2.set_state(&ctx, l, shared);
        let en = d.input_ids().next().expect("input");
        let mut controls = HashMap::new();
        controls.insert(en, Context::TRUE);
        sim1.step(&mut ctx, &controls).expect("step");
        sim2.step(&mut ctx, &controls).expect("step");
        assert_eq!(sim1.latch_state(l), sim2.latch_state(l));
    }

    #[test]
    fn sort_mismatch_in_override_is_reported() {
        let d = toggle_design();
        let mut ctx = Context::new();
        let mut sim = Simulator::new(&d, &mut ctx, EvalStrategy::Lazy).expect("sim");
        let en = d.input_ids().next().expect("input");
        let wrong = ctx.tvar("not_a_bool");
        let mut controls = HashMap::new();
        controls.insert(en, wrong);
        let err = sim.step(&mut ctx, &controls).unwrap_err();
        assert_eq!(err, SimError::SortMismatch("en".to_owned()));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::ir::InputKind;
    use eufm::Sort;

    #[test]
    fn combinational_cycle_is_detected() {
        // A latch whose next function feeds through a signal that depends
        // on itself via two NOT gates cannot be built directly (signals
        // are created before use), so force a cycle through a mux pair by
        // hand-crafting the defs: not possible through the safe builder.
        // Instead check that a *self-feeding* design through latches is
        // fine (latches break cycles) — the error path is unreachable via
        // the safe API, which is itself worth pinning down.
        let mut d = Design::new("latch_cycle");
        let l = d.latch("q", Sort::Bool);
        let q = d.latch_out(l);
        let nq = d.not(q);
        d.set_next(l, nq);
        let mut ctx = Context::new();
        let mut sim = Simulator::new(&d, &mut ctx, EvalStrategy::Lazy).expect("sim");
        sim.step(&mut ctx, &HashMap::new()).expect("step");
        let q0 = ctx.pvar("q");
        let expected = ctx.not(q0);
        assert_eq!(
            sim.latch_state(d.latch_ids().next().expect("latch")),
            expected
        );
    }

    #[test]
    fn memory_latch_accumulates_writes() {
        let mut d = Design::new("mem_machine");
        let addr_in = d.input("addr", Sort::Term, InputKind::FreshPerCycle);
        let data_in = d.input("data", Sort::Term, InputKind::FreshPerCycle);
        let mem = d.latch("mem", Sort::Mem);
        let m = d.latch_out(mem);
        let a = d.input_signal(addr_in);
        let v = d.input_signal(data_in);
        let next = d.write(m, a, v);
        d.set_next(mem, next);
        let read_back = d.read(m, a);
        d.mark_output("read_back", read_back);
        let mut ctx = Context::new();
        let mut sim = Simulator::new(&d, &mut ctx, EvalStrategy::Lazy).expect("sim");
        sim.step(&mut ctx, &HashMap::new()).expect("step");
        sim.step(&mut ctx, &HashMap::new()).expect("step");
        let m0 = ctx.mvar("mem");
        let a0 = ctx.tvar("addr@0");
        let d0 = ctx.tvar("data@0");
        let a1 = ctx.tvar("addr@1");
        let d1 = ctx.tvar("data@1");
        let w0 = ctx.write(m0, a0, d0);
        let w1 = ctx.write(w0, a1, d1);
        let l = d.latch_ids().next().expect("latch");
        assert_eq!(sim.latch_state(l), w1);
        // output captured the read during the *second* cycle
        let expected = ctx.read(w0, a1);
        assert_eq!(sim.output("read_back"), Some(expected));
    }

    #[test]
    fn symbolic_inputs_are_shared_across_cycles() {
        let mut d = Design::new("rom_machine");
        let rom = d.input("rom", Sort::Mem, InputKind::Symbolic);
        let pc = d.latch("pc", Sort::Term);
        let pc_out = d.latch_out(pc);
        let rom_sig = d.input_signal(rom);
        let insn = d.read(rom_sig, pc_out);
        let next = d.uf("Next", vec![insn]);
        d.set_next(pc, next);
        let mut ctx = Context::new();
        let mut sim = Simulator::new(&d, &mut ctx, EvalStrategy::Lazy).expect("sim");
        sim.step(&mut ctx, &HashMap::new()).expect("step");
        sim.step(&mut ctx, &HashMap::new()).expect("step");
        // both cycles read the SAME rom variable
        let rom_var = ctx.mvar("rom");
        let pc0 = ctx.tvar("pc");
        let r0 = ctx.read(rom_var, pc0);
        let pc1 = ctx.uf("Next", vec![r0]);
        let r1 = ctx.read(rom_var, pc1);
        let pc2 = ctx.uf("Next", vec![r1]);
        let l = d.latch_ids().next().expect("latch");
        assert_eq!(sim.latch_state(l), pc2);
    }

    #[test]
    fn eager_and_lazy_produce_identical_expressions() {
        let mut d = Design::new("both");
        let sel = d.input("sel", Sort::Bool, InputKind::FreshPerCycle);
        let l = d.latch("r", Sort::Term);
        let r = d.latch_out(l);
        let f = d.uf("f", vec![r]);
        let g = d.uf("g", vec![r]);
        let sel_sig = d.input_signal(sel);
        let next = d.mux(sel_sig, f, g);
        d.set_next(l, next);
        let run = |strategy| {
            let mut ctx = Context::new();
            let mut sim = Simulator::new(&d, &mut ctx, strategy).expect("sim");
            sim.step(&mut ctx, &HashMap::new()).expect("step");
            let l = d.latch_ids().next().expect("latch");
            eufm::print::to_sexpr(&ctx, sim.latch_state(l))
        };
        assert_eq!(run(EvalStrategy::Lazy), run(EvalStrategy::Eager));
    }

    #[test]
    fn total_events_accumulate() {
        let d = {
            let mut d = Design::new("acc");
            let l = d.latch("q", Sort::Bool);
            let q = d.latch_out(l);
            let nq = d.not(q);
            d.set_next(l, nq);
            d
        };
        let mut ctx = Context::new();
        let mut sim = Simulator::new(&d, &mut ctx, EvalStrategy::Lazy).expect("sim");
        sim.step(&mut ctx, &HashMap::new()).expect("step");
        let after_one = sim.total_events();
        sim.step(&mut ctx, &HashMap::new()).expect("step");
        assert!(sim.total_events() > after_one);
    }
}
