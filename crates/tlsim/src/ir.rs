//! The word-level netlist IR.

use std::collections::HashMap;

use eufm::Sort;

/// A handle to a combinational signal in a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// The dense index of this signal.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A handle to a state-holding latch in a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LatchId(pub(crate) u32);

impl LatchId {
    /// The dense index of this latch.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A handle to a primary input of a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InputId(pub(crate) u32);

impl InputId {
    /// The dense index of this input.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How a primary input is driven during simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// A fresh symbolic constant every cycle, named `name@cycle`.
    ///
    /// This is how non-deterministic control signals (the paper's
    /// `NDFetch_i` and `NDExecute_i` abstractions) are modeled.
    FreshPerCycle,
    /// A single symbolic constant shared by all cycles, named `name`
    /// (e.g. a read-only instruction memory).
    Symbolic,
    /// Driven explicitly by the test bench each cycle (e.g. `flush`);
    /// stepping without providing a value is an error.
    Controlled,
}

/// The definition of one combinational signal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SignalDef {
    /// The value of a primary input this cycle.
    Input(InputId),
    /// The current state of a latch.
    LatchOut(LatchId),
    /// A Boolean constant.
    Const(bool),
    /// Logical negation.
    Not(SignalId),
    /// N-ary conjunction.
    And(Vec<SignalId>),
    /// N-ary disjunction.
    Or(Vec<SignalId>),
    /// Two-way multiplexer `sel ? a : b` (any matching sorts).
    Mux(SignalId, SignalId, SignalId),
    /// Term or memory equality comparator.
    EqCmp(SignalId, SignalId),
    /// An uninterpreted function/predicate block.
    Uf(String, Vec<SignalId>, Sort),
    /// A memory read port.
    Read(SignalId, SignalId),
    /// A memory write port (produces the updated memory state).
    Write(SignalId, SignalId, SignalId),
}

#[derive(Debug, Clone)]
pub(crate) struct InputInfo {
    pub name: String,
    pub sort: Sort,
    pub kind: InputKind,
}

#[derive(Debug, Clone)]
pub(crate) struct LatchInfo {
    pub name: String,
    pub sort: Sort,
    pub next: Option<SignalId>,
}

/// A synchronous word-level netlist.
///
/// Build signals with the combinational constructors, declare latches with
/// [`Design::latch`] and close their feedback loops with
/// [`Design::set_next`], and mark observable signals with
/// [`Design::mark_output`].
#[derive(Debug, Clone)]
pub struct Design {
    name: String,
    pub(crate) signals: Vec<(SignalDef, Sort)>,
    pub(crate) inputs: Vec<InputInfo>,
    pub(crate) latches: Vec<LatchInfo>,
    outputs: HashMap<String, SignalId>,
    signal_cache: HashMap<SignalDef, SignalId>,
}

impl Design {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>) -> Self {
        Design {
            name: name.into(),
            signals: Vec::new(),
            inputs: Vec::new(),
            latches: Vec::new(),
            outputs: HashMap::new(),
            signal_cache: HashMap::new(),
        }
    }

    /// The design's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of combinational signals (cells).
    pub fn num_signals(&self) -> usize {
        self.signals.len()
    }

    /// The number of latches.
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// The number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// The sort of a signal.
    pub fn sort(&self, sig: SignalId) -> Sort {
        self.signals[sig.index()].1
    }

    /// The definition of a signal.
    pub fn def(&self, sig: SignalId) -> &SignalDef {
        &self.signals[sig.index()].0
    }

    fn push(&mut self, def: SignalDef, sort: Sort) -> SignalId {
        if let Some(&id) = self.signal_cache.get(&def) {
            return id;
        }
        let id = SignalId(u32::try_from(self.signals.len()).expect("signal overflow"));
        self.signals.push((def.clone(), sort));
        self.signal_cache.insert(def, id);
        id
    }

    // ----- structure --------------------------------------------------------

    /// Declares a primary input.
    pub fn input(&mut self, name: impl Into<String>, sort: Sort, kind: InputKind) -> InputId {
        let id = InputId(u32::try_from(self.inputs.len()).expect("input overflow"));
        self.inputs.push(InputInfo {
            name: name.into(),
            sort,
            kind,
        });
        id
    }

    /// The signal carrying the value of `input`.
    pub fn input_signal(&mut self, input: InputId) -> SignalId {
        let sort = self.inputs[input.index()].sort;
        self.push(SignalDef::Input(input), sort)
    }

    /// Declares a latch. Its next-state function must be set with
    /// [`Design::set_next`] before simulation.
    pub fn latch(&mut self, name: impl Into<String>, sort: Sort) -> LatchId {
        let id = LatchId(u32::try_from(self.latches.len()).expect("latch overflow"));
        self.latches.push(LatchInfo {
            name: name.into(),
            sort,
            next: None,
        });
        id
    }

    /// The signal carrying the current state of `latch`.
    pub fn latch_out(&mut self, latch: LatchId) -> SignalId {
        let sort = self.latches[latch.index()].sort;
        self.push(SignalDef::LatchOut(latch), sort)
    }

    /// Sets the next-state function of `latch`.
    ///
    /// # Panics
    ///
    /// Panics if the signal's sort differs from the latch's sort.
    pub fn set_next(&mut self, latch: LatchId, next: SignalId) {
        assert_eq!(
            self.latches[latch.index()].sort,
            self.sort(next),
            "latch next-state sort mismatch for `{}`",
            self.latches[latch.index()].name
        );
        self.latches[latch.index()].next = Some(next);
    }

    /// The name of a latch.
    pub fn latch_name(&self, latch: LatchId) -> &str {
        &self.latches[latch.index()].name
    }

    /// The name of an input.
    pub fn input_name(&self, input: InputId) -> &str {
        &self.inputs[input.index()].name
    }

    /// Iterates over all latch ids.
    pub fn latch_ids(&self) -> impl Iterator<Item = LatchId> {
        (0..self.latches.len()).map(|i| LatchId(i as u32))
    }

    /// Iterates over all input ids.
    pub fn input_ids(&self) -> impl Iterator<Item = InputId> {
        (0..self.inputs.len()).map(|i| InputId(i as u32))
    }

    /// Marks a signal as a named observable output.
    pub fn mark_output(&mut self, name: impl Into<String>, sig: SignalId) {
        self.outputs.insert(name.into(), sig);
    }

    /// Looks up a named output.
    pub fn output(&self, name: &str) -> Option<SignalId> {
        self.outputs.get(name).copied()
    }

    /// Iterates over the named outputs.
    pub fn outputs(&self) -> impl Iterator<Item = (&str, SignalId)> {
        self.outputs.iter().map(|(n, &s)| (n.as_str(), s))
    }

    // ----- combinational constructors ---------------------------------------

    /// A Boolean constant cell.
    pub fn constant(&mut self, value: bool) -> SignalId {
        self.push(SignalDef::Const(value), Sort::Bool)
    }

    /// Logical negation.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not Boolean.
    pub fn not(&mut self, a: SignalId) -> SignalId {
        assert_eq!(self.sort(a), Sort::Bool, "not: operand must be Boolean");
        self.push(SignalDef::Not(a), Sort::Bool)
    }

    /// N-ary conjunction.
    ///
    /// # Panics
    ///
    /// Panics if any operand is not Boolean.
    pub fn and(&mut self, ops: impl IntoIterator<Item = SignalId>) -> SignalId {
        let ops: Vec<SignalId> = ops.into_iter().collect();
        for &o in &ops {
            assert_eq!(self.sort(o), Sort::Bool, "and: operand must be Boolean");
        }
        self.push(SignalDef::And(ops), Sort::Bool)
    }

    /// N-ary disjunction.
    ///
    /// # Panics
    ///
    /// Panics if any operand is not Boolean.
    pub fn or(&mut self, ops: impl IntoIterator<Item = SignalId>) -> SignalId {
        let ops: Vec<SignalId> = ops.into_iter().collect();
        for &o in &ops {
            assert_eq!(self.sort(o), Sort::Bool, "or: operand must be Boolean");
        }
        self.push(SignalDef::Or(ops), Sort::Bool)
    }

    /// Binary conjunction.
    pub fn and2(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.and([a, b])
    }

    /// Binary disjunction.
    pub fn or2(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.or([a, b])
    }

    /// Two-way multiplexer `sel ? a : b`.
    ///
    /// # Panics
    ///
    /// Panics if `sel` is not Boolean or the branch sorts differ.
    pub fn mux(&mut self, sel: SignalId, a: SignalId, b: SignalId) -> SignalId {
        assert_eq!(self.sort(sel), Sort::Bool, "mux: selector must be Boolean");
        let sort = self.sort(a);
        assert_eq!(sort, self.sort(b), "mux: branch sorts must agree");
        self.push(SignalDef::Mux(sel, a, b), sort)
    }

    /// Equality comparator over terms or memories.
    ///
    /// # Panics
    ///
    /// Panics if the operand sorts differ or are Boolean.
    pub fn eq_cmp(&mut self, a: SignalId, b: SignalId) -> SignalId {
        let sort = self.sort(a);
        assert_eq!(sort, self.sort(b), "eq: operand sorts must agree");
        assert_ne!(sort, Sort::Bool, "eq: operands must be terms or memories");
        self.push(SignalDef::EqCmp(a, b), Sort::Bool)
    }

    /// An uninterpreted function block producing a term.
    pub fn uf(&mut self, name: impl Into<String>, args: Vec<SignalId>) -> SignalId {
        self.push(SignalDef::Uf(name.into(), args, Sort::Term), Sort::Term)
    }

    /// An uninterpreted predicate block producing a Boolean.
    pub fn up(&mut self, name: impl Into<String>, args: Vec<SignalId>) -> SignalId {
        self.push(SignalDef::Uf(name.into(), args, Sort::Bool), Sort::Bool)
    }

    /// A memory read port.
    ///
    /// # Panics
    ///
    /// Panics if the operand sorts are not (memory, term).
    pub fn read(&mut self, mem: SignalId, addr: SignalId) -> SignalId {
        assert_eq!(
            self.sort(mem),
            Sort::Mem,
            "read: first operand must be a memory"
        );
        assert_eq!(self.sort(addr), Sort::Term, "read: address must be a term");
        self.push(SignalDef::Read(mem, addr), Sort::Term)
    }

    /// A memory write port.
    ///
    /// # Panics
    ///
    /// Panics if the operand sorts are not (memory, term, term).
    pub fn write(&mut self, mem: SignalId, addr: SignalId, data: SignalId) -> SignalId {
        assert_eq!(
            self.sort(mem),
            Sort::Mem,
            "write: first operand must be a memory"
        );
        assert_eq!(self.sort(addr), Sort::Term, "write: address must be a term");
        assert_eq!(self.sort(data), Sort::Term, "write: data must be a term");
        self.push(SignalDef::Write(mem, addr, data), Sort::Mem)
    }

    /// Visits the children (fan-in) of a signal definition.
    pub fn for_each_child(&self, sig: SignalId, mut f: impl FnMut(SignalId)) {
        match self.def(sig) {
            SignalDef::Input(_) | SignalDef::LatchOut(_) | SignalDef::Const(_) => {}
            SignalDef::Not(a) => f(*a),
            SignalDef::And(xs) | SignalDef::Or(xs) => xs.iter().copied().for_each(&mut f),
            SignalDef::Mux(s, a, b) => {
                f(*s);
                f(*a);
                f(*b);
            }
            SignalDef::EqCmp(a, b) | SignalDef::Read(a, b) => {
                f(*a);
                f(*b);
            }
            SignalDef::Uf(_, args, _) => args.iter().copied().for_each(&mut f),
            SignalDef::Write(m, a, d) => {
                f(*m);
                f(*a);
                f(*d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_shares_structurally_equal_cells() {
        let mut d = Design::new("t");
        let i = d.input("x", Sort::Bool, InputKind::FreshPerCycle);
        let x = d.input_signal(i);
        let n1 = d.not(x);
        let n2 = d.not(x);
        assert_eq!(n1, n2);
        assert_eq!(d.num_signals(), 2);
    }

    #[test]
    fn latch_roundtrip() {
        let mut d = Design::new("t");
        let l = d.latch("pc", Sort::Term);
        let out = d.latch_out(l);
        let next = d.uf("NextPC", vec![out]);
        d.set_next(l, next);
        assert_eq!(d.latch_name(l), "pc");
        assert_eq!(d.sort(out), Sort::Term);
        assert_eq!(d.num_latches(), 1);
    }

    #[test]
    fn outputs_are_named() {
        let mut d = Design::new("t");
        let c = d.constant(true);
        d.mark_output("done", c);
        assert_eq!(d.output("done"), Some(c));
        assert_eq!(d.output("missing"), None);
        assert_eq!(d.outputs().count(), 1);
    }

    #[test]
    #[should_panic(expected = "mux: selector must be Boolean")]
    fn mux_sort_checked() {
        let mut d = Design::new("t");
        let l = d.latch("a", Sort::Term);
        let a = d.latch_out(l);
        let _ = d.mux(a, a, a);
    }
}
