//! Term-level symbolic simulation, in the style of Velev's TLSim.
//!
//! A [`Design`] is a synchronous word-level netlist: combinational cells
//! (Boolean gates, multiplexers, term equality, uninterpreted function
//! blocks, memory read/write ports) connecting *inputs* and *latches*.
//! A [`Simulator`] holds a symbolic state — an EUFM expression per latch —
//! and advances it one clock cycle at a time, producing next-state
//! expressions in a shared [`eufm::Context`].
//!
//! Two properties matter for the reproduction:
//!
//! - **Symbolic inputs.** Inputs may be fresh symbolic constants each cycle
//!   (how the non-deterministic `NDFetch`/`NDExecute` control abstractions
//!   of the paper are driven), a single symbolic constant (read-only
//!   instruction memory), or concrete/controlled values (the `flush`
//!   signal).
//! - **Cone-of-influence evaluation.** Evaluation is demand-driven and
//!   short-circuits on concrete multiplexer selectors, so a flush step in
//!   which a single computation slice is active only evaluates that slice's
//!   cone — the optimization Sect. 7 of the paper describes for simulating
//!   processors with hundreds of reorder-buffer entries. Set
//!   [`EvalStrategy::Eager`] to measure the difference (an ablation bench).
//!
//! # Example
//!
//! ```
//! use eufm::Context;
//! use tlsim::{Design, EvalStrategy, InputKind, Simulator};
//!
//! // A one-latch accumulator: acc' = f(acc, in)
//! let mut d = Design::new("acc_machine");
//! let input = d.input("in", eufm::Sort::Term, InputKind::FreshPerCycle);
//! let acc = d.latch("acc", eufm::Sort::Term);
//! let acc_out = d.latch_out(acc);
//! let in_sig = d.input_signal(input);
//! let next = d.uf("f", vec![acc_out, in_sig]);
//! d.set_next(acc, next);
//!
//! let mut ctx = Context::new();
//! let mut sim = Simulator::new(&d, &mut ctx, EvalStrategy::Lazy)?;
//! sim.step(&mut ctx, &Default::default())?;
//! sim.step(&mut ctx, &Default::default())?;
//! // after two steps: f(f(acc, in@0), in@1)
//! let state = sim.latch_state(acc);
//! assert_eq!(ctx.dag_size(&[state]), 5);
//! # Ok::<(), tlsim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ir;
mod sim;

pub use ir::{Design, InputId, InputKind, LatchId, SignalDef, SignalId};
pub use sim::{EvalStrategy, SimError, Simulator, StepStats};
