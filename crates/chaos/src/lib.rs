//! Seeded fault injection for robustness tests.
//!
//! Production code marks *named injection points* with [`hit`] (panic or
//! stall) and [`mangle`] (corrupt a byte buffer in flight). When the
//! harness is disarmed — the default, and the only state production code
//! ever observes outside the chaos test suite — both are a single relaxed
//! atomic load. A test arms a [`Plan`] describing which points fire, how,
//! and how many times; the returned [`ChaosGuard`] disarms everything on
//! drop (including panic unwinds) and serializes chaos tests against each
//! other through a global lock.
//!
//! The injection-point registry lives in `DESIGN.md` §11: each name is a
//! stable `crate.module.site` string, e.g. `campaign.pool.attempt` or
//! `serve.cache.flush-line`.
//!
//! Corruption is driven by a seeded xorshift generator so failures replay
//! deterministically from the seed printed in the test name or log.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// What an armed injection point does when reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic with a recognizable message.
    Panic,
    /// Sleep for the given duration, then continue.
    Stall(Duration),
    /// Corrupt buffers passed to [`mangle`] at this point; [`hit`] is a
    /// no-op for this fault.
    Corrupt,
}

#[derive(Debug)]
struct Arming {
    fault: Fault,
    /// Remaining firings; `None` = unlimited.
    remaining: Option<u32>,
}

#[derive(Debug, Default)]
struct Registry {
    points: HashMap<&'static str, Arming>,
    rng: Xorshift,
    fired: Vec<&'static str>,
}

/// Fast path: production code checks this single flag before touching the
/// registry lock.
static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Serializes chaos tests: only one armed plan exists at a time, even when
/// the test harness runs threads in parallel.
fn test_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn lock_registry() -> MutexGuard<'static, Registry> {
    // A panic injected while the registry lock was held poisons it; the
    // data is a plain table, so recover the guard.
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// A deterministic xorshift64 generator for corruption decisions.
#[derive(Debug)]
struct Xorshift(u64);

impl Default for Xorshift {
    fn default() -> Self {
        Xorshift(0x9e37_79b9_7f4a_7c15)
    }
}

impl Xorshift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Builder for an armed fault plan. Construct with [`plan`].
#[derive(Debug)]
pub struct Plan {
    seed: u64,
    points: Vec<(&'static str, Arming)>,
}

/// Starts a fault plan with a deterministic corruption seed.
pub fn plan(seed: u64) -> Plan {
    Plan {
        seed,
        points: Vec::new(),
    }
}

impl Plan {
    /// Panic the next `times` arrivals at `point`.
    pub fn panic_at(self, point: &'static str, times: u32) -> Self {
        self.fault_at(point, Fault::Panic, Some(times))
    }

    /// Stall every arrival at `point` for `delay`.
    pub fn stall_at(self, point: &'static str, delay: Duration) -> Self {
        self.fault_at(point, Fault::Stall(delay), None)
    }

    /// Corrupt every buffer [`mangle`]d at `point`.
    pub fn corrupt_at(self, point: &'static str) -> Self {
        self.fault_at(point, Fault::Corrupt, None)
    }

    fn fault_at(mut self, point: &'static str, fault: Fault, remaining: Option<u32>) -> Self {
        self.points.push((point, Arming { fault, remaining }));
        self
    }

    /// Arms the plan. The returned guard disarms it when dropped; hold it
    /// for the duration of the test.
    pub fn arm(self) -> ChaosGuard {
        let outer = test_lock().lock().unwrap_or_else(|e| e.into_inner());
        {
            let mut reg = lock_registry();
            reg.points = self.points.into_iter().collect();
            reg.rng = Xorshift(self.seed | 1);
            reg.fired.clear();
        }
        ARMED.store(true, Ordering::SeqCst);
        ChaosGuard { _outer: outer }
    }
}

/// Disarms the harness when dropped and excludes other chaos tests while
/// alive.
#[derive(Debug)]
pub struct ChaosGuard {
    _outer: MutexGuard<'static, ()>,
}

impl ChaosGuard {
    /// The injection points that actually fired so far, in order.
    pub fn fired(&self) -> Vec<&'static str> {
        lock_registry().fired.clone()
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        lock_registry().points.clear();
    }
}

/// Marks an injection point. Disarmed: one relaxed load. Armed with
/// [`Fault::Panic`]: panics. Armed with [`Fault::Stall`]: sleeps.
///
/// # Panics
///
/// Panics (deliberately) when the point is armed with [`Fault::Panic`].
pub fn hit(point: &'static str) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let fault = {
        let mut reg = lock_registry();
        let Some(arming) = reg.points.get_mut(point) else {
            return;
        };
        match arming.remaining {
            Some(0) => return,
            Some(ref mut n) => *n -= 1,
            None => {}
        }
        let fault = arming.fault;
        reg.fired.push(point);
        fault
    };
    match fault {
        Fault::Panic => panic!("chaos: injected panic at {point}"),
        Fault::Stall(delay) => std::thread::sleep(delay),
        Fault::Corrupt => {}
    }
}

/// Corrupts `buf` in place when `point` is armed with [`Fault::Corrupt`]:
/// a seeded choice of bit-flip, truncation, or garbage append. Disarmed:
/// one relaxed load, buffer untouched.
pub fn mangle(point: &'static str, buf: &mut Vec<u8>) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let mut reg = lock_registry();
    let Some(arming) = reg.points.get_mut(point) else {
        return;
    };
    if arming.fault != Fault::Corrupt {
        return;
    }
    match arming.remaining {
        Some(0) => return,
        Some(ref mut n) => *n -= 1,
        None => {}
    }
    reg.fired.push(point);
    let roll = reg.rng.next();
    match roll % 3 {
        0 if !buf.is_empty() => {
            // flip a bit somewhere in the payload
            let idx = (roll >> 8) as usize % buf.len();
            buf[idx] ^= 1 << ((roll >> 40) % 8);
        }
        1 if buf.len() > 1 => {
            // torn write: truncate mid-line
            let keep = 1 + (roll >> 8) as usize % (buf.len() - 1);
            buf.truncate(keep);
        }
        _ => {
            // trailing garbage, including invalid UTF-8
            buf.extend_from_slice(b"\xff\xfe{garbage");
        }
    }
}

/// The number of live threads in this process, read from
/// `/proc/self/status` (`Threads:` line). Returns `None` off Linux or on
/// parse failure. Chaos tests use it to assert that timed-out jobs do not
/// leak threads.
pub fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_points_are_inert() {
        hit("chaos.test.nowhere");
        let mut buf = b"payload".to_vec();
        mangle("chaos.test.nowhere", &mut buf);
        assert_eq!(buf, b"payload");
    }

    #[test]
    fn armed_panic_fires_limited_times() {
        let guard = plan(7).panic_at("chaos.test.panic", 2).arm();
        for _ in 0..2 {
            let caught = std::panic::catch_unwind(|| hit("chaos.test.panic"));
            assert!(caught.is_err(), "armed point must panic");
        }
        hit("chaos.test.panic"); // budget exhausted: no panic
        assert_eq!(guard.fired().len(), 2);
        drop(guard);
        hit("chaos.test.panic"); // disarmed: no panic
    }

    #[test]
    fn unarmed_points_do_not_fire_under_an_armed_plan() {
        let guard = plan(7).panic_at("chaos.test.panic", 1).arm();
        hit("chaos.test.other"); // not in the plan
        assert!(guard.fired().is_empty());
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let corrupt_with = |seed: u64| {
            let _guard = plan(seed).corrupt_at("chaos.test.corrupt").arm();
            let mut buf = b"a journal line of reasonable length".to_vec();
            mangle("chaos.test.corrupt", &mut buf);
            buf
        };
        let a = corrupt_with(42);
        let b = corrupt_with(42);
        let c = corrupt_with(43);
        assert_eq!(a, b, "same seed, same corruption");
        assert_ne!(a, b"a journal line of reasonable length".to_vec());
        // different seeds usually differ; at minimum the buffer was touched
        assert_ne!(c, b"a journal line of reasonable length".to_vec());
    }

    #[test]
    fn stall_delays_but_continues() {
        let _guard = plan(1)
            .stall_at("chaos.test.stall", Duration::from_millis(20))
            .arm();
        let start = std::time::Instant::now();
        hit("chaos.test.stall");
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn thread_count_reads_proc() {
        if cfg!(target_os = "linux") {
            assert!(thread_count().expect("linux has /proc") >= 1);
        }
    }
}
