use evc::check::{check_validity, CheckOptions};
use evc::mem::MemoryModel;
use evc::rewrite::{rewrite_correctness, RewriteInput, RewriteOptions};
use std::io::Write;
use std::time::Instant;
use uarch::{correctness, Config};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(8);
    let k: usize = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(4);
    let config = Config::new(n, k).unwrap();
    let t0 = Instant::now();
    let mut bundle = correctness::generate(&config).unwrap();
    println!(
        "gen={:?} nodes={} cells={}",
        t0.elapsed(),
        bundle.stats.ctx_nodes,
        bundle.stats.impl_cells
    );
    std::io::stdout().flush().unwrap();
    let t1 = Instant::now();
    let input = RewriteInput {
        formula: bundle.formula,
        rf_impl: bundle.rf_impl,
        rf_spec0: bundle.rf_spec[0],
    };
    let outcome = match rewrite_correctness(&mut bundle.ctx, &input, &RewriteOptions::default()) {
        Ok(o) => o,
        Err(e) => {
            println!("REWRITE ERR {e}");
            return;
        }
    };
    println!(
        "rewrite={:?} obligations={} syntactic={}",
        t1.elapsed(),
        outcome.obligations,
        outcome.syntactic_hits
    );
    std::io::stdout().flush().unwrap();
    let t2 = Instant::now();
    let opts = CheckOptions {
        memory: MemoryModel::Conservative,
        ..CheckOptions::default()
    };
    let report = check_validity(&mut bundle.ctx, outcome.formula, &opts);
    println!(
        "check={:?} valid={:?} eij={} cnfv={} cnfc={}",
        t2.elapsed(),
        report.outcome.is_valid(),
        report.stats.eij_vars,
        report.stats.cnf_vars,
        report.stats.cnf_clauses
    );
}
