use evc::check::{check_validity, CheckOptions};
use evc::mem::MemoryModel;
use sat::Limits;
use std::time::Instant;
use uarch::{correctness, Config};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(4);
    let k: usize = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(1);
    let config = Config::new(n, k).unwrap();
    let mut bundle = correctness::generate(&config).unwrap();
    let opts = CheckOptions {
        memory: MemoryModel::Forwarding,
        max_nodes: 40_000_000,
        sat_limits: Limits {
            max_seconds: Some(240.0),
            ..Limits::none()
        },
        ..CheckOptions::default()
    };
    let t = Instant::now();
    let report = check_validity(&mut bundle.ctx, bundle.formula, &opts);
    println!(
        "rob{n}xw{k}: total={:?} translate={:?} sat={:?} outcome={:?} eij={} other={} cnfv={} cnfc={} conflicts={}",
        t.elapsed(), report.translate_time, report.sat_time, report.outcome,
        report.stats.eij_vars, report.stats.other_vars, report.stats.cnf_vars,
        report.stats.cnf_clauses, report.sat_stats.conflicts
    );
}
