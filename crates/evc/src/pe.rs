//! The Positive-Equality encoder.
//!
//! Input: a formula free of uninterpreted applications and memory
//! operations — Boolean structure over equations whose operands are `ITE`
//! trees with variable leaves. The encoder:
//!
//! 1. pushes every equation through the `ITE` trees down to variable-pair
//!    leaves;
//! 2. encodes each leaf comparison: identical variables are `true`;
//!    comparisons involving a p-variable (never observed by a general
//!    equation in the *original* formula) are `false` under the maximally
//!    diverse interpretation; g-variable pairs become fresh `e_ij` Boolean
//!    variables;
//! 3. optionally emits transitivity constraints over the `e_ij` comparison
//!    graph, closed chordally by a minimum-degree elimination order
//!    (Bryant–Velev).
//!
//! The result is purely propositional and ready for Tseitin translation.

use std::collections::{HashMap, HashSet};

use eufm::stats::EIJ_PREFIX;
use eufm::{CancelToken, Context, ExprId, IdMap, Node, Sort};

/// Classification of variables for the maximally diverse interpretation.
///
/// Built by the [`check`](crate::check) driver from the polarity analysis
/// of the pre-elimination formula plus the symbol classification of the
/// fresh variables introduced by UF elimination.
#[derive(Debug, Clone, Default)]
pub struct Classification {
    /// Variables (term- or memory-sorted) that require general treatment.
    pub gvars: HashSet<ExprId>,
}

impl Classification {
    /// Whether `var` must be treated as a g-variable.
    pub fn is_gvar(&self, var: ExprId) -> bool {
        self.gvars.contains(&var)
    }
}

/// An error during encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The node budget was exhausted (the formula blew up — the expected
    /// outcome for large reorder buffers without rewriting rules).
    BudgetExceeded,
    /// The [`CancelToken`] tripped mid-encoding.
    Cancelled,
    /// A non-eliminated construct reached the encoder.
    UnsupportedNode(String),
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::BudgetExceeded => write!(f, "node budget exceeded during encoding"),
            EncodeError::Cancelled => write!(f, "encoding cancelled"),
            EncodeError::UnsupportedNode(msg) => write!(f, "unsupported node: {msg}"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// The encoder output.
#[derive(Debug, Clone)]
pub struct Encoding {
    /// The propositional formula (without transitivity constraints).
    pub formula: ExprId,
    /// The `e_ij` comparison edges: `(smaller var, larger var, e_ij var)`.
    pub eij: Vec<(ExprId, ExprId, ExprId)>,
}

/// Encodes `root` into propositional logic.
///
/// `max_nodes` bounds context growth (0 = unlimited): exceeding it returns
/// [`EncodeError::BudgetExceeded`].
///
/// # Errors
///
/// Returns an error if the budget is exhausted or a non-eliminated node is
/// found.
pub fn encode(
    ctx: &mut Context,
    root: ExprId,
    classes: &Classification,
    max_nodes: usize,
) -> Result<Encoding, EncodeError> {
    encode_cancellable(ctx, root, classes, max_nodes, &CancelToken::new())
}

/// Like [`encode`], but also polls `cancel` at every budget-check site and
/// returns [`EncodeError::Cancelled`] when it trips.
///
/// # Errors
///
/// Returns an error if the budget is exhausted, the token trips, or a
/// non-eliminated node is found.
pub fn encode_cancellable(
    ctx: &mut Context,
    root: ExprId,
    classes: &Classification,
    max_nodes: usize,
    cancel: &CancelToken,
) -> Result<Encoding, EncodeError> {
    let mut enc = Encoder {
        classes,
        formula_memo: IdMap::new(),
        eq_memo: HashMap::new(),
        eij_vars: HashMap::new(),
        max_nodes: if max_nodes == 0 {
            usize::MAX
        } else {
            max_nodes
        },
        cancel: cancel.clone(),
    };
    let formula = enc.formula(ctx, root)?;
    let mut eij: Vec<(ExprId, ExprId, ExprId)> =
        enc.eij_vars.iter().map(|(&(a, b), &v)| (a, b, v)).collect();
    eij.sort_unstable();
    Ok(Encoding { formula, eij })
}

struct Encoder<'a> {
    classes: &'a Classification,
    formula_memo: IdMap<ExprId>,
    eq_memo: HashMap<(ExprId, ExprId), ExprId>,
    eij_vars: HashMap<(ExprId, ExprId), ExprId>,
    max_nodes: usize,
    cancel: CancelToken,
}

impl Encoder<'_> {
    fn check_budget(&self, ctx: &Context) -> Result<(), EncodeError> {
        if self.cancel.is_cancelled() {
            Err(EncodeError::Cancelled)
        } else if ctx.len() > self.max_nodes {
            Err(EncodeError::BudgetExceeded)
        } else {
            Ok(())
        }
    }

    fn formula(&mut self, ctx: &mut Context, id: ExprId) -> Result<ExprId, EncodeError> {
        if let Some(v) = self.formula_memo.get(id) {
            return Ok(v);
        }
        self.check_budget(ctx)?;
        let result = match ctx.node(id) {
            Node::True => Context::TRUE,
            Node::False => Context::FALSE,
            Node::Var(_, Sort::Bool) => id,
            Node::Not(a) => {
                let a2 = self.formula(ctx, a)?;
                ctx.not(a2)
            }
            Node::And(xs) => {
                let xs = xs.to_vec();
                let mut rebuilt = Vec::with_capacity(xs.len());
                for x in xs {
                    rebuilt.push(self.formula(ctx, x)?);
                }
                ctx.and(rebuilt)
            }
            Node::Or(xs) => {
                let xs = xs.to_vec();
                let mut rebuilt = Vec::with_capacity(xs.len());
                for x in xs {
                    rebuilt.push(self.formula(ctx, x)?);
                }
                ctx.or(rebuilt)
            }
            Node::Ite(c, t, e) if ctx.sort(id) == Sort::Bool => {
                let c2 = self.formula(ctx, c)?;
                let t2 = self.formula(ctx, t)?;
                let e2 = self.formula(ctx, e)?;
                Ok::<ExprId, EncodeError>(ctx.ite(c2, t2, e2))?
            }
            Node::Eq(a, b) => self.eq(ctx, a, b)?,
            other => {
                return Err(EncodeError::UnsupportedNode(format!(
                    "{} in formula position",
                    other.kind_name()
                )))
            }
        };
        self.formula_memo.insert(id, result);
        Ok(result)
    }

    fn eq(&mut self, ctx: &mut Context, a: ExprId, b: ExprId) -> Result<ExprId, EncodeError> {
        if a == b {
            return Ok(Context::TRUE);
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&v) = self.eq_memo.get(&key) {
            return Ok(v);
        }
        self.check_budget(ctx)?;
        let result = match (ctx.node(a), ctx.node(b)) {
            (Node::Ite(c, t, e), _) => {
                let c2 = self.formula(ctx, c)?;
                let t2 = self.eq(ctx, t, b)?;
                let e2 = self.eq(ctx, e, b)?;
                ctx.ite(c2, t2, e2)
            }
            (_, Node::Ite(c, t, e)) => {
                let c2 = self.formula(ctx, c)?;
                let t2 = self.eq(ctx, a, t)?;
                let e2 = self.eq(ctx, a, e)?;
                ctx.ite(c2, t2, e2)
            }
            (Node::Var(..), Node::Var(..)) => {
                if self.classes.is_gvar(a) && self.classes.is_gvar(b) {
                    self.eij_var(ctx, a, b)
                } else {
                    // At least one side is maximally diverse: distinct
                    // variables never coincide.
                    Context::FALSE
                }
            }
            (x, y) => {
                return Err(EncodeError::UnsupportedNode(format!(
                    "equation between {} and {} (expected eliminated terms)",
                    x.kind_name(),
                    y.kind_name()
                )))
            }
        };
        self.eq_memo.insert(key, result);
        Ok(result)
    }

    fn eij_var(&mut self, ctx: &mut Context, a: ExprId, b: ExprId) -> ExprId {
        let key = if a <= b { (a, b) } else { (b, a) };
        *self.eij_vars.entry(key).or_insert_with(|| {
            ctx.pvar(&format!("{EIJ_PREFIX}{}!{}", key.0.index(), key.1.index()))
        })
    }
}

/// Generates transitivity constraints over the `e_ij` comparison graph.
///
/// The graph is made chordal with a minimum-degree elimination order
/// (creating `e_ij` variables for fill edges), and one constraint triple
/// (`e_ab & e_bc -> e_ac`, and rotations) is emitted per triangle
/// discovered during elimination. Returns the conjunction, which is `true`
/// when the graph is triangle-free after fill (e.g. star-shaped comparison
/// graphs).
pub fn transitivity_constraints(ctx: &mut Context, eij: &[(ExprId, ExprId, ExprId)]) -> ExprId {
    // adjacency over variables
    let mut adj: HashMap<ExprId, HashSet<ExprId>> = HashMap::new();
    let mut edge_var: HashMap<(ExprId, ExprId), ExprId> = HashMap::new();
    for &(a, b, v) in eij {
        adj.entry(a).or_default().insert(b);
        adj.entry(b).or_default().insert(a);
        edge_var.insert(if a <= b { (a, b) } else { (b, a) }, v);
    }
    fn get_edge(
        ctx: &mut Context,
        edge_var: &mut HashMap<(ExprId, ExprId), ExprId>,
        a: ExprId,
        b: ExprId,
    ) -> ExprId {
        let key = if a <= b { (a, b) } else { (b, a) };
        *edge_var.entry(key).or_insert_with(|| {
            ctx.pvar(&format!("{EIJ_PREFIX}{}!{}", key.0.index(), key.1.index()))
        })
    }

    let mut remaining: HashSet<ExprId> = adj.keys().copied().collect();
    let mut constraints: Vec<ExprId> = Vec::new();
    while !remaining.is_empty() {
        // minimum-degree vertex
        let &v = remaining
            .iter()
            .min_by_key(|&&v| (adj[&v].iter().filter(|n| remaining.contains(n)).count(), v))
            .expect("non-empty");
        let neighbors: Vec<ExprId> = adj[&v]
            .iter()
            .copied()
            .filter(|n| remaining.contains(n))
            .collect();
        // clique-ify the neighborhood (fill edges) and emit triangles
        for i in 0..neighbors.len() {
            for j in i + 1..neighbors.len() {
                let (x, y) = (neighbors[i], neighbors[j]);
                let vx = get_edge(ctx, &mut edge_var, v, x);
                let vy = get_edge(ctx, &mut edge_var, v, y);
                let xy_is_new = {
                    let key = if x <= y { (x, y) } else { (y, x) };
                    !edge_var.contains_key(&key)
                };
                let xy = get_edge(ctx, &mut edge_var, x, y);
                if xy_is_new {
                    adj.entry(x).or_default().insert(y);
                    adj.entry(y).or_default().insert(x);
                }
                // three implications per triangle
                for (p, q, r) in [(vx, vy, xy), (vx, xy, vy), (vy, xy, vx)] {
                    let pq = ctx.and2(p, q);
                    constraints.push(ctx.implies(pq, r));
                }
            }
        }
        remaining.remove(&v);
    }
    ctx.and(constraints)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gclasses(vars: &[ExprId]) -> Classification {
        Classification {
            gvars: vars.iter().copied().collect(),
        }
    }

    #[test]
    fn pvar_comparisons_are_false() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let eq = ctx.eq(a, b);
        let enc = encode(&mut ctx, eq, &Classification::default(), 0).expect("encode");
        assert_eq!(enc.formula, Context::FALSE);
        assert!(enc.eij.is_empty());
    }

    #[test]
    fn gvar_comparisons_get_eij_variables() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let eq = ctx.eq(a, b);
        let neq = ctx.not(eq);
        let enc = encode(&mut ctx, neq, &gclasses(&[a, b]), 0).expect("encode");
        assert_eq!(enc.eij.len(), 1);
        let (_, _, v) = enc.eij[0];
        let expected = ctx.not(v);
        assert_eq!(enc.formula, expected);
    }

    #[test]
    fn equations_push_through_ites() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let x = ctx.pvar("x");
        let sel = ctx.ite(x, a, b);
        // (sel = a) | (sel = b) : valid for p-vars
        let e1 = ctx.eq(sel, a);
        let e2 = ctx.eq(sel, b);
        let goal = ctx.or2(e1, e2);
        let enc = encode(&mut ctx, goal, &Classification::default(), 0).expect("encode");
        // ITE(x, a=a, b=a) | ITE(x, a=b, b=b) = ITE(x,T,F)|ITE(x,F,T) = x | !x = T
        assert_eq!(enc.formula, Context::TRUE);
    }

    #[test]
    fn mixed_p_and_g_comparison_is_false() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let eq = ctx.eq(a, b);
        let enc = encode(&mut ctx, eq, &gclasses(&[a]), 0).expect("encode");
        assert_eq!(enc.formula, Context::FALSE);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut ctx = Context::new();
        // A deliberately blowing-up pair of deep ITE trees over distinct guards.
        let mut left = ctx.tvar("l0");
        let mut right = ctx.tvar("r0");
        for i in 1..12 {
            let gl = ctx.pvar(&format!("gl{i}"));
            let gr = ctx.pvar(&format!("gr{i}"));
            let vl = ctx.tvar(&format!("l{i}"));
            let vr = ctx.tvar(&format!("r{i}"));
            left = ctx.ite(gl, vl, left);
            right = ctx.ite(gr, vr, right);
        }
        let eq = ctx.eq(left, right);
        let gvars: Vec<ExprId> = (0..12)
            .flat_map(|i| {
                let l = ctx.tvar(&format!("l{i}"));
                let r = ctx.tvar(&format!("r{i}"));
                [l, r]
            })
            .collect();
        let budget = ctx.len() + 16;
        let err = encode(&mut ctx, eq, &gclasses(&gvars), budget).unwrap_err();
        assert_eq!(err, EncodeError::BudgetExceeded);
    }

    #[test]
    fn transitivity_constraints_close_triangles() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let c = ctx.tvar("c");
        // a=b & b=c -> a=c over g-vars needs transitivity to be provable.
        let ab = ctx.eq(a, b);
        let bc = ctx.eq(b, c);
        let ac = ctx.eq(a, c);
        let prem = ctx.and2(ab, bc);
        let goal = ctx.implies(prem, ac);
        let ngoal = ctx.not(goal); // make everything general polarity
        let goal2 = ctx.not(ngoal);
        let enc = encode(&mut ctx, goal2, &gclasses(&[a, b, c]), 0).expect("encode");
        assert_eq!(enc.eij.len(), 3);
        let trans = transitivity_constraints(&mut ctx, &enc.eij);
        assert_ne!(trans, Context::TRUE, "triangle must yield constraints");
        // Without constraints the encoded formula is falsifiable; with them
        // it is a tautology. Check semantically over Booleans.
        use eufm::oracle::check_exhaustive;
        assert!(check_exhaustive(&ctx, enc.formula, 1 << 20).is_invalid());
        let guarded = ctx.implies(trans, enc.formula);
        assert!(check_exhaustive(&ctx, guarded, 1 << 20).is_valid());
    }

    #[test]
    fn star_graphs_need_no_transitivity() {
        let mut ctx = Context::new();
        let hub = ctx.tvar("hub");
        let eij: Vec<(ExprId, ExprId, ExprId)> = (0..5)
            .map(|i| {
                let leaf = ctx.tvar(&format!("leaf{i}"));
                let eq = ctx.eq(hub, leaf);
                let v = ctx.pvar(&format!("{EIJ_PREFIX}star{i}"));
                let _ = eq;
                if hub <= leaf {
                    (hub, leaf, v)
                } else {
                    (leaf, hub, v)
                }
            })
            .collect();
        let trans = transitivity_constraints(&mut ctx, &eij);
        assert_eq!(trans, Context::TRUE);
    }
}
