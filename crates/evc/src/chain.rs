//! Update-chain extraction from memory-state expressions.
//!
//! The Register-File state produced by symbolic simulation is a chain of
//! *updates* — conditional writes `ITE(context, write(prev, addr, data),
//! prev)` — over an initial-state variable (paper Sect. 5 and Fig. 2). The
//! rewriting-rule engine works directly on this representation, and the
//! [`UpdateChain::render`] method reproduces the Fig. 2 listings.

use eufm::{Context, ExprId, Node, Sort};

/// One update in a chain: the triple `context, address, data` plus the
/// surrounding state expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Update {
    /// The condition under which the write occurs (`true` for an
    /// unconditional write).
    pub guard: ExprId,
    /// The written address.
    pub addr: ExprId,
    /// The written data.
    pub data: ExprId,
    /// The memory state before this update.
    pub pre_state: ExprId,
    /// The memory state after this update (the update expression itself).
    pub post_state: ExprId,
}

/// A memory expression decomposed into a base state and updates in
/// *chronological* (bottom-up) order: `updates[0]` is applied first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateChain {
    /// The initial memory state (a variable).
    pub base: ExprId,
    /// The updates, first-applied first.
    pub updates: Vec<Update>,
}

/// An error while parsing a memory expression into an update chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainError {
    /// Description of the unexpected structure.
    pub message: String,
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "update-chain parse error: {}", self.message)
    }
}

impl std::error::Error for ChainError {}

/// Parses `mem` (a memory-sorted expression) into an [`UpdateChain`].
///
/// # Errors
///
/// Returns [`ChainError`] if the expression is not a chain of conditional
/// writes over a memory variable.
pub fn parse(ctx: &Context, mem: ExprId) -> Result<UpdateChain, ChainError> {
    if ctx.sort(mem) != Sort::Mem {
        return Err(ChainError {
            message: "expression is not memory-sorted".to_owned(),
        });
    }
    let mut updates_rev: Vec<Update> = Vec::new();
    let mut cur = mem;
    loop {
        match ctx.node(cur) {
            Node::Var(_, Sort::Mem) => {
                let mut updates = updates_rev;
                updates.reverse();
                return Ok(UpdateChain { base: cur, updates });
            }
            Node::Write(m, a, d) => {
                updates_rev.push(Update {
                    guard: Context::TRUE,
                    addr: a,
                    data: d,
                    pre_state: m,
                    post_state: cur,
                });
                cur = m;
            }
            Node::Ite(c, t, e) => {
                let (c, t, e) = (c, t, e);
                match ctx.node(t) {
                    Node::Write(m, a, d) if m == e => {
                        updates_rev.push(Update {
                            guard: c,
                            addr: a,
                            data: d,
                            pre_state: e,
                            post_state: cur,
                        });
                        cur = e;
                    }
                    _ => {
                        return Err(ChainError {
                            message: format!(
                                "ITE branch is not `write(prev, ..)` over the else state \
                                 (then = {}, else = {})",
                                ctx.node(t).kind_name(),
                                ctx.node(e).kind_name()
                            ),
                        })
                    }
                }
            }
            other => {
                return Err(ChainError {
                    message: format!("unexpected node `{}` in update chain", other.kind_name()),
                })
            }
        }
    }
}

/// Rebuilds a memory expression from a base state and a sequence of
/// `(guard, addr, data)` updates (the inverse of [`parse`]).
///
/// # Panics
///
/// Panics if the sorts do not line up (memory base, Boolean guards, term
/// addresses and data).
pub fn rebuild(
    ctx: &mut Context,
    base: ExprId,
    updates: impl IntoIterator<Item = (ExprId, ExprId, ExprId)>,
) -> ExprId {
    let mut state = base;
    for (guard, addr, data) in updates {
        state = ctx.update(state, guard, addr, data);
    }
    state
}

impl UpdateChain {
    /// The number of updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Reconstructs the memory expression this chain was parsed from.
    pub fn to_expr(&self, ctx: &mut Context) -> ExprId {
        rebuild(
            ctx,
            self.base,
            self.updates.iter().map(|u| (u.guard, u.addr, u.data)),
        )
    }

    /// Whether the chain has no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The final memory state (after all updates), or the base for an empty
    /// chain.
    pub fn final_state(&self) -> ExprId {
        self.updates.last().map_or(self.base, |u| u.post_state)
    }

    /// Renders the chain in the style of the paper's Fig. 2: one
    /// `<context, address, data>` triple per line, topmost (latest) update
    /// first, with arrows pointing at the previous state.
    pub fn render(&self, ctx: &Context) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for u in self.updates.iter().rev() {
            let guard = eufm::print::to_sexpr_capped(ctx, u.guard, 120)
                .unwrap_or_else(|| "<large>".to_owned());
            let addr = eufm::print::to_sexpr_capped(ctx, u.addr, 60)
                .unwrap_or_else(|| "<large>".to_owned());
            let data = eufm::print::to_sexpr_capped(ctx, u.data, 120)
                .unwrap_or_else(|| "<large>".to_owned());
            let _ = writeln!(out, "<{guard}, {addr}, {data}>");
            let _ = writeln!(out, "  |");
        }
        let base = eufm::print::to_sexpr_capped(ctx, self.base, 60)
            .unwrap_or_else(|| "<large>".to_owned());
        let _ = writeln!(out, "{base}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_three_update_chain() {
        let mut ctx = Context::new();
        let rf = ctx.mvar("RegFile");
        let mut cur = rf;
        let mut guards = Vec::new();
        for i in 0..3 {
            let c = ctx.pvar(&format!("c{i}"));
            let a = ctx.tvar(&format!("a{i}"));
            let d = ctx.tvar(&format!("d{i}"));
            cur = ctx.update(cur, c, a, d);
            guards.push(c);
        }
        let chain = parse(&ctx, cur).expect("parse");
        assert_eq!(chain.base, rf);
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.updates[0].guard, guards[0]);
        assert_eq!(chain.updates[2].guard, guards[2]);
        assert_eq!(chain.final_state(), cur);
        assert_eq!(chain.updates[0].pre_state, rf);
    }

    #[test]
    fn unconditional_writes_have_true_guard() {
        let mut ctx = Context::new();
        let rf = ctx.mvar("RegFile");
        let a = ctx.tvar("a");
        let d = ctx.tvar("d");
        let w = ctx.write(rf, a, d);
        let chain = parse(&ctx, w).expect("parse");
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.updates[0].guard, Context::TRUE);
    }

    #[test]
    fn empty_chain_is_just_the_base() {
        let mut ctx = Context::new();
        let rf = ctx.mvar("RegFile");
        let chain = parse(&ctx, rf).expect("parse");
        assert!(chain.is_empty());
        assert_eq!(chain.final_state(), rf);
    }

    #[test]
    fn malformed_expressions_are_rejected() {
        let mut ctx = Context::new();
        let rf1 = ctx.mvar("rf1");
        let rf2 = ctx.mvar("rf2");
        let c = ctx.pvar("c");
        let bad = ctx.ite(c, rf1, rf2); // not an update
        assert!(parse(&ctx, bad).is_err());
        let a = ctx.tvar("a");
        assert!(parse(&ctx, a).is_err());
    }

    #[test]
    fn render_lists_latest_update_first() {
        let mut ctx = Context::new();
        let rf = ctx.mvar("RegFile");
        let c1 = ctx.pvar("Valid_1");
        let a1 = ctx.tvar("Dest_1");
        let d1 = ctx.tvar("Result_1");
        let c2 = ctx.pvar("Valid_2");
        let a2 = ctx.tvar("Dest_2");
        let d2 = ctx.tvar("Result_2");
        let s1 = ctx.update(rf, c1, a1, d1);
        let s2 = ctx.update(s1, c2, a2, d2);
        let chain = parse(&ctx, s2).expect("parse");
        let text = chain.render(&ctx);
        let pos2 = text.find("Dest_2").expect("Dest_2 shown");
        let pos1 = text.find("Dest_1").expect("Dest_1 shown");
        assert!(pos2 < pos1, "latest update renders first:\n{text}");
        assert!(text.trim_end().ends_with("RegFile:m"));
    }
}

#[cfg(test)]
mod rebuild_tests {
    use super::*;

    #[test]
    fn parse_then_rebuild_is_identity() {
        let mut ctx = Context::new();
        let rf = ctx.mvar("RegFile");
        let mut expr = rf;
        for i in 0..5 {
            let c = ctx.pvar(&format!("c{i}"));
            let a = ctx.tvar(&format!("a{i}"));
            let d = ctx.tvar(&format!("d{i}"));
            expr = ctx.update(expr, c, a, d);
        }
        let chain = parse(&ctx, expr).expect("parse");
        assert_eq!(chain.to_expr(&mut ctx), expr);
    }

    #[test]
    fn rebuild_from_triples() {
        let mut ctx = Context::new();
        let rf = ctx.mvar("RegFile");
        let c = ctx.pvar("c");
        let a = ctx.tvar("a");
        let d = ctx.tvar("d");
        let built = rebuild(&mut ctx, rf, [(c, a, d), (Context::TRUE, a, d)]);
        let chain = parse(&ctx, built).expect("parse");
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.updates[1].guard, Context::TRUE);
    }
}
