//! Elimination of uninterpreted functions and predicates by the
//! nested-`ITE` scheme (Bryant–German–Velev).
//!
//! The first application of `f` is replaced by a fresh variable `c1`; the
//! second, `f(a2, b2)`, by `ITE(a2 = a1 & b2 = b1, c1, c2)`; and so on.
//! Predicates use fresh Boolean variables instead. Unlike Ackermann
//! constraints, this scheme preserves the positive-equality structure of
//! the formula: the argument equations appear only inside `ITE` controls,
//! where the maximal-diversity theorem still licenses treating p-variable
//! comparisons as constants.

use std::collections::HashMap;

use eufm::{Context, ExprId, IdMap, Node, Sort, Symbol};

/// The result of uninterpreted-symbol elimination.
#[derive(Debug, Clone)]
pub struct Elimination {
    /// The rebuilt formula, free of `Uf` nodes.
    pub root: ExprId,
    /// For every fresh variable introduced, the symbol of the application
    /// it abstracts (used by the Positive-Equality classifier).
    pub fresh_vars: HashMap<ExprId, Symbol>,
    /// Number of applications eliminated, per symbol.
    pub app_counts: HashMap<Symbol, usize>,
}

/// Eliminates every uninterpreted function and predicate application in
/// `root`.
///
/// Applications are processed in a deterministic first-occurrence
/// (post-order) order, so re-running on the same formula produces the same
/// result.
///
/// # Panics
///
/// Panics if `root` is not a formula.
pub fn eliminate(ctx: &mut Context, root: ExprId) -> Elimination {
    assert_eq!(
        ctx.sort(root),
        Sort::Bool,
        "uf elimination expects a formula"
    );
    let mut pass = Pass {
        memo: IdMap::new(),
        prior: HashMap::new(),
        fresh_vars: HashMap::new(),
        app_counts: HashMap::new(),
    };
    let new_root = pass.rebuild(ctx, root);
    Elimination {
        root: new_root,
        fresh_vars: pass.fresh_vars,
        app_counts: pass.app_counts,
    }
}

struct Pass {
    memo: IdMap<ExprId>,
    /// Previous applications per symbol: (rebuilt argument lists, the fresh
    /// variable standing for that application).
    prior: HashMap<Symbol, Vec<(Vec<ExprId>, ExprId)>>,
    fresh_vars: HashMap<ExprId, Symbol>,
    app_counts: HashMap<Symbol, usize>,
}

impl Pass {
    fn rebuild(&mut self, ctx: &mut Context, id: ExprId) -> ExprId {
        if let Some(v) = self.memo.get(id) {
            return v;
        }
        let result = match ctx.node(id) {
            Node::Uf(sym, args, sort) => {
                let args = args.to_vec();
                let rebuilt: Vec<ExprId> = args.iter().map(|&a| self.rebuild(ctx, a)).collect();
                self.eliminate_app(ctx, sym, rebuilt, sort)
            }
            Node::True => Context::TRUE,
            Node::False => Context::FALSE,
            Node::Var(..) => id,
            Node::Ite(c, t, e) => {
                let c2 = self.rebuild(ctx, c);
                let t2 = self.rebuild(ctx, t);
                let e2 = self.rebuild(ctx, e);
                ctx.ite(c2, t2, e2)
            }
            Node::Eq(a, b) => {
                let a2 = self.rebuild(ctx, a);
                let b2 = self.rebuild(ctx, b);
                ctx.eq(a2, b2)
            }
            Node::Not(a) => {
                let a2 = self.rebuild(ctx, a);
                ctx.not(a2)
            }
            Node::And(xs) => {
                let xs = xs.to_vec();
                let rebuilt: Vec<ExprId> = xs.iter().map(|&x| self.rebuild(ctx, x)).collect();
                ctx.and(rebuilt)
            }
            Node::Or(xs) => {
                let xs = xs.to_vec();
                let rebuilt: Vec<ExprId> = xs.iter().map(|&x| self.rebuild(ctx, x)).collect();
                ctx.or(rebuilt)
            }
            Node::Read(m, a) => {
                let m2 = self.rebuild(ctx, m);
                let a2 = self.rebuild(ctx, a);
                ctx.read(m2, a2)
            }
            Node::Write(m, a, d) => {
                let m2 = self.rebuild(ctx, m);
                let a2 = self.rebuild(ctx, a);
                let d2 = self.rebuild(ctx, d);
                ctx.write(m2, a2, d2)
            }
        };
        self.memo.insert(id, result);
        result
    }

    fn eliminate_app(
        &mut self,
        ctx: &mut Context,
        sym: Symbol,
        args: Vec<ExprId>,
        sort: Sort,
    ) -> ExprId {
        // Identical (rebuilt) argument lists share the fresh variable of the
        // first occurrence outright.
        if let Some(list) = self.prior.get(&sym) {
            for (prev_args, var) in list {
                if *prev_args == args {
                    return *var;
                }
            }
        }
        let count = self.app_counts.entry(sym).or_insert(0);
        *count += 1;
        let idx = *count;
        let name = ctx.name(sym).to_owned();
        let fresh = ctx.fresh_var(&format!("app!{name}!{idx}"), sort);
        self.fresh_vars.insert(fresh, sym);

        // ITE(args = args_1, c_1, ITE(args = args_2, c_2, ... c_new))
        let prior: Vec<(Vec<ExprId>, ExprId)> = self.prior.get(&sym).cloned().unwrap_or_default();
        let mut result = fresh;
        for (prev_args, var) in prior.iter().rev() {
            let eqs: Vec<ExprId> = prev_args
                .iter()
                .zip(args.iter())
                .map(|(&p, &a)| ctx.eq(p, a))
                .collect();
            let guard = ctx.and(eqs);
            result = ctx.ite(guard, *var, result);
        }
        self.prior.entry(sym).or_default().push((args, fresh));
        result
    }
}

/// Eliminates uninterpreted applications by **Ackermann's reduction**
/// instead of the nested-`ITE` scheme: each application becomes a fresh
/// variable, and for every pair of applications of the same symbol a
/// functional-consistency constraint `args equal -> results equal` is
/// conjoined as a premise.
///
/// This is the classical alternative the paper's line of work argues
/// *against*: the constraint premises put every argument equation in
/// negative polarity, so all argument terms become g-terms and the
/// Positive-Equality reduction degenerates — the ablation benchmark
/// `ablation_uf_scheme` quantifies the damage. Provided for comparison;
/// the verification flows use [`eliminate`].
///
/// Returns the implication `constraints -> root'`, which is valid iff the
/// original formula is valid.
///
/// # Panics
///
/// Panics if `root` is not a formula.
pub fn eliminate_ackermann(ctx: &mut Context, root: ExprId) -> Elimination {
    assert_eq!(
        ctx.sort(root),
        Sort::Bool,
        "uf elimination expects a formula"
    );
    // First rebuild bottom-up replacing every application by a fresh var.
    let mut memo: IdMap<ExprId> = IdMap::new();
    let mut apps: HashMap<Symbol, Vec<(Vec<ExprId>, ExprId)>> = HashMap::new();
    let mut fresh_vars: HashMap<ExprId, Symbol> = HashMap::new();
    let mut app_counts: HashMap<Symbol, usize> = HashMap::new();
    let new_root = ackermann_rebuild(
        ctx,
        root,
        &mut memo,
        &mut apps,
        &mut fresh_vars,
        &mut app_counts,
    );
    // Then conjoin pairwise consistency constraints.
    let mut constraints: Vec<ExprId> = Vec::new();
    let mut symbols: Vec<Symbol> = apps.keys().copied().collect();
    symbols.sort_unstable();
    for sym in symbols {
        let list = &apps[&sym];
        for i in 0..list.len() {
            for j in i + 1..list.len() {
                let (args_i, var_i) = (&list[i].0, list[i].1);
                let (args_j, var_j) = (&list[j].0, list[j].1);
                let eqs: Vec<ExprId> = args_i
                    .iter()
                    .zip(args_j.iter())
                    .map(|(&a, &b)| ctx.eq(a, b))
                    .collect();
                let premise = ctx.and(eqs);
                let concl = if ctx.sort(var_i) == Sort::Bool {
                    ctx.iff(var_i, var_j)
                } else {
                    ctx.eq(var_i, var_j)
                };
                constraints.push(ctx.implies(premise, concl));
            }
        }
    }
    let all = ctx.and(constraints);
    let guarded = ctx.implies(all, new_root);
    Elimination {
        root: guarded,
        fresh_vars,
        app_counts,
    }
}

fn ackermann_rebuild(
    ctx: &mut Context,
    id: ExprId,
    memo: &mut IdMap<ExprId>,
    apps: &mut HashMap<Symbol, Vec<(Vec<ExprId>, ExprId)>>,
    fresh_vars: &mut HashMap<ExprId, Symbol>,
    app_counts: &mut HashMap<Symbol, usize>,
) -> ExprId {
    if let Some(v) = memo.get(id) {
        return v;
    }
    let result = match ctx.node(id) {
        Node::Uf(sym, args, sort) => {
            let args = args.to_vec();
            let rebuilt: Vec<ExprId> = args
                .iter()
                .map(|&a| ackermann_rebuild(ctx, a, memo, apps, fresh_vars, app_counts))
                .collect();
            let list = apps.entry(sym).or_default();
            if let Some((_, var)) = list.iter().find(|(prev, _)| *prev == rebuilt) {
                *var
            } else {
                let count = app_counts.entry(sym).or_insert(0);
                *count += 1;
                let idx = *count;
                let name = ctx.name(sym).to_owned();
                let fresh = ctx.fresh_var(&format!("ack!{name}!{idx}"), sort);
                fresh_vars.insert(fresh, sym);
                apps.entry(sym).or_default().push((rebuilt, fresh));
                fresh
            }
        }
        Node::True => Context::TRUE,
        Node::False => Context::FALSE,
        Node::Var(..) => id,
        Node::Ite(c, t, e) => {
            let c2 = ackermann_rebuild(ctx, c, memo, apps, fresh_vars, app_counts);
            let t2 = ackermann_rebuild(ctx, t, memo, apps, fresh_vars, app_counts);
            let e2 = ackermann_rebuild(ctx, e, memo, apps, fresh_vars, app_counts);
            ctx.ite(c2, t2, e2)
        }
        Node::Eq(a, b) => {
            let a2 = ackermann_rebuild(ctx, a, memo, apps, fresh_vars, app_counts);
            let b2 = ackermann_rebuild(ctx, b, memo, apps, fresh_vars, app_counts);
            ctx.eq(a2, b2)
        }
        Node::Not(a) => {
            let a2 = ackermann_rebuild(ctx, a, memo, apps, fresh_vars, app_counts);
            ctx.not(a2)
        }
        Node::And(xs) => {
            let xs = xs.to_vec();
            let rebuilt: Vec<ExprId> = xs
                .iter()
                .map(|&x| ackermann_rebuild(ctx, x, memo, apps, fresh_vars, app_counts))
                .collect();
            ctx.and(rebuilt)
        }
        Node::Or(xs) => {
            let xs = xs.to_vec();
            let rebuilt: Vec<ExprId> = xs
                .iter()
                .map(|&x| ackermann_rebuild(ctx, x, memo, apps, fresh_vars, app_counts))
                .collect();
            ctx.or(rebuilt)
        }
        Node::Read(m, a) => {
            let m2 = ackermann_rebuild(ctx, m, memo, apps, fresh_vars, app_counts);
            let a2 = ackermann_rebuild(ctx, a, memo, apps, fresh_vars, app_counts);
            ctx.read(m2, a2)
        }
        Node::Write(m, a, d) => {
            let m2 = ackermann_rebuild(ctx, m, memo, apps, fresh_vars, app_counts);
            let a2 = ackermann_rebuild(ctx, a, memo, apps, fresh_vars, app_counts);
            let d2 = ackermann_rebuild(ctx, d, memo, apps, fresh_vars, app_counts);
            ctx.write(m2, a2, d2)
        }
    };
    memo.insert(id, result);
    result
}

/// Whether the DAG under `root` still contains uninterpreted applications.
pub fn contains_ufs(ctx: &Context, root: ExprId) -> bool {
    let mut found = false;
    ctx.visit_post_order(&[root], |id| {
        if matches!(ctx.node(id), Node::Uf(..)) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use eufm::oracle::{check_exhaustive, check_sampled, OracleResult};

    #[test]
    fn functional_consistency_becomes_provable() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let fa = ctx.uf("f", vec![a]);
        let fb = ctx.uf("f", vec![b]);
        let prem = ctx.eq(a, b);
        let concl = ctx.eq(fa, fb);
        let goal = ctx.implies(prem, concl);
        let elim = eliminate(&mut ctx, goal);
        assert!(!contains_ufs(&ctx, elim.root));
        // Now UF-free: the exhaustive oracle decides validity exactly.
        match check_exhaustive(&ctx, elim.root, 1 << 22) {
            OracleResult::Valid => {}
            other => panic!("expected valid, got {other:?}"),
        }
    }

    #[test]
    fn invalid_formulas_stay_invalid() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let fa = ctx.uf("f", vec![a]);
        let fb = ctx.uf("f", vec![b]);
        let goal = ctx.eq(fa, fb); // not valid: a may differ from b
        let elim = eliminate(&mut ctx, goal);
        assert!(check_exhaustive(&ctx, elim.root, 1 << 22).is_invalid());
    }

    #[test]
    fn identical_applications_share_one_variable() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let fa1 = ctx.uf("f", vec![a]);
        let fa2 = ctx.uf("f", vec![a]);
        assert_eq!(fa1, fa2); // hash-consed already
        let goal = ctx.eq(fa1, fa2);
        assert_eq!(goal, Context::TRUE);
        // two syntactically different but equal-after-rebuild argument lists
        let x = ctx.pvar("x");
        let ite = ctx.ite(x, a, a); // simplifies to a
        let f_ite = ctx.uf("f", vec![ite]);
        let goal2 = ctx.eq(fa1, f_ite);
        assert_eq!(goal2, Context::TRUE);
    }

    #[test]
    fn predicates_use_boolean_variables() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let pa = ctx.up("p", vec![a]);
        let pb = ctx.up("p", vec![b]);
        let prem = ctx.eq(a, b);
        let same = ctx.iff(pa, pb);
        let goal = ctx.implies(prem, same);
        let elim = eliminate(&mut ctx, goal);
        assert!(check_exhaustive(&ctx, elim.root, 1 << 22).is_valid());
        assert_eq!(elim.app_counts.len(), 1);
        assert_eq!(elim.fresh_vars.len(), 2);
    }

    #[test]
    fn nested_applications_are_handled_bottom_up() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        // a = b -> g(f(a)) = g(f(b)) : valid
        let fa = ctx.uf("f", vec![a]);
        let fb = ctx.uf("f", vec![b]);
        let gfa = ctx.uf("g", vec![fa]);
        let gfb = ctx.uf("g", vec![fb]);
        let prem = ctx.eq(a, b);
        let concl = ctx.eq(gfa, gfb);
        let goal = ctx.implies(prem, concl);
        let elim = eliminate(&mut ctx, goal);
        assert!(check_exhaustive(&ctx, elim.root, 1 << 22).is_valid());
    }

    #[test]
    fn multi_arg_guards_compare_argumentwise() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let c = ctx.tvar("c");
        let f1 = ctx.uf("h", vec![a, b]);
        let f2 = ctx.uf("h", vec![a, c]);
        let prem = ctx.eq(b, c);
        let concl = ctx.eq(f1, f2);
        let goal = ctx.implies(prem, concl);
        let elim = eliminate(&mut ctx, goal);
        assert!(check_exhaustive(&ctx, elim.root, 1 << 22).is_valid());
        // but without the premise it is invalid
        let bare = ctx.eq(f1, f2);
        let elim2 = eliminate(&mut ctx, bare);
        assert!(check_exhaustive(&ctx, elim2.root, 1 << 22).is_invalid());
    }

    #[test]
    fn elimination_preserves_sampled_validity_on_random_mix() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let x = ctx.pvar("x");
        let fa = ctx.uf("f", vec![a]);
        let fb = ctx.uf("f", vec![b]);
        let sel = ctx.ite(x, fa, fb);
        let goal = {
            let e1 = ctx.eq(sel, fa);
            let e2 = ctx.eq(sel, fb);
            ctx.or2(e1, e2) // valid: sel is one of them
        };
        let before = check_sampled(&ctx, goal, 300).is_valid();
        let elim = eliminate(&mut ctx, goal);
        let after = check_exhaustive(&ctx, elim.root, 1 << 22).is_valid();
        assert_eq!(before, after);
        assert!(after);
    }
}
