//! `evcheck` — a validity checker for EUFM formulas in s-expression form,
//! after Velev's EVC.
//!
//! ```text
//! evcheck [--conservative] [--no-transitivity] [--ackermann] [file.sexpr]
//! ```
//!
//! Reads a formula like `(= (read (write rf:m a:t d:t) a:t) d:t)` from the
//! file (or stdin), runs the full translation (memory elimination, UF
//! elimination, Positive Equality, Tseitin, CDCL SAT), and prints `VALID`
//! or `INVALID` with a counterexample sketch and translation statistics.

use std::io::Read;

use eufm::Context;
use evc::check::{check_validity, CheckOptions, CheckOutcome, UfScheme};
use evc::mem::MemoryModel;

fn usage() -> ! {
    eprintln!(
        "usage: evcheck [--conservative] [--no-transitivity] [--ackermann] [file.sexpr]\n\
         formula syntax: (and ...) (or ...) (not e) (ite c t e) (= a b)\n\
         (read m a) (write m a d) (uf name args..) (up name args..)\n\
         variables: name:b (Boolean), name:t (term), name:m (memory)"
    );
    std::process::exit(2)
}

fn main() {
    let mut options = CheckOptions::default();
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--conservative" => options.memory = MemoryModel::Conservative,
            "--no-transitivity" => options.transitivity = false,
            "--ackermann" => options.uf_scheme = UfScheme::Ackermann,
            "--help" | "-h" => usage(),
            other => {
                if path.is_some() {
                    usage();
                }
                path = Some(other.to_owned());
            }
        }
    }

    let input = match &path {
        Some(p) => std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("evcheck: cannot read {p}: {e}");
            std::process::exit(2)
        }),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| {
                    eprintln!("evcheck: cannot read stdin: {e}");
                    std::process::exit(2)
                });
            buf
        }
    };

    let mut ctx = Context::new();
    let formula = eufm::parse::from_sexpr(&mut ctx, input.trim()).unwrap_or_else(|e| {
        eprintln!("evcheck: {e}");
        std::process::exit(2)
    });
    if ctx.sort(formula) != eufm::Sort::Bool {
        eprintln!("evcheck: input is a term, not a formula");
        std::process::exit(2);
    }

    let report = check_validity(&mut ctx, formula, &options);
    match &report.outcome {
        CheckOutcome::Valid => println!("VALID"),
        CheckOutcome::Invalid { true_vars } => {
            println!("INVALID");
            println!(
                "counterexample: true variables = {{{}}}",
                true_vars.join(", ")
            );
        }
        CheckOutcome::Unknown(reason) => println!("UNKNOWN ({reason:?})"),
    }
    println!(
        "primary inputs: {} e_ij + {} other; CNF: {} vars, {} clauses; \
         translate {:?}, SAT {:?}",
        report.stats.eij_vars,
        report.stats.other_vars,
        report.stats.cnf_vars,
        report.stats.cnf_clauses,
        report.translate_time,
        report.sat_time
    );
    std::process::exit(if report.outcome.is_valid() { 0 } else { 1 })
}
