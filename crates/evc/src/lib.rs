//! EVC: translation of EUFM correctness formulas to propositional logic,
//! exploiting rewriting rules and Positive Equality.
//!
//! This crate reimplements the translation flow of Velev's EVC validity
//! checker as used in the DATE 2002 paper:
//!
//! 1. **Memory elimination** ([`mem`]): equations between memory states are
//!    reduced to reads at a fresh symbolic address; `read`/`write` are then
//!    eliminated either *with* the forwarding property (read-over-write
//!    becomes an `ITE` ladder with address equations — the general, exact
//!    model) or *conservatively* (both become general uninterpreted
//!    functions — sound, cheaper, and sufficient once the rewriting rules
//!    have removed the out-of-order instruction updates; paper Sect. 7.2).
//! 2. **Uninterpreted-function elimination** ([`uf_elim`]): every UF/UP
//!    application is replaced by a fresh variable guarded by nested-`ITE`
//!    functional-consistency selections (Bryant–German–Velev).
//! 3. **Positive-Equality encoding** ([`pe`]): equations are pushed through
//!    `ITE`s to variable leaves; p-variable comparisons collapse to
//!    constants under the maximally diverse interpretation; g-variable
//!    comparisons become fresh `e_ij` Boolean variables constrained by
//!    (sparse, chordally-closed) transitivity.
//! 4. **Validity checking** ([`check`]): the propositional result is
//!    negated, translated to CNF, and handed to the [`sat`] CDCL solver.
//!
//! The paper's contribution — the **rewriting rules** ([`rewrite`]) — runs
//! before step 1: it mechanically proves that every instruction initially
//! in the reorder buffer produces equal Register-File updates along both
//! sides of the Burch–Dill diagram, removes those updates, and replaces the
//! resulting equal memory prefixes with a single fresh variable. The
//! simplified formula no longer mentions the out-of-order core, so steps
//! 1–4 run with the conservative memory model, produce **no** `e_ij`
//! variables, and are independent of the reorder-buffer size (Tables 4–5).
//! A failed rule application localizes the offending computation slice —
//! the paper's buggy-variant experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod check;
pub mod mem;
pub mod pe;
pub mod rewrite;
pub mod uf_elim;

pub use check::{check_validity, CheckOptions, CheckOutcome, CheckReport};
pub use mem::MemoryModel;
pub use rewrite::{
    rewrite_correctness, rewrite_correctness_certified, RewriteError, RewriteInput, RewriteOutcome,
};
