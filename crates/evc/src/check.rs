//! The end-to-end validity checker: memory elimination → polarity
//! classification → UF elimination → Positive-Equality encoding →
//! transitivity → Tseitin → CDCL SAT.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use eufm::polarity;
use eufm::stats::{primary_inputs, PrimaryInputStats};
use eufm::{CancelToken, Context, ExprId, Node, Sort};
use sat::solver::LimitReason;
use sat::{Limits, Mode, Outcome, Phase, Solver, SolverStats};

use crate::mem::{self, MemoryModel};
use crate::pe::{self, Classification, EncodeError};
use crate::uf_elim;

/// `e_ij` variables introduced by the Positive-Equality encoding.
static PE_EIJ_VARS: trace::Counter = trace::Counter::new("evc.pe.eij_vars");
/// p-variables (term variables never compared generally).
static PE_PTERMS: trace::Counter = trace::Counter::new("evc.pe.pterms");
/// g-terms (value leaves of general equations).
static PE_GTERMS: trace::Counter = trace::Counter::new("evc.pe.gterms");
/// CNF variables of the main (correctness-formula) translation. Counted
/// here rather than inside Tseitin so the rewrite engine's per-obligation
/// mini-CNFs don't skew the headline figure; agrees with
/// [`TranslationStats::cnf_vars`].
static TSEITIN_VARS: trace::Counter = trace::Counter::new("sat.tseitin.vars");
/// CNF clauses of the main translation; agrees with
/// [`TranslationStats::cnf_clauses`].
static TSEITIN_CLAUSES: trace::Counter = trace::Counter::new("sat.tseitin.clauses");
/// Conflicts analyzed by the main SAT solve; agrees with
/// [`SolverStats::conflicts`] in the report.
static CDCL_CONFLICTS: trace::Counter = trace::Counter::new("sat.cdcl.conflicts");
/// Decisions made by the main SAT solve.
static CDCL_DECISIONS: trace::Counter = trace::Counter::new("sat.cdcl.decisions");
/// Literals propagated by the main SAT solve.
static CDCL_PROPAGATIONS: trace::Counter = trace::Counter::new("sat.cdcl.propagations");

/// Which functional-consistency elimination scheme to use for
/// uninterpreted applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UfScheme {
    /// The nested-`ITE` scheme (Bryant–German–Velev); preserves
    /// positive-equality structure. The default.
    #[default]
    NestedIte,
    /// Ackermann's reduction; the constraint premises negate every
    /// argument equation, degrading the Positive-Equality reduction.
    /// Provided as an ablation.
    Ackermann,
}

/// Options controlling the translation and the SAT search.
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// How memories are eliminated.
    pub memory: MemoryModel,
    /// Whether to emit transitivity constraints over the `e_ij` graph.
    pub transitivity: bool,
    /// Tseitin mode.
    pub tseitin: Mode,
    /// Uninterpreted-function elimination scheme.
    pub uf_scheme: UfScheme,
    /// SAT resource limits.
    pub sat_limits: Limits,
    /// Expression-node budget for the translation (0 = unlimited); blowing
    /// past it yields [`CheckOutcome::Unknown`] — the graceful stand-in for
    /// the paper's out-of-memory cells.
    pub max_nodes: usize,
    /// Log a DRUP proof for UNSAT (i.e. `Valid`) answers and verify it
    /// with the independent checker; the result lands in
    /// [`CheckReport::proof_checked`].
    pub check_proof: bool,
    /// Run the static-analysis audits (well-formedness, Positive-Equality
    /// cross-check, phase-transition invariants) between the pipeline
    /// phases, collecting diagnostics into
    /// [`CheckReport::diagnostics`]. Defaults to on under
    /// `debug_assertions` and off in release builds, so benches stay
    /// unperturbed.
    pub audit: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            memory: MemoryModel::Forwarding,
            transitivity: true,
            tseitin: Mode::PolarityAware,
            uf_scheme: UfScheme::default(),
            sat_limits: Limits::none(),
            max_nodes: 0,
            check_proof: false,
            audit: cfg!(debug_assertions),
        }
    }
}

/// Canonical rendering of the [`CheckOptions`] fields that can change a
/// *decisive* answer or its translation statistics — the memo-key
/// context for solve and obligation queries.
///
/// Budget-style fields (SAT limits, node budgets) are deliberately
/// excluded: they can only turn an answer into [`CheckOutcome::Unknown`],
/// and unknown outcomes are never memoized — so a verdict proven under
/// one budget serves every budget, and a re-request that differs only in
/// its limits warm-starts from the store.
///
/// Public so the pipeline orchestrator can derive the same
/// [`memo::MemoKind::Solve`] key from a memoized rewrite record's
/// formula digest without re-running the rewrite.
pub fn memo_signature(options: &CheckOptions) -> String {
    let memory = match options.memory {
        MemoryModel::Forwarding => "fwd",
        MemoryModel::Conservative => "cons",
    };
    let tseitin = match options.tseitin {
        Mode::Full => "full",
        Mode::PolarityAware => "pg",
    };
    let uf = match options.uf_scheme {
        UfScheme::NestedIte => "ite",
        UfScheme::Ackermann => "ack",
    };
    format!(
        "mem={memory}|trans={}|tseitin={tseitin}|uf={uf}",
        u8::from(options.transitivity)
    )
}

/// Sort tag for a [`memo::MemoValue::Classes`] record name.
fn class_tag(sort: Sort) -> char {
    match sort {
        Sort::Bool => 'b',
        Sort::Term => 't',
        Sort::Mem => 'm',
    }
}

/// Renders a classification as sorted, sort-tagged names of the general
/// variables reachable from `root`. Unreachable g-vars are dropped —
/// they cannot influence the encoding of `root` — which keeps every
/// stored name resolvable on replay. Returns `None` (do not memoize) if
/// a reachable g-var is not a named variable.
fn render_classes(ctx: &Context, root: ExprId, gvars: &HashSet<ExprId>) -> Option<Vec<String>> {
    let mut names = Vec::new();
    let mut nameable = true;
    ctx.visit_post_order(&[root], |id| {
        if !gvars.contains(&id) {
            return;
        }
        match ctx.node(id) {
            Node::Var(sym, sort) => names.push(format!("{}:{}", class_tag(sort), ctx.name(sym))),
            _ => nameable = false,
        }
    });
    nameable.then(|| {
        names.sort();
        names
    })
}

/// Resolves stored sort-tagged names against the variables reachable
/// from `root`. Any unresolved name degrades to a miss (`None`, the cold
/// path recomputes); a successful resolution can never misclassify,
/// because hash-consing makes `(name, sort)` denote one node per
/// context.
fn resolve_classes(ctx: &Context, root: ExprId, names: &[String]) -> Option<Classification> {
    let mut by_name: HashMap<String, ExprId> = HashMap::new();
    ctx.visit_post_order(&[root], |id| {
        if let Node::Var(sym, sort) = ctx.node(id) {
            by_name.insert(format!("{}:{}", class_tag(sort), ctx.name(sym)), id);
        }
    });
    let mut gvars = HashSet::new();
    for name in names {
        gvars.insert(*by_name.get(name)?);
    }
    Some(Classification { gvars })
}

/// The verdict of a validity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The formula is valid (its negation is unsatisfiable).
    Valid,
    /// The formula is falsifiable; the names of the true propositional
    /// variables of one falsifying assignment are reported.
    Invalid {
        /// Names of the primary variables assigned *true* in the
        /// counterexample (all others are false).
        true_vars: Vec<String>,
    },
    /// A resource limit was hit before a verdict.
    Unknown(UnknownReason),
}

impl CheckOutcome {
    /// Whether the outcome is [`CheckOutcome::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, CheckOutcome::Valid)
    }

    /// Whether the outcome is [`CheckOutcome::Invalid`].
    pub fn is_invalid(&self) -> bool {
        matches!(self, CheckOutcome::Invalid { .. })
    }
}

/// Why a check returned no verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownReason {
    /// The translation exceeded the node budget (memory proxy).
    TranslationBudget,
    /// The SAT solver hit its conflict budget.
    SatConflicts,
    /// The SAT solver hit its time budget.
    SatTime,
    /// The SAT solver hit its learnt-clause (memory proxy) budget.
    SatMemory,
    /// The check was cooperatively cancelled (watchdog timeout, client
    /// disconnect, or shutdown drain tripped the [`CancelToken`]).
    Cancelled,
}

/// Statistics of the translation, in the shape of the paper's Tables 3/5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationStats {
    /// `e_ij` equality-encoding variables in the propositional formula.
    pub eij_vars: usize,
    /// Other primary Boolean variables.
    pub other_vars: usize,
    /// CNF variables after Tseitin translation.
    pub cnf_vars: usize,
    /// CNF clauses after Tseitin translation.
    pub cnf_clauses: usize,
    /// EUFM DAG nodes of the input formula.
    pub input_nodes: usize,
    /// DAG nodes of the propositional formula.
    pub bool_nodes: usize,
}

impl TranslationStats {
    /// Total primary Boolean inputs.
    pub fn total_primary(&self) -> usize {
        self.eij_vars + self.other_vars
    }
}

/// The full report of a validity check.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// The verdict.
    pub outcome: CheckOutcome,
    /// Translation statistics (partial if translation was interrupted).
    pub stats: TranslationStats,
    /// SAT search statistics (zeros if SAT never ran).
    pub sat_stats: SolverStats,
    /// Time spent translating EUFM to CNF.
    pub translate_time: Duration,
    /// Time spent in the SAT solver.
    pub sat_time: Duration,
    /// Time spent checking the DRUP proof (zero unless proof checking
    /// ran).
    pub proof_check_time: Duration,
    /// When proof checking was requested and the answer was `Valid`:
    /// whether the logged DRUP proof checked.
    pub proof_checked: Option<bool>,
    /// Diagnostics from the static-analysis audits (empty when
    /// [`CheckOptions::audit`] is off).
    pub diagnostics: Vec<lint::Diagnostic>,
}

/// Checks the validity of an EUFM formula.
///
/// # Panics
///
/// Panics if `formula` is not Boolean-sorted.
pub fn check_validity(ctx: &mut Context, formula: ExprId, options: &CheckOptions) -> CheckReport {
    check_validity_cancellable(ctx, formula, options, &CancelToken::new())
}

/// Like [`check_validity`], but polls `cancel` between the pipeline phases,
/// inside the Positive-Equality encoder's budget checks, and at every SAT
/// conflict/decision. A tripped token yields
/// [`CheckOutcome::Unknown`]`(`[`UnknownReason::Cancelled`]`)` with
/// whatever partial statistics were gathered.
///
/// # Panics
///
/// Panics if `formula` is not Boolean-sorted.
pub fn check_validity_cancellable(
    ctx: &mut Context,
    formula: ExprId,
    options: &CheckOptions,
    cancel: &CancelToken,
) -> CheckReport {
    chaos::hit("evc.check.translate");
    assert_eq!(
        ctx.sort(formula),
        Sort::Bool,
        "check_validity expects a formula"
    );
    let translate_start = Instant::now();
    let input_nodes = ctx.dag_size(&[formula]);
    let mut stats = TranslationStats {
        input_nodes,
        ..TranslationStats::default()
    };
    let mut diags = lint::Diagnostics::new();
    if options.audit {
        lint::wf::check(ctx, &[formula], &mut diags);
    }

    // Early-return with whatever partial statistics exist when the token
    // trips between phases.
    macro_rules! bail_if_cancelled {
        () => {
            if cancel.is_cancelled() {
                return CheckReport {
                    outcome: CheckOutcome::Unknown(UnknownReason::Cancelled),
                    stats,
                    sat_stats: SolverStats::default(),
                    translate_time: translate_start.elapsed(),
                    sat_time: Duration::ZERO,
                    proof_check_time: Duration::ZERO,
                    proof_checked: None,
                    diagnostics: diags.finish(),
                };
            }
        };
    }
    bail_if_cancelled!();

    // Main-solve memoization: a prior run of this exact formula under
    // these options (any budget) proved it valid — replay the stored
    // verdict and statistics without running the pipeline. The pipeline
    // counters are skipped along with the work: a memoized answer did no
    // translation and no search, and counting it would double-bill.
    // Proof-checked and audited runs always execute — their deliverables
    // (the DRUP check, the diagnostics) are not in the record.
    let memo_store = if options.check_proof || options.audit {
        None
    } else {
        memo::current()
    };
    let mut digester = memo::Digester::new();
    let solve_key = memo_store.as_ref().map(|store| {
        (
            store.clone(),
            memo::derive_key(
                memo::MemoKind::Solve,
                digester.digest(ctx, formula),
                &memo_signature(options),
            ),
        )
    });
    if let Some((store, key)) = &solve_key {
        if let Some(memo::MemoValue::Solve(rec)) = store.lookup(memo::MemoKind::Solve, *key) {
            if rec.valid {
                return CheckReport {
                    outcome: CheckOutcome::Valid,
                    stats: TranslationStats {
                        eij_vars: rec.eij_vars as usize,
                        other_vars: rec.other_vars as usize,
                        cnf_vars: rec.cnf_vars as usize,
                        cnf_clauses: rec.cnf_clauses as usize,
                        input_nodes: rec.input_nodes as usize,
                        bool_nodes: rec.bool_nodes as usize,
                    },
                    sat_stats: SolverStats {
                        decisions: rec.decisions,
                        propagations: rec.propagations,
                        conflicts: rec.conflicts,
                        restarts: rec.restarts,
                        learnt_clauses: rec.learnt_clauses,
                        deleted_clauses: rec.deleted_clauses,
                        peak_learnt_literals: rec.peak_learnt_literals,
                    },
                    translate_time: translate_start.elapsed(),
                    sat_time: Duration::ZERO,
                    proof_check_time: Duration::ZERO,
                    proof_checked: None,
                    diagnostics: diags.finish(),
                };
            }
        }
    }

    // 1. memory elimination
    let span_mem = trace::span("evc.mem");
    let no_mem = mem::eliminate(ctx, formula, options.memory);
    if options.audit {
        let discipline = match options.memory {
            MemoryModel::Forwarding => lint::MemDiscipline::Exact,
            MemoryModel::Conservative => lint::MemDiscipline::Conservative,
        };
        lint::phase::check_memory_free(ctx, no_mem, discipline, &mut diags);
    }

    drop(span_mem);

    // 2. uninterpreted-function elimination. Runs before the polarity
    // classification: elimination needs only the memory-free formula,
    // and a memoized classification is resolved against the variable
    // names reachable from the eliminated root.
    let span_uf = trace::span("evc.uf_elim");
    let elim = match options.uf_scheme {
        UfScheme::NestedIte => uf_elim::eliminate(ctx, no_mem),
        UfScheme::Ackermann => uf_elim::eliminate_ackermann(ctx, no_mem),
    };
    if options.audit {
        lint::phase::check_uf_free(ctx, elim.root, &mut diags);
    }
    drop(span_uf);
    bail_if_cancelled!();

    // 3. polarity classification on the pre-UF-elimination formula,
    // memoized by the pre/post-elimination digests. The stored value is
    // the sort-tagged g-var names; resolution scans `elim.root` for the
    // matching nodes and degrades to the cold path on any mismatch.
    let span_polarity = trace::span("evc.polarity");
    let classes_key = memo_store.as_ref().map(|store| {
        let pre = digester.digest(ctx, no_mem);
        let post = digester.digest(ctx, elim.root);
        let context = format!(
            "{}|elim={}",
            memo_signature(options),
            eufm::digest::digest_hex(post)
        );
        (
            store.clone(),
            memo::derive_key(memo::MemoKind::Classes, pre, &context),
        )
    });
    let memoized_classes = classes_key.as_ref().and_then(|(store, key)| {
        match store.lookup(memo::MemoKind::Classes, *key) {
            Some(memo::MemoValue::Classes(names)) => resolve_classes(ctx, elim.root, &names),
            _ => None,
        }
    });
    let classes = match memoized_classes {
        Some(classes) => classes,
        None => {
            let analysis = polarity::analyze(ctx, &[no_mem]);
            let mut gvars: HashSet<ExprId> = analysis.gvars.clone();
            let mut gsymbols: HashSet<eufm::Symbol> = HashSet::new();
            for &gt in &analysis.gterms {
                match ctx.node(gt) {
                    Node::Uf(sym, _, _) => {
                        gsymbols.insert(sym);
                    }
                    Node::Var(_, Sort::Mem) => {
                        gvars.insert(gt);
                    }
                    _ => {}
                }
            }
            match options.uf_scheme {
                UfScheme::NestedIte => {
                    for (&fresh, sym) in &elim.fresh_vars {
                        if gsymbols.contains(sym) {
                            gvars.insert(fresh);
                        }
                    }
                }
                UfScheme::Ackermann => {
                    // The Ackermann constraints compare every application's
                    // arguments and results in negative polarity: re-analyze the
                    // guarded formula so the classification reflects that.
                    let re = polarity::analyze(ctx, &[elim.root]);
                    gvars.extend(re.gvars.iter().copied());
                    for &gt in &re.gterms {
                        if matches!(ctx.node(gt), Node::Var(_, Sort::Mem)) {
                            gvars.insert(gt);
                        }
                    }
                }
            }
            // These counters describe analysis work actually performed,
            // so the memoized path (which does none) skips them.
            PE_GTERMS.add(analysis.gterms.len() as u64);
            PE_PTERMS.add(
                analysis
                    .term_vars
                    .iter()
                    .filter(|v| analysis.is_pvar(**v))
                    .count() as u64,
            );
            if let Some((store, key)) = &classes_key {
                if let Some(names) = render_classes(ctx, elim.root, &gvars) {
                    store.insert(*key, memo::MemoValue::Classes(names));
                }
            }
            Classification { gvars }
        }
    };
    drop(span_polarity);

    // 4. Positive-Equality encoding
    let span_pe = trace::span("evc.pe");
    let encoding = match pe::encode_cancellable(ctx, elim.root, &classes, options.max_nodes, cancel)
    {
        Ok(e) => e,
        Err(reason @ (EncodeError::BudgetExceeded | EncodeError::Cancelled)) => {
            let unknown = match reason {
                EncodeError::Cancelled => UnknownReason::Cancelled,
                _ => UnknownReason::TranslationBudget,
            };
            return CheckReport {
                outcome: CheckOutcome::Unknown(unknown),
                stats,
                sat_stats: SolverStats::default(),
                translate_time: translate_start.elapsed(),
                sat_time: Duration::ZERO,
                proof_check_time: Duration::ZERO,
                proof_checked: None,
                diagnostics: diags.finish(),
            };
        }
        Err(e) => panic!("internal translation error: {e}"),
    };
    if options.audit {
        let scheme = match options.uf_scheme {
            UfScheme::NestedIte => lint::ElimScheme::NestedIte,
            UfScheme::Ackermann => lint::ElimScheme::Ackermann,
        };
        lint::pe::check(
            ctx,
            &lint::PeAuditInput {
                pre_elim: no_mem,
                scheme,
                encoded: elim.root,
                fresh_vars: &elim.fresh_vars,
                gvars: &classes.gvars,
                eij: &encoding.eij,
            },
            &mut diags,
        );
    }
    let mut prop = encoding.formula;
    if options.transitivity {
        let span_chain = trace::span("evc.chain");
        let trans = pe::transitivity_constraints(ctx, &encoding.eij);
        prop = ctx.implies(trans, prop);
        drop(span_chain);
    }
    let PrimaryInputStats {
        eij_vars,
        other_vars,
    } = primary_inputs(ctx, prop);
    stats.eij_vars = eij_vars;
    stats.other_vars = other_vars;
    stats.bool_nodes = ctx.dag_size(&[prop]);
    PE_EIJ_VARS.add(eij_vars as u64);
    span_pe.attr("eij_vars", eij_vars);
    drop(span_pe);
    bail_if_cancelled!();

    // 5. Tseitin + SAT on the negation
    let mut translation = sat::tseitin::translate(ctx, prop, options.tseitin, Phase::Negative)
        .expect("encoded formula is propositional");
    if options.audit {
        lint::phase::check_cnf_accounting(&translation, &mut diags);
    }
    translation.assert_negated_root();
    stats.cnf_vars = translation.cnf.num_vars();
    stats.cnf_clauses = translation.cnf.num_clauses();
    TSEITIN_VARS.add(stats.cnf_vars as u64);
    TSEITIN_CLAUSES.add(stats.cnf_clauses as u64);
    let translate_time = translate_start.elapsed();

    let sat_start = Instant::now();
    let mut solver = Solver::from_cnf(&translation.cnf);
    solver.set_cancel(cancel.clone());
    let mut proof = sat::proof::Proof::new();
    let raw_outcome = if options.check_proof {
        solver.solve_with_proof(&mut proof)
    } else {
        solver.solve_with_limits(options.sat_limits)
    };
    let sat_time = sat_start.elapsed();
    let main_solve = solver.stats();
    CDCL_CONFLICTS.add(main_solve.conflicts);
    CDCL_DECISIONS.add(main_solve.decisions);
    CDCL_PROPAGATIONS.add(main_solve.propagations);
    let proof_check_start = Instant::now();
    let proof_checked = if options.check_proof && raw_outcome.is_unsat() {
        let _span = trace::span("sat.proof_check");
        Some(sat::proof::check(&translation.cnf, &proof).is_ok())
    } else {
        None
    };
    let proof_check_time = if proof_checked.is_some() {
        proof_check_start.elapsed()
    } else {
        Duration::ZERO
    };
    let outcome = match raw_outcome {
        Outcome::Unsat => CheckOutcome::Valid,
        Outcome::Sat(model) => {
            let mut true_vars: Vec<String> = translation
                .var_map
                .iter()
                .filter(|(_, &sat_var)| model.value(sat_var))
                .map(|(&expr, _)| match ctx.node(expr) {
                    Node::Var(sym, _) => ctx.name(sym).to_owned(),
                    _ => "?".to_owned(),
                })
                .collect();
            true_vars.sort();
            CheckOutcome::Invalid { true_vars }
        }
        Outcome::Unknown(LimitReason::Conflicts) => {
            CheckOutcome::Unknown(UnknownReason::SatConflicts)
        }
        Outcome::Unknown(LimitReason::Time) => CheckOutcome::Unknown(UnknownReason::SatTime),
        Outcome::Unknown(LimitReason::Memory) => CheckOutcome::Unknown(UnknownReason::SatMemory),
        Outcome::Unknown(LimitReason::Cancelled) => CheckOutcome::Unknown(UnknownReason::Cancelled),
    };
    // Memoize only the decisive *valid* outcome: `Invalid` carries a
    // model (not in the record), and unknown outcomes depend on the
    // budget, not the formula.
    if outcome == CheckOutcome::Valid {
        if let Some((store, key)) = &solve_key {
            store.insert(
                *key,
                memo::MemoValue::Solve(memo::SolveRecord {
                    valid: true,
                    eij_vars: stats.eij_vars as u64,
                    other_vars: stats.other_vars as u64,
                    cnf_vars: stats.cnf_vars as u64,
                    cnf_clauses: stats.cnf_clauses as u64,
                    input_nodes: stats.input_nodes as u64,
                    bool_nodes: stats.bool_nodes as u64,
                    decisions: main_solve.decisions,
                    propagations: main_solve.propagations,
                    conflicts: main_solve.conflicts,
                    restarts: main_solve.restarts,
                    learnt_clauses: main_solve.learnt_clauses,
                    deleted_clauses: main_solve.deleted_clauses,
                    peak_learnt_literals: main_solve.peak_learnt_literals,
                }),
            );
        }
    }
    CheckReport {
        outcome,
        stats,
        sat_stats: solver.stats(),
        translate_time,
        sat_time,
        proof_check_time,
        proof_checked,
        diagnostics: diags.finish(),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::needless_range_loop)] // index loops are clearest for the PHP grids

    use super::*;

    fn check(ctx: &mut Context, f: ExprId) -> CheckOutcome {
        check_validity(ctx, f, &CheckOptions::default()).outcome
    }

    #[test]
    fn functional_consistency_is_valid() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let fa = ctx.uf("f", vec![a]);
        let fb = ctx.uf("f", vec![b]);
        let prem = ctx.eq(a, b);
        let concl = ctx.eq(fa, fb);
        let goal = ctx.implies(prem, concl);
        assert!(check(&mut ctx, goal).is_valid());
    }

    #[test]
    fn transitivity_over_gvars_is_valid() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let c = ctx.tvar("c");
        let ab = ctx.eq(a, b);
        let bc = ctx.eq(b, c);
        let ac = ctx.eq(a, c);
        let prem = ctx.and2(ab, bc);
        let goal = ctx.implies(prem, ac);
        assert!(check(&mut ctx, goal).is_valid());
        // without transitivity constraints this must NOT be provable
        let opts = CheckOptions {
            transitivity: false,
            ..CheckOptions::default()
        };
        let report = check_validity(&mut ctx, goal, &opts);
        assert!(
            report.outcome.is_invalid(),
            "missing transitivity must falsify"
        );
    }

    #[test]
    fn memory_forwarding_is_valid_end_to_end() {
        let mut ctx = Context::new();
        let m = ctx.mvar("m");
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let d = ctx.tvar("d");
        let w = ctx.write(m, a, d);
        let r = ctx.read(w, b);
        let rm = ctx.read(m, b);
        let hit = ctx.eq(a, b);
        let rhs = ctx.ite(hit, d, rm);
        let goal = ctx.eq(r, rhs);
        assert!(check(&mut ctx, goal).is_valid());
    }

    #[test]
    fn invalid_formula_yields_counterexample_vars() {
        let mut ctx = Context::new();
        let x = ctx.pvar("x");
        let y = ctx.pvar("y");
        let goal = ctx.or2(x, y);
        match check(&mut ctx, goal) {
            CheckOutcome::Invalid { true_vars } => {
                // x and y must both be false in the counterexample
                assert!(!true_vars.contains(&"x".to_owned()));
                assert!(!true_vars.contains(&"y".to_owned()));
            }
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn stats_are_reported() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let eq = ctx.eq(a, b);
        let neq = ctx.not(eq);
        let x = ctx.pvar("x");
        let goal = ctx.or2(x, neq);
        let report = check_validity(&mut ctx, goal, &CheckOptions::default());
        assert!(report.outcome.is_invalid());
        assert_eq!(report.stats.eij_vars, 1);
        assert!(report.stats.other_vars >= 1);
        assert!(report.stats.cnf_vars > 0);
    }

    #[test]
    fn proof_checked_validity() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let c = ctx.tvar("c");
        let ab = ctx.eq(a, b);
        let bc = ctx.eq(b, c);
        let ac = ctx.eq(a, c);
        let prem = ctx.and2(ab, bc);
        let goal = ctx.implies(prem, ac);
        let opts = CheckOptions {
            check_proof: true,
            ..CheckOptions::default()
        };
        let report = check_validity(&mut ctx, goal, &opts);
        assert!(report.outcome.is_valid());
        assert_eq!(report.proof_checked, Some(true));
        // invalid formulas carry no proof verdict
        let bad = ctx.implies(ac, ab);
        let report = check_validity(&mut ctx, bad, &opts);
        assert!(report.outcome.is_invalid());
        assert_eq!(report.proof_checked, None);
    }

    #[test]
    fn ackermann_scheme_agrees_on_verdicts() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let fa = ctx.uf("f", vec![a]);
        let fb = ctx.uf("f", vec![b]);
        let prem = ctx.eq(a, b);
        let concl = ctx.eq(fa, fb);
        let valid = ctx.implies(prem, concl);
        let invalid = concl;
        let opts = CheckOptions {
            uf_scheme: UfScheme::Ackermann,
            ..CheckOptions::default()
        };
        assert!(check_validity(&mut ctx, valid, &opts).outcome.is_valid());
        assert!(check_validity(&mut ctx, invalid, &opts)
            .outcome
            .is_invalid());
    }

    #[test]
    fn ackermann_uses_more_eij_variables() {
        // The same positive-equality-friendly formula: nested-ITE needs no
        // e_ij variables; Ackermann's premises force them.
        let build = |ctx: &mut Context| {
            let a = ctx.tvar("a");
            let b = ctx.tvar("b");
            let c = ctx.tvar("c");
            let fa = ctx.uf("f", vec![a]);
            let fb = ctx.uf("f", vec![b]);
            let fc = ctx.uf("f", vec![c]);
            let e1 = ctx.eq(fa, fb);
            let e2 = ctx.eq(fb, fc);
            let e3 = ctx.eq(fa, fc);
            ctx.or([e1, e2, e3])
        };
        let mut ctx = Context::new();
        let f = build(&mut ctx);
        let nested = check_validity(&mut ctx, f, &CheckOptions::default());
        let mut ctx = Context::new();
        let f = build(&mut ctx);
        let ack = check_validity(
            &mut ctx,
            f,
            &CheckOptions {
                uf_scheme: UfScheme::Ackermann,
                ..CheckOptions::default()
            },
        );
        assert_eq!(nested.outcome.is_valid(), ack.outcome.is_valid());
        assert!(
            ack.stats.eij_vars > nested.stats.eij_vars,
            "Ackermann {} vs nested-ITE {} e_ij variables",
            ack.stats.eij_vars,
            nested.stats.eij_vars
        );
    }

    #[test]
    fn audited_checks_are_clean_under_both_schemes() {
        // Forwarding gets the exact-forwarding property; the conservative
        // abstraction cannot prove it, so it gets plain read congruence.
        let build = |ctx: &mut Context, memory: MemoryModel| match memory {
            MemoryModel::Forwarding => {
                let m = ctx.mvar("m");
                let a = ctx.tvar("a");
                let b = ctx.tvar("b");
                let d = ctx.tvar("d");
                let w = ctx.write(m, a, d);
                let r = ctx.read(w, b);
                let rm = ctx.read(m, b);
                let fa = ctx.uf("f", vec![r]);
                let fb = ctx.uf("f", vec![rm]);
                let hit = ctx.eq(a, b);
                let eqf = ctx.eq(fa, fb);
                let nab = ctx.not(hit);
                ctx.implies(nab, eqf)
            }
            MemoryModel::Conservative => {
                let m = ctx.mvar("m");
                let a = ctx.tvar("a");
                let b = ctx.tvar("b");
                let ra = ctx.read(m, a);
                let rb = ctx.read(m, b);
                let fa = ctx.uf("f", vec![ra]);
                let fb = ctx.uf("f", vec![rb]);
                let prem = ctx.eq(a, b);
                let concl = ctx.eq(fa, fb);
                ctx.implies(prem, concl)
            }
        };
        for scheme in [UfScheme::NestedIte, UfScheme::Ackermann] {
            for memory in [MemoryModel::Forwarding, MemoryModel::Conservative] {
                let mut ctx = Context::new();
                let goal = build(&mut ctx, memory);
                let opts = CheckOptions {
                    audit: true,
                    uf_scheme: scheme,
                    memory,
                    ..CheckOptions::default()
                };
                let report = check_validity(&mut ctx, goal, &opts);
                assert!(report.outcome.is_valid(), "{scheme:?}/{memory:?}");
                assert_eq!(
                    lint::error_count(&report.diagnostics),
                    0,
                    "{scheme:?}/{memory:?}:\n{}",
                    lint::render_all(&report.diagnostics)
                );
                assert!(!report.diagnostics.is_empty(), "summary notes expected");
            }
        }
    }

    #[test]
    fn audit_catches_a_forged_classification() {
        // Drive the encoder manually with a classification that omits a
        // g-var; the audit must flag the forged p-term.
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let eq = ctx.eq(a, b);
        let goal = ctx.not(eq); // a and b are g-vars
        let classes = Classification {
            gvars: HashSet::new(), // forged: claims both are p-terms
        };
        let encoding = pe::encode(&mut ctx, goal, &classes, 0).expect("encode");
        let mut diags = lint::Diagnostics::new();
        lint::pe::check(
            &ctx,
            &lint::PeAuditInput {
                pre_elim: goal,
                scheme: lint::ElimScheme::NestedIte,
                encoded: goal,
                fresh_vars: &std::collections::HashMap::new(),
                gvars: &classes.gvars,
                eij: &encoding.eij,
            },
            &mut diags,
        );
        let diags = diags.finish();
        assert!(
            diags
                .iter()
                .filter(|d| d.code == lint::Code::ForgedPTerm)
                .count()
                >= 2,
            "{}",
            lint::render_all(&diags)
        );
    }

    #[test]
    fn audit_catches_a_dropped_eij() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let eq = ctx.eq(a, b);
        let goal = ctx.not(eq);
        let classes = Classification {
            gvars: [a, b].into_iter().collect(),
        };
        let encoding = pe::encode(&mut ctx, goal, &classes, 0).expect("encode");
        assert_eq!(encoding.eij.len(), 1);
        let mut diags = lint::Diagnostics::new();
        lint::pe::check(
            &ctx,
            &lint::PeAuditInput {
                pre_elim: goal,
                scheme: lint::ElimScheme::NestedIte,
                encoded: goal,
                fresh_vars: &std::collections::HashMap::new(),
                gvars: &classes.gvars,
                eij: &[], // dropped
            },
            &mut diags,
        );
        let diags = diags.finish();
        assert!(
            diags.iter().any(|d| d.code == lint::Code::MissingEij),
            "{}",
            lint::render_all(&diags)
        );
    }

    #[test]
    fn pre_cancelled_token_yields_cancelled_unknown() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let fa = ctx.uf("f", vec![a]);
        let fb = ctx.uf("f", vec![b]);
        let prem = ctx.eq(a, b);
        let concl = ctx.eq(fa, fb);
        let goal = ctx.implies(prem, concl);
        let token = CancelToken::new();
        token.cancel();
        let report = check_validity_cancellable(&mut ctx, goal, &CheckOptions::default(), &token);
        assert_eq!(
            report.outcome,
            CheckOutcome::Unknown(UnknownReason::Cancelled)
        );
        assert_eq!(report.sat_stats, SolverStats::default(), "SAT never ran");
    }

    #[test]
    fn sat_limits_produce_unknown() {
        // A formula hard enough to exceed 1 conflict: pigeonhole over UPs.
        let mut ctx = Context::new();
        let mut clauses = Vec::new();
        let n = 6;
        let p: Vec<Vec<ExprId>> = (0..n)
            .map(|i| (0..n - 1).map(|j| ctx.pvar(&format!("p{i}_{j}"))).collect())
            .collect();
        for row in &p {
            clauses.push(ctx.or(row.iter().copied()));
        }
        for j in 0..n - 1 {
            for i1 in 0..n {
                for i2 in i1 + 1..n {
                    let n1 = ctx.not(p[i1][j]);
                    let n2 = ctx.not(p[i2][j]);
                    clauses.push(ctx.or2(n1, n2));
                }
            }
        }
        let conj = ctx.and(clauses);
        let goal = ctx.not(conj); // valid (PHP is unsat), but hard
        let opts = CheckOptions {
            sat_limits: Limits {
                max_conflicts: Some(1),
                ..Limits::none()
            },
            ..CheckOptions::default()
        };
        let report = check_validity(&mut ctx, goal, &opts);
        assert_eq!(
            report.outcome,
            CheckOutcome::Unknown(UnknownReason::SatConflicts)
        );
    }
}
