//! The rewriting-rule engine (paper Sect. 6).
//!
//! The engine proves, slice by slice, that every instruction initially in
//! the reorder buffer produces equal Register-File updates along both sides
//! of the Burch–Dill diagram, removes those equal update pairs, and
//! replaces the resulting equal memory prefixes with one fresh variable
//! (`RegFile_equal_state`, Fig. 2b). The surviving formula depends only on
//! the newly fetched instructions and is discharged by Positive Equality
//! with the conservative memory model — no `e_ij` variables, independent of
//! the reorder-buffer size.
//!
//! Rule applications are *mechanical* but each one is justified by a
//! machine-checked local obligation:
//!
//! - **R1 (reordering / dead updates)** — an update may move past another,
//!   and an update is invisible to a read, when their contexts cannot hold
//!   simultaneously. Checked by propositional SAT on the context pair.
//! - **R2 (pair merging)** — the retirement write and the completion write
//!   of a retire-width instruction merge: their contexts are disjoint and
//!   their disjunction equals the specification-side context (`Valid_i`).
//!   Checked by propositional SAT.
//! - **R3 (data equality, stored result)** — under `ValidResult_i`, both
//!   sides write the `Result_i` variable. Checked syntactically after
//!   cofactoring (with a semantic fallback).
//! - **R4 (data equality, completion)** — with `ValidResult_i` false and
//!   the instruction not executed, both sides compute the ALU result from
//!   operands read from the (proven-equal, relocated) previous state.
//!   Checked syntactically after relocation.
//! - **R5 (data equality, forwarding)** — with the instruction executed
//!   during the regular cycle, the forwarded operands equal the
//!   specification-side reads. Checked by a local Positive-Equality +
//!   SAT validity query (size `O(i)`, never the whole formula).
//!
//! A failed obligation aborts with [`RewriteError::Slice`], naming the
//! computation slice that does not conform — the paper's buggy-variant
//! diagnosis.

use std::collections::HashMap;

use eufm::subst::{substitute, Substitution};
use eufm::{CancelToken, Context, ExprId, Node, Sort};
use sat::{Mode, Outcome, Phase, Solver};

use lint::rewrite::Obligation;

use crate::chain::{self, Update, UpdateChain};
use crate::check::{
    check_validity_cancellable, memo_signature, CheckOptions, CheckOutcome, UnknownReason,
};
use crate::mem::MemoryModel;

/// Obligations discharged by the rewrite engine.
static REWRITE_OBLIGATIONS: trace::Counter = trace::Counter::new("evc.rewrite.obligations");
/// Obligations discharged syntactically (no SAT call).
static REWRITE_SYNTACTIC: trace::Counter = trace::Counter::new("evc.rewrite.syntactic");
/// Retirement/completion update pairs deleted from the chains.
static REWRITE_RETIRE_PAIRS: trace::Counter = trace::Counter::new("evc.rewrite.retire_pairs");

/// The inputs to the rewriting engine, extracted from a correctness bundle.
#[derive(Debug, Clone, Copy)]
pub struct RewriteInput {
    /// The full EUFM correctness formula.
    pub formula: ExprId,
    /// `RegFile_Impl`: the implementation-side final Register-File state.
    pub rf_impl: ExprId,
    /// `RegFile_Spec,0`: the specification-side state after flushing the
    /// initial implementation state (before any spec steps).
    pub rf_spec0: ExprId,
}

/// Options for the rewriting engine.
#[derive(Debug, Clone, Copy)]
pub struct RewriteOptions {
    /// Options for the local semantic obligations (R5 and fallbacks).
    pub local: CheckOptions,
    /// Capture Fig. 2-style renderings of the chains before/after.
    pub render_chains: bool,
    /// Use the structural (paper rule 2.1) forwarding check before falling
    /// back to the semantic one. Disable to force every forwarding
    /// obligation through the local Positive-Equality checker — the
    /// `ablation_structural_r5` benchmark measures the cost.
    pub structural_forwarding: bool,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            local: CheckOptions {
                memory: MemoryModel::Forwarding,
                // Never audit the local obligation checks: the rewrite run
                // is itself audited (via its justification certificates),
                // and recursive audits on every R5 obligation would
                // dominate the engine's cost.
                audit: false,
                ..CheckOptions::default()
            },
            render_chains: false,
            structural_forwarding: true,
        }
    }
}

/// A successful rewrite.
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    /// The simplified correctness formula (initial-instruction updates
    /// removed, equal prefixes replaced by `RegFile_equal_state`).
    pub formula: ExprId,
    /// The fresh variable standing for the proven-equal prefix states.
    pub equal_state: ExprId,
    /// Number of reorder-buffer slices processed (the paper's `N`).
    pub slices: usize,
    /// Number of retire-width update pairs merged.
    pub retire_pairs: usize,
    /// Number of machine-checked obligations discharged.
    pub obligations: usize,
    /// Number of obligations discharged by the syntactic fast path.
    pub syntactic_hits: usize,
    /// Fig. 2a rendering of the implementation chain (when requested).
    pub impl_chain_before: Option<String>,
    /// Fig. 2b-equivalent rendering of the surviving implementation chain.
    pub impl_chain_after: Option<String>,
}

/// A rewrite failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The formula does not have the expected global structure.
    Structure(String),
    /// Computation slice `slice` (1-based) does not conform — the design is
    /// suspect there (subject to the false-negative caveat of Sect. 7.2).
    Slice {
        /// The offending 1-based reorder-buffer slice.
        slice: usize,
        /// What failed.
        reason: String,
    },
    /// The [`CancelToken`] of the [`RewriteBudget`] tripped mid-rewrite.
    /// The driver degrades to a Positive-Equality-only translation, which
    /// is sound: rewriting is an optimization layered on top of it.
    Cancelled,
    /// The node budget of the [`RewriteBudget`] was exhausted. Same
    /// degradation path as [`RewriteError::Cancelled`].
    Budget,
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::Structure(msg) => write!(f, "structural mismatch: {msg}"),
            RewriteError::Slice { slice, reason } => {
                write!(f, "computation slice {slice} does not conform: {reason}")
            }
            RewriteError::Cancelled => write!(f, "rewrite cancelled"),
            RewriteError::Budget => write!(f, "rewrite node budget exceeded"),
        }
    }
}

/// Resource bounds for a rewrite run: a cooperative [`CancelToken`] and an
/// expression-node budget (0 = unlimited). The default is unbounded.
#[derive(Debug, Clone, Default)]
pub struct RewriteBudget {
    /// Polled at every obligation-loop head and inside the local semantic
    /// obligation checks.
    pub cancel: CancelToken,
    /// Maximum context size before the engine gives up with
    /// [`RewriteError::Budget`] (0 = unlimited).
    pub max_nodes: usize,
}

impl std::error::Error for RewriteError {}

/// One implementation-side slice: a completion update and, within the
/// retire width, the earlier retirement update.
#[derive(Debug, Clone, Copy)]
struct Slice {
    completion: Update,
    retirement: Option<Update>,
}

/// Applies the rewriting rules to a correctness formula.
///
/// # Errors
///
/// Returns [`RewriteError::Structure`] when the update chains do not have
/// the shape the abstract out-of-order processor produces, and
/// [`RewriteError::Slice`] when a specific computation slice fails an
/// obligation (the bug-detection outcome).
pub fn rewrite_correctness(
    ctx: &mut Context,
    input: &RewriteInput,
    options: &RewriteOptions,
) -> Result<RewriteOutcome, RewriteError> {
    rewrite_correctness_certified(ctx, input, options).0
}

/// Applies the rewriting rules and returns the justification certificate
/// alongside the result.
///
/// Every obligation the engine discharges is recorded (before discharge,
/// so a failed run still certifies which obligation it died on) as a
/// [`lint::rewrite::Certificate`]; `lint::rewrite::replay` re-checks them
/// with independent machinery.
///
/// # Errors
///
/// As [`rewrite_correctness`]; the certificate accompanying an `Err`
/// covers the obligations discharged up to the failure point.
pub fn rewrite_correctness_certified(
    ctx: &mut Context,
    input: &RewriteInput,
    options: &RewriteOptions,
) -> (
    Result<RewriteOutcome, RewriteError>,
    lint::RewriteCertificate,
) {
    rewrite_correctness_budgeted(ctx, input, options, &RewriteBudget::default())
}

/// Like [`rewrite_correctness_certified`], but bounded by `budget`: the
/// engine polls the budget's [`CancelToken`] at every obligation-loop head
/// (returning [`RewriteError::Cancelled`]) and gives up with
/// [`RewriteError::Budget`] when the context outgrows `max_nodes`. Both
/// errors are the signal for the caller to degrade to a
/// Positive-Equality-only translation.
pub fn rewrite_correctness_budgeted(
    ctx: &mut Context,
    input: &RewriteInput,
    options: &RewriteOptions,
    budget: &RewriteBudget,
) -> (
    Result<RewriteOutcome, RewriteError>,
    lint::RewriteCertificate,
) {
    let mut engine = Engine {
        options: *options,
        obligations: 0,
        syntactic_hits: 0,
        memo_hits: 0,
        memo: memo::current(),
        digester: memo::Digester::new(),
        cert: lint::RewriteCertificate::default(),
        cancel: budget.cancel.clone(),
        max_nodes: budget.max_nodes,
    };
    let span = trace::span("evc.rewrite");
    let result = rewrite_with(ctx, input, &mut engine);
    // Memoized discharges did no SAT/PE work this run; counting them
    // would double-bill the pipeline counters across warm sweeps. The
    // per-run statistics (`RewriteOutcome::obligations`) still count
    // every obligation, so warm and cold runs report identical stats.
    REWRITE_OBLIGATIONS.add((engine.obligations - engine.memo_hits) as u64);
    REWRITE_SYNTACTIC.add(engine.syntactic_hits as u64);
    REWRITE_RETIRE_PAIRS.add(engine.cert.deleted_pairs as u64);
    span.attr("obligations", engine.obligations);
    span.attr("memo_hits", engine.memo_hits);
    span.attr("deleted_pairs", engine.cert.deleted_pairs);
    drop(span);
    (result, engine.cert)
}

fn rewrite_with(
    ctx: &mut Context,
    input: &RewriteInput,
    engine: &mut Engine,
) -> Result<RewriteOutcome, RewriteError> {
    let options = engine.options;
    let spec_chain = chain::parse(ctx, input.rf_spec0)
        .map_err(|e| RewriteError::Structure(format!("spec side: {e}")))?;
    let impl_chain = chain::parse(ctx, input.rf_impl)
        .map_err(|e| RewriteError::Structure(format!("impl side: {e}")))?;
    if spec_chain.base != impl_chain.base {
        return Err(RewriteError::Structure(
            "implementation and specification start from different register files".to_owned(),
        ));
    }
    let impl_chain_before = options.render_chains.then(|| impl_chain.render(ctx));

    // Every spec-side update must be addressed by a distinct term variable
    // (the initial value of the instruction's destination register).
    for (i, u) in spec_chain.updates.iter().enumerate() {
        if !matches!(ctx.node(u.addr), Node::Var(_, Sort::Term)) {
            return Err(RewriteError::Structure(format!(
                "spec update {} is not addressed by a term variable",
                i + 1
            )));
        }
    }

    let slices = match_slices(ctx, &spec_chain, &impl_chain)?;
    let n = slices.len();
    let retire_pairs = slices.iter().filter(|s| s.retirement.is_some()).count();
    engine.cert.slices = n;
    engine.cert.deleted_pairs = retire_pairs;

    // R1 family: the retirement context of slice j must be disjoint from
    // the completion context of every slice i <= j. For i < j this licenses
    // moving completion i before retirement j (the pair reordering of
    // Fig. 2); for i = j it licenses the pair merge; and jointly they
    // license relocating slice i's completion reads past the (dead)
    // retirement updates of younger instructions.
    for (j, sj) in slices.iter().enumerate() {
        engine.check_interrupts(ctx)?;
        let Some(ret) = sj.retirement else { continue };
        for (i, si) in slices.iter().enumerate().take(j + 1) {
            let what = format!(
                "retirement context of slice {} disjoint from completion context of slice {}",
                j + 1,
                i + 1
            );
            if !engine.bool_disjoint(ctx, ret.guard, si.completion.guard, j + 1, "R1", what) {
                return Err(RewriteError::Slice {
                    slice: j + 1,
                    reason: format!(
                        "retirement context of slice {} overlaps completion context of slice {}",
                        j + 1,
                        i + 1
                    ),
                });
            }
        }
    }

    // Per-slice context and data obligations.
    for (idx, slice) in slices.iter().enumerate() {
        engine.check_interrupts(ctx)?;
        let i = idx + 1;
        let spec = spec_chain.updates[idx];
        engine.check_contexts(ctx, i, slice, &spec)?;
        let prev_equal = if idx == 0 {
            spec_chain.base
        } else {
            ctx.fresh_var(&format!("rfeq!{idx}"), Sort::Mem)
        };
        engine.check_data(ctx, i, slice, &spec, prev_equal, &spec_chain, idx)?;
    }

    // All slices proved equal: replace both prefixes (the spec-side state
    // and the implementation-side state before the newly-fetched-instruction
    // updates) by the fresh `RegFile_equal_state` variable.
    let equal_state = ctx.var("RegFile_equal_state", Sort::Mem);
    let impl_prefix = impl_prefix_state(&impl_chain, n, retire_pairs);
    let mut sigma = Substitution::new();
    sigma.insert(input.rf_spec0, equal_state);
    sigma.insert(impl_prefix, equal_state);
    let formula = substitute(ctx, input.formula, &sigma);

    let impl_chain_after = if options.render_chains {
        let rewritten_impl = substitute(ctx, input.rf_impl, &sigma);
        Some(
            chain::parse(ctx, rewritten_impl)
                .map(|c| c.render(ctx))
                .unwrap_or_else(|e| format!("<unrenderable: {e}>")),
        )
    } else {
        None
    };

    Ok(RewriteOutcome {
        formula,
        equal_state,
        slices: n,
        retire_pairs,
        obligations: engine.obligations,
        syntactic_hits: engine.syntactic_hits,
        impl_chain_before,
        impl_chain_after,
    })
}

/// The implementation-side state just before the first newly-fetched
/// instruction update.
fn impl_prefix_state(impl_chain: &UpdateChain, n: usize, retire_pairs: usize) -> ExprId {
    let initial_updates = n + retire_pairs;
    if initial_updates == 0 {
        impl_chain.base
    } else if initial_updates < impl_chain.updates.len() {
        impl_chain.updates[initial_updates].pre_state
    } else {
        impl_chain.final_state()
    }
}

/// Matches implementation updates to specification slices by destination
/// variable, validating order and multiplicity.
fn match_slices(
    ctx: &Context,
    spec_chain: &UpdateChain,
    impl_chain: &UpdateChain,
) -> Result<Vec<Slice>, RewriteError> {
    let n = spec_chain.len();
    // Implementation updates addressed by term variables belong to initial
    // instructions; the rest (uninterpreted-function addresses) belong to
    // newly fetched instructions and must form a suffix.
    let mut initial: Vec<(usize, Update)> = Vec::new();
    let mut seen_new = false;
    for (pos, u) in impl_chain.updates.iter().enumerate() {
        if matches!(ctx.node(u.addr), Node::Var(_, Sort::Term)) {
            if seen_new {
                return Err(RewriteError::Structure(format!(
                    "initial-instruction update at position {pos} follows a newly-fetched one"
                )));
            }
            initial.push((pos, *u));
        } else {
            seen_new = true;
        }
    }

    let mut by_addr: HashMap<ExprId, Vec<(usize, Update)>> = HashMap::new();
    for (pos, u) in &initial {
        by_addr.entry(u.addr).or_default().push((*pos, *u));
    }

    let mut slices = Vec::with_capacity(n);
    let mut last_completion_pos = None;
    for (idx, spec) in spec_chain.updates.iter().enumerate() {
        let Some(group) = by_addr.get(&spec.addr) else {
            return Err(RewriteError::Slice {
                slice: idx + 1,
                reason: "no implementation update writes this destination register".to_owned(),
            });
        };
        let slice = match group.as_slice() {
            [(pos, completion)] => {
                check_completion_order(idx, *pos, &mut last_completion_pos)?;
                Slice {
                    completion: *completion,
                    retirement: None,
                }
            }
            [(_, retirement), (pos, completion)] => {
                check_completion_order(idx, *pos, &mut last_completion_pos)?;
                Slice {
                    completion: *completion,
                    retirement: Some(*retirement),
                }
            }
            other => {
                return Err(RewriteError::Slice {
                    slice: idx + 1,
                    reason: format!(
                    "{} implementation updates write this destination register (expected 1 or 2)",
                    other.len()
                ),
                })
            }
        };
        slices.push(slice);
    }
    if slices.len() != n {
        return Err(RewriteError::Structure("slice count mismatch".to_owned()));
    }
    let matched = slices.len() + slices.iter().filter(|s| s.retirement.is_some()).count();
    if matched != initial.len() {
        return Err(RewriteError::Structure(format!(
            "{} initial-instruction updates on the implementation side, {} matched",
            initial.len(),
            matched
        )));
    }
    Ok(slices)
}

fn check_completion_order(
    idx: usize,
    pos: usize,
    last: &mut Option<usize>,
) -> Result<(), RewriteError> {
    if let Some(prev) = *last {
        if pos <= prev {
            return Err(RewriteError::Slice {
                slice: idx + 1,
                reason: "completion updates are out of program order".to_owned(),
            });
        }
    }
    *last = Some(pos);
    Ok(())
}

struct Engine {
    options: RewriteOptions,
    obligations: usize,
    syntactic_hits: usize,
    /// Obligations answered from the ambient memo store instead of a
    /// SAT/PE discharge. Always `<= obligations`; never counted into the
    /// pipeline trace counters.
    memo_hits: usize,
    /// The ambient obligation store, captured once at engine
    /// construction. Lookups happen strictly *after* the syntactic fast
    /// paths, so the syntactic-hit statistic is warm/cold identical; the
    /// certificate is recorded before any lookup, so replay audits cover
    /// memoized discharges too.
    memo: Option<memo::MemoHandle>,
    /// Per-run digest cache (valid for this run's context only).
    digester: memo::Digester,
    /// The justification record: every obligation, logged *before* it is
    /// discharged, so even a failed run certifies what it attempted.
    cert: lint::RewriteCertificate,
    cancel: CancelToken,
    max_nodes: usize,
}

/// Builds the expected forwarded value and availability condition for
/// source register `src` of the slice at index `idx`, by scanning the
/// specification-side updates of the preceding slices.
///
/// Returns `None` if a preceding update's data does not decompose as
/// `ITE(ValidResult_j, Result_j, ..)`.
fn expected_forwarding(
    ctx: &mut Context,
    spec_chain: &UpdateChain,
    idx: usize,
    src: ExprId,
) -> Option<(ExprId, ExprId)> {
    let mut fwd = ctx.read(spec_chain.base, src);
    let mut avail = Context::TRUE;
    for u in &spec_chain.updates[..idx] {
        let Node::Ite(vr, result, _) = ctx.node(u.data) else {
            return None;
        };
        let addr_match = ctx.eq(u.addr, src);
        let hit = ctx.and2(u.guard, addr_match);
        fwd = ctx.ite(hit, result, fwd);
        avail = ctx.ite(hit, vr, avail);
    }
    Some((fwd, avail))
}

impl Engine {
    /// Polls the rewrite budget: a tripped token or an outgrown context
    /// aborts the run so the driver can degrade to PE-only translation.
    fn check_interrupts(&self, ctx: &Context) -> Result<(), RewriteError> {
        if self.cancel.is_cancelled() {
            Err(RewriteError::Cancelled)
        } else if self.max_nodes > 0 && ctx.len() > self.max_nodes {
            Err(RewriteError::Budget)
        } else {
            Ok(())
        }
    }

    /// Digest-derived store key for an obligation, when a store is
    /// ambient. `signature` canonicalizes whatever can change the answer
    /// beyond the formula itself (empty for complete propositional SAT;
    /// the local check options for EUFM goals, since the conservative
    /// memory model is incomplete).
    fn memo_key(
        &mut self,
        ctx: &Context,
        goal: ExprId,
        signature: &str,
    ) -> Option<(memo::MemoHandle, u128)> {
        let store = self.memo.clone()?;
        let digest = self.digester.digest(ctx, goal);
        let key = memo::derive_key(memo::MemoKind::Obligation, digest, signature);
        Some((store, key))
    }

    /// Consumes a pre-derived key: a hit bumps `memo_hits` and returns
    /// the stored verdict.
    fn memo_verdict(&mut self, key: &Option<(memo::MemoHandle, u128)>) -> Option<bool> {
        let (store, key) = key.as_ref()?;
        match store.lookup(memo::MemoKind::Obligation, *key) {
            Some(memo::MemoValue::Verdict(v)) => {
                self.memo_hits += 1;
                Some(v)
            }
            _ => None,
        }
    }

    /// Stores a freshly discharged verdict. Only decisive answers reach
    /// here — cancelled or budget-limited outcomes are never memoized.
    fn memo_store(key: &Option<(memo::MemoHandle, u128)>, valid: bool) {
        if let Some((store, key)) = key {
            store.insert(*key, memo::MemoValue::Verdict(valid));
        }
    }

    /// Decides a purely propositional validity query with the SAT solver.
    /// Does *not* record a certificate — the callers record the obligation
    /// in its un-lowered form first.
    fn prop_valid(&mut self, ctx: &mut Context, f: ExprId) -> bool {
        self.obligations += 1;
        if f == Context::TRUE {
            self.syntactic_hits += 1;
            return true;
        }
        if f == Context::FALSE {
            return false;
        }
        let key = self.memo_key(ctx, f, "prop");
        if let Some(v) = self.memo_verdict(&key) {
            return v;
        }
        let mut tr = match sat::tseitin::translate(ctx, f, Mode::Full, Phase::Negative) {
            Ok(tr) => tr,
            Err(_) => return false,
        };
        tr.assert_negated_root();
        let mut solver = Solver::from_cnf(&tr.cnf);
        let valid = matches!(solver.solve(), Outcome::Unsat);
        Engine::memo_store(&key, valid);
        valid
    }

    /// Records and decides a propositional validity obligation.
    fn bool_valid(
        &mut self,
        ctx: &mut Context,
        f: ExprId,
        slice: usize,
        rule: &'static str,
        what: String,
    ) -> bool {
        self.cert
            .record(slice, rule, what, Obligation::PropValid(f));
        self.prop_valid(ctx, f)
    }

    /// Records and decides a context-disjointness obligation (two contexts
    /// can never hold simultaneously).
    fn bool_disjoint(
        &mut self,
        ctx: &mut Context,
        a: ExprId,
        b: ExprId,
        slice: usize,
        rule: &'static str,
        what: String,
    ) -> bool {
        self.cert
            .record(slice, rule, what, Obligation::PropDisjoint(a, b));
        let conj = ctx.and2(a, b);
        let goal = ctx.not(conj);
        self.prop_valid(ctx, goal)
    }

    /// R2: context equivalence (and in-pair disjointness) for one slice.
    fn check_contexts(
        &mut self,
        ctx: &mut Context,
        i: usize,
        slice: &Slice,
        spec: &Update,
    ) -> Result<(), RewriteError> {
        let impl_ctx = match slice.retirement {
            Some(ret) => {
                if !self.bool_disjoint(
                    ctx,
                    ret.guard,
                    slice.completion.guard,
                    i,
                    "R2",
                    "retirement and completion contexts disjoint within the pair".to_owned(),
                ) {
                    return Err(RewriteError::Slice {
                        slice: i,
                        reason: "retirement and completion contexts overlap".to_owned(),
                    });
                }
                ctx.or2(ret.guard, slice.completion.guard)
            }
            None => slice.completion.guard,
        };
        if impl_ctx == spec.guard {
            self.obligations += 1;
            self.syntactic_hits += 1;
            self.cert.record(
                i,
                "R2",
                "implementation update context coincides with Valid_i".to_owned(),
                Obligation::Identical(impl_ctx, spec.guard),
            );
            return Ok(());
        }
        let iff = ctx.iff(impl_ctx, spec.guard);
        if !self.bool_valid(
            ctx,
            iff,
            i,
            "R2",
            "implementation update context equivalent to Valid_i".to_owned(),
        ) {
            return Err(RewriteError::Slice {
                slice: i,
                reason: "implementation update context differs from Valid_i".to_owned(),
            });
        }
        Ok(())
    }

    /// R3–R5: data equality for one slice.
    ///
    /// `prev_equal` is the variable standing for the proven-equal previous
    /// register-file state (the specification base for slice 1).
    #[allow(clippy::too_many_arguments)] // one call site; the arguments are the rule's premises
    fn check_data(
        &mut self,
        ctx: &mut Context,
        i: usize,
        slice: &Slice,
        spec: &Update,
        prev_equal: ExprId,
        spec_chain: &UpdateChain,
        idx: usize,
    ) -> Result<(), RewriteError> {
        // Identify ValidResult_i / Result_i from the spec-side data shape:
        // ITE(ValidResult_i, Result_i, ALU(...)).
        let (vr, result) = match ctx.node(spec.data) {
            Node::Ite(c, t, _)
                if matches!(ctx.node(c), Node::Var(_, Sort::Bool))
                    && matches!(ctx.node(t), Node::Var(_, Sort::Term)) =>
            {
                (c, t)
            }
            _ => {
                return Err(RewriteError::Slice {
                    slice: i,
                    reason: "specification data does not have the expected \
                             ITE(ValidResult, Result, ALU(..)) structure"
                        .to_owned(),
                })
            }
        };

        // --- R3: ValidResult_i = true --------------------------------------
        // The previous-state chains are identity-mapped so the cofactoring
        // substitutions never descend into them: the case split only
        // touches the O(1) top structure of the data expressions, keeping
        // the per-slice cost independent of the chain length.
        let mut sigma_true = Substitution::new();
        sigma_true.insert(vr, Context::TRUE);
        sigma_true.insert(spec.pre_state, spec.pre_state);
        sigma_true.insert(slice.completion.pre_state, slice.completion.pre_state);
        let spec_true = substitute(ctx, spec.data, &sigma_true);
        let comp_true = substitute(ctx, slice.completion.data, &sigma_true);
        if spec_true != result {
            return Err(RewriteError::Slice {
                slice: i,
                reason: "specification data does not collapse to Result_i \
                         under ValidResult_i"
                    .to_owned(),
            });
        }
        self.require_equal(
            ctx,
            i,
            "R3",
            comp_true,
            result,
            "completion data under ValidResult_i",
        )?;
        if let Some(ret) = slice.retirement {
            let ret_true = substitute(ctx, ret.data, &sigma_true);
            self.require_equal(
                ctx,
                i,
                "R3",
                ret_true,
                result,
                "retirement data under ValidResult_i",
            )?;
        }

        // --- ValidResult_i = false -----------------------------------------
        // The case split and the read relocation are applied in ONE
        // simultaneous substitution: the previous-state expression is
        // replaced *as a whole* by the proven-equal variable before the
        // `ValidResult_i := false` cofactor can rewrite the retirement
        // guards buried inside it. (Relocation past the dead retirement
        // updates is licensed by the R1 disjointness obligations.)
        let mut sigma_false = Substitution::new();
        sigma_false.insert(vr, Context::FALSE);
        sigma_false.insert(spec.pre_state, spec.pre_state);
        let spec_false = substitute(ctx, spec.data, &sigma_false);

        let mut sigma_spec = Substitution::new();
        sigma_spec.insert(vr, Context::FALSE);
        sigma_spec.insert(spec.pre_state, prev_equal);
        let spec_reloc = substitute(ctx, spec.data, &sigma_spec);
        let mut sigma_impl = Substitution::new();
        sigma_impl.insert(vr, Context::FALSE);
        sigma_impl.insert(slice.completion.pre_state, prev_equal);
        let comp_reloc = substitute(ctx, slice.completion.data, &sigma_impl);

        match ctx.node(comp_reloc) {
            // The regular cycle may have executed the instruction:
            // ITE(exec, ALU(forwarded operands), ALU(reads)).
            Node::Ite(exec, forwarded, not_executed) => {
                // R4: not executed — relocated reads must align.
                self.require_equal(
                    ctx,
                    i,
                    "R4",
                    not_executed,
                    spec_reloc,
                    "completion data (not executed) under !ValidResult_i",
                )?;
                // R5: executed — forwarded operands equal spec-side reads
                // from the *original* previous state. Checked structurally
                // first (the paper's rule 2.1: both evaluate to the same
                // Result variable or the same initial-Register-File read),
                // with a semantic Positive-Equality fallback. The semantic
                // goal is built (and certified) unconditionally so the
                // replay audit re-checks the structural fast path too.
                self.obligations += 1;
                let guard = substitute(ctx, slice.completion.guard, &sigma_false);
                let premise = ctx.and2(guard, exec);
                let eq = ctx.eq(forwarded, spec_false);
                let goal = ctx.implies(premise, eq);
                self.cert.record(
                    i,
                    "R5",
                    "forwarded operands equal specification-side reads".to_owned(),
                    Obligation::EufmValid(goal),
                );
                if self.options.structural_forwarding
                    && self.check_forwarding_structural(
                        ctx, exec, forwarded, spec_false, spec_chain, idx,
                    )
                {
                    self.syntactic_hits += 1;
                } else if let Some(v) = {
                    let key = self.memo_key(ctx, goal, &memo_signature(&self.options.local));
                    self.memo_verdict(&key)
                } {
                    if !v {
                        return Err(RewriteError::Slice {
                            slice: i,
                            reason: "forwarded operands differ from the specification-side \
                                     reads (forwarding logic suspect)"
                                .to_owned(),
                        });
                    }
                } else {
                    let key = self.memo_key(ctx, goal, &memo_signature(&self.options.local));
                    // Cheap refutation first: a sampled counterexample of the
                    // local obligation is definite evidence the slice does
                    // not conform (this is what makes diagnosing a buggy
                    // slice fast); only an all-pass goes to the full local
                    // Positive-Equality proof.
                    if eufm::oracle::check_sampled_with_domain(ctx, goal, 256, 8).is_invalid() {
                        Engine::memo_store(&key, false);
                        return Err(RewriteError::Slice {
                            slice: i,
                            reason: "forwarded operands differ from the specification-side \
                                     reads (forwarding logic suspect)"
                                .to_owned(),
                        });
                    }
                    let report =
                        check_validity_cancellable(ctx, goal, &self.options.local, &self.cancel);
                    match report.outcome {
                        CheckOutcome::Valid => Engine::memo_store(&key, true),
                        CheckOutcome::Invalid { .. } => {
                            Engine::memo_store(&key, false);
                            return Err(RewriteError::Slice {
                                slice: i,
                                reason: "forwarded operands differ from the specification-side \
                                         reads (forwarding logic suspect)"
                                    .to_owned(),
                            });
                        }
                        CheckOutcome::Unknown(UnknownReason::Cancelled) => {
                            return Err(RewriteError::Cancelled)
                        }
                        CheckOutcome::Unknown(r) => {
                            return Err(RewriteError::Slice {
                                slice: i,
                                reason: format!("forwarding obligation undecided: {r:?}"),
                            })
                        }
                    }
                }
            }
            // No execution structure: the completion must already align.
            _ => {
                self.require_equal(
                    ctx,
                    i,
                    "R4",
                    comp_reloc,
                    spec_reloc,
                    "completion data under !ValidResult_i",
                )?;
            }
        }
        Ok(())
    }

    /// The structural forwarding check (paper rule 2.1).
    ///
    /// Rebuilds, from the specification-side update chain, the *expected*
    /// forwarded-value and operand-availability expressions for each source
    /// operand: scanning preceding entries nearest-first, a valid entry
    /// writing the source register provides its `Result` (available once
    /// `ValidResult` holds); otherwise the initial Register File provides
    /// the value. Hash-consing makes the comparison with the
    /// implementation's actual forwarding logic an id check, and the
    /// availability chains must be conjuncts of the execution condition
    /// (so execution implies the dependencies were satisfiable). Under
    /// these structural facts, the forwarded value provably equals the
    /// specification-side read by induction over the chain.
    fn check_forwarding_structural(
        &mut self,
        ctx: &mut Context,
        exec: ExprId,
        forwarded: ExprId,
        spec_false: ExprId,
        spec_chain: &UpdateChain,
        idx: usize,
    ) -> bool {
        // Decompose both ALU applications.
        let (Node::Uf(fsym, fargs, _), Node::Uf(ssym, sargs, _)) =
            (ctx.node(forwarded), ctx.node(spec_false))
        else {
            return false;
        };
        if fsym != ssym || fargs.len() != sargs.len() {
            return false;
        }
        // Copy the argument lists out of the arena: the loop below interns
        // new nodes while comparing them.
        let (fargs, sargs) = (fargs.to_vec(), sargs.to_vec());
        // The execution condition must be a conjunction (or a single
        // formula); collect its conjunct set.
        let exec_conjuncts: Vec<ExprId> = match ctx.node(exec) {
            Node::And(xs) => xs.to_vec(),
            _ => vec![exec],
        };
        for (&fa, &sa) in fargs.iter().zip(sargs.iter()) {
            if fa == sa {
                continue; // e.g. the shared opcode argument
            }
            // The spec-side argument must be a read of the previous state.
            let Node::Read(state, src) = ctx.node(sa) else {
                return false;
            };
            if state
                != spec_chain
                    .updates
                    .get(idx)
                    .map_or(spec_chain.base, |u| u.pre_state)
            {
                return false;
            }
            let Some((expected_fwd, expected_avail)) =
                expected_forwarding(ctx, spec_chain, idx, src)
            else {
                return false;
            };
            if fa != expected_fwd {
                return false;
            }
            if expected_avail != Context::TRUE
                && !exec_conjuncts.contains(&expected_avail)
                && exec != expected_avail
            {
                return false;
            }
        }
        true
    }

    /// Syntactic equality with a semantic (local Positive-Equality)
    /// fallback.
    fn require_equal(
        &mut self,
        ctx: &mut Context,
        i: usize,
        rule: &'static str,
        a: ExprId,
        b: ExprId,
        what: &str,
    ) -> Result<(), RewriteError> {
        self.obligations += 1;
        if a == b {
            self.syntactic_hits += 1;
            self.cert
                .record(i, rule, what.to_owned(), Obligation::Identical(a, b));
            return Ok(());
        }
        let eq = ctx.eq(a, b);
        self.cert
            .record(i, rule, what.to_owned(), Obligation::EufmValid(eq));
        let key = self.memo_key(ctx, eq, &memo_signature(&self.options.local));
        if let Some(v) = self.memo_verdict(&key) {
            return if v {
                Ok(())
            } else {
                Err(RewriteError::Slice {
                    slice: i,
                    reason: format!("{what} differs"),
                })
            };
        }
        // Sampled refutation before the full proof (see the forwarding
        // obligation above for the rationale).
        if eufm::oracle::check_sampled_with_domain(ctx, eq, 256, 8).is_invalid() {
            Engine::memo_store(&key, false);
            return Err(RewriteError::Slice {
                slice: i,
                reason: format!("{what} differs"),
            });
        }
        let report = check_validity_cancellable(ctx, eq, &self.options.local, &self.cancel);
        if report.outcome.is_valid() {
            Engine::memo_store(&key, true);
            Ok(())
        } else if report.outcome == CheckOutcome::Unknown(UnknownReason::Cancelled) {
            Err(RewriteError::Cancelled)
        } else {
            if report.outcome.is_invalid() {
                Engine::memo_store(&key, false);
            }
            Err(RewriteError::Slice {
                slice: i,
                reason: format!("{what} differs"),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a hand-rolled spec chain of `n` slices with the canonical
    /// data shape `ITE(vr_i, r_i, ALU(op_i, read(prev, s1_i), read(prev, s2_i)))`.
    fn toy_spec_chain(ctx: &mut Context, n: usize) -> (ExprId, UpdateChain) {
        let rf = ctx.mvar("RegFile");
        let mut state = rf;
        for i in 1..=n {
            let v = ctx.pvar(&format!("Valid_{i}"));
            let vr = ctx.pvar(&format!("ValidResult_{i}"));
            let r = ctx.tvar(&format!("Result_{i}"));
            let op = ctx.tvar(&format!("Opcode_{i}"));
            let s1 = ctx.tvar(&format!("Src1_{i}"));
            let s2 = ctx.tvar(&format!("Src2_{i}"));
            let d = ctx.tvar(&format!("Dest_{i}"));
            let r1 = ctx.read(state, s1);
            let r2 = ctx.read(state, s2);
            let alu = ctx.uf("ALU", vec![op, r1, r2]);
            let data = ctx.ite(vr, r, alu);
            state = ctx.update(state, v, d, data);
        }
        let parsed = chain::parse(ctx, state).expect("parse");
        (state, parsed)
    }

    #[test]
    fn identical_chains_rewrite_trivially() {
        // impl chain == spec chain: every slice matches with a single
        // completion update, all obligations syntactic.
        let mut ctx = Context::new();
        let (state, _) = toy_spec_chain(&mut ctx, 3);
        let formula = {
            let other = ctx.mvar("Other");
            ctx.eq(state, other)
        };
        let input = RewriteInput {
            formula,
            rf_impl: state,
            rf_spec0: state,
        };
        let outcome =
            rewrite_correctness(&mut ctx, &input, &RewriteOptions::default()).expect("rewrite");
        assert_eq!(outcome.slices, 3);
        assert_eq!(outcome.retire_pairs, 0);
        // the formula's occurrence of `state` was replaced by the fresh var
        let expected = {
            let eqs = ctx.var("RegFile_equal_state", Sort::Mem);
            let other = ctx.mvar("Other");
            ctx.eq(eqs, other)
        };
        assert_eq!(outcome.formula, expected);
    }

    #[test]
    fn tripped_budget_aborts_for_degradation() {
        let mut ctx = Context::new();
        let (state, _) = toy_spec_chain(&mut ctx, 3);
        let formula = {
            let other = ctx.mvar("Other");
            ctx.eq(state, other)
        };
        let input = RewriteInput {
            formula,
            rf_impl: state,
            rf_spec0: state,
        };

        let budget = RewriteBudget::default();
        budget.cancel.cancel();
        let (result, _) =
            rewrite_correctness_budgeted(&mut ctx, &input, &RewriteOptions::default(), &budget);
        assert_eq!(result.unwrap_err(), RewriteError::Cancelled);

        let budget = RewriteBudget {
            max_nodes: 1,
            ..RewriteBudget::default()
        };
        let (result, _) =
            rewrite_correctness_budgeted(&mut ctx, &input, &RewriteOptions::default(), &budget);
        assert_eq!(result.unwrap_err(), RewriteError::Budget);
    }

    #[test]
    fn missing_destination_is_a_slice_error() {
        let mut ctx = Context::new();
        let (spec_state, _) = toy_spec_chain(&mut ctx, 2);
        // impl chain writes a different register for slice 2
        let rf = ctx.mvar("RegFile");
        let v1 = ctx.pvar("Valid_1");
        let vr1 = ctx.pvar("ValidResult_1");
        let r1v = ctx.tvar("Result_1");
        let op1 = ctx.tvar("Opcode_1");
        let s11 = ctx.tvar("Src1_1");
        let s21 = ctx.tvar("Src2_1");
        let d1 = ctx.tvar("Dest_1");
        let ra = ctx.read(rf, s11);
        let rb = ctx.read(rf, s21);
        let alu = ctx.uf("ALU", vec![op1, ra, rb]);
        let data1 = ctx.ite(vr1, r1v, alu);
        let st1 = ctx.update(rf, v1, d1, data1);
        let v2 = ctx.pvar("Valid_2");
        let wrong_dest = ctx.tvar("WrongDest");
        let st2 = ctx.update(st1, v2, wrong_dest, r1v);
        let formula = ctx.eq(st2, spec_state);
        let input = RewriteInput {
            formula,
            rf_impl: st2,
            rf_spec0: spec_state,
        };
        match rewrite_correctness(&mut ctx, &input, &RewriteOptions::default()) {
            Err(RewriteError::Slice { slice: 2, .. }) => {}
            other => panic!("expected slice-2 error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_context_is_a_slice_error() {
        let mut ctx = Context::new();
        let (spec_state, spec_chain) = toy_spec_chain(&mut ctx, 2);
        // impl chain uses a different (weaker) guard for slice 1
        let rf = ctx.mvar("RegFile");
        let bogus = ctx.pvar("Bogus");
        let first = spec_chain.updates[0];
        let st1 = ctx.update(rf, bogus, first.addr, first.data);
        let second = spec_chain.updates[1];
        // rebuild slice 2's data against the new prev state
        let st2 = ctx.update(st1, second.guard, second.addr, second.data);
        let formula = ctx.eq(st2, spec_state);
        let input = RewriteInput {
            formula,
            rf_impl: st2,
            rf_spec0: spec_state,
        };
        match rewrite_correctness(&mut ctx, &input, &RewriteOptions::default()) {
            Err(RewriteError::Slice { slice: 1, reason }) => {
                assert!(reason.contains("context"), "{reason}");
            }
            other => panic!("expected slice-1 context error, got {other:?}"),
        }
    }

    #[test]
    fn non_chain_inputs_are_structure_errors() {
        let mut ctx = Context::new();
        let rf1 = ctx.mvar("rf1");
        let rf2 = ctx.mvar("rf2");
        let formula = ctx.eq(rf1, rf2);
        let input = RewriteInput {
            formula,
            rf_impl: rf1,
            rf_spec0: rf2,
        };
        // different bases
        match rewrite_correctness(&mut ctx, &input, &RewriteOptions::default()) {
            Err(RewriteError::Structure(_)) => {}
            other => panic!("expected structure error, got {other:?}"),
        }
    }

    #[test]
    fn certified_rewrite_replays_clean() {
        let mut ctx = Context::new();
        let (state, _) = toy_spec_chain(&mut ctx, 3);
        let formula = {
            let other = ctx.mvar("Other");
            ctx.eq(state, other)
        };
        let input = RewriteInput {
            formula,
            rf_impl: state,
            rf_spec0: state,
        };
        let (result, cert) =
            rewrite_correctness_certified(&mut ctx, &input, &RewriteOptions::default());
        let outcome = result.expect("rewrite");
        assert_eq!(cert.slices, 3);
        assert_eq!(cert.deleted_pairs, 0);
        assert_eq!(cert.certificates.len(), outcome.obligations);
        // every slice is covered and the replay finds nothing to refute
        let mut diags = lint::Diagnostics::new();
        lint::rewrite::replay(&mut ctx, &cert, &mut diags);
        let done = diags.finish();
        assert_eq!(lint::error_count(&done), 0, "{}", lint::render_all(&done));
    }

    #[test]
    fn failed_rewrite_still_returns_partial_certificate() {
        let mut ctx = Context::new();
        let (spec_state, spec_chain) = toy_spec_chain(&mut ctx, 2);
        // impl chain uses a bogus guard for slice 1 (cf.
        // `wrong_context_is_a_slice_error`)
        let rf = ctx.mvar("RegFile");
        let bogus = ctx.pvar("Bogus");
        let first = spec_chain.updates[0];
        let st1 = ctx.update(rf, bogus, first.addr, first.data);
        let second = spec_chain.updates[1];
        let st2 = ctx.update(st1, second.guard, second.addr, second.data);
        let formula = ctx.eq(st2, spec_state);
        let input = RewriteInput {
            formula,
            rf_impl: st2,
            rf_spec0: spec_state,
        };
        let (result, cert) =
            rewrite_correctness_certified(&mut ctx, &input, &RewriteOptions::default());
        assert!(matches!(result, Err(RewriteError::Slice { slice: 1, .. })));
        // the failing R2 obligation was recorded before it was discharged,
        // and the independent replay refutes exactly that obligation
        let last = cert.certificates.last().expect("partial certificate");
        assert_eq!(last.rule, "R2");
        let mut diags = lint::Diagnostics::new();
        lint::rewrite::replay(&mut ctx, &cert, &mut diags);
        let done = diags.finish();
        assert!(done.iter().any(|d| d.code == lint::Code::RefutedObligation));
    }

    #[test]
    fn expected_forwarding_matches_hand_built_scan() {
        let mut ctx = Context::new();
        let (_, spec_chain) = toy_spec_chain(&mut ctx, 3);
        let src = ctx.tvar("Src1_3");
        let (fwd, avail) = expected_forwarding(&mut ctx, &spec_chain, 2, src).expect("decomposes");
        // hand-build: scan j = 1, 2 (nearest last)
        let mut expect_fwd = ctx.read(spec_chain.base, src);
        let mut expect_avail = Context::TRUE;
        for j in 1..=2 {
            let v = ctx.pvar(&format!("Valid_{j}"));
            let d = ctx.tvar(&format!("Dest_{j}"));
            let vr = ctx.pvar(&format!("ValidResult_{j}"));
            let r = ctx.tvar(&format!("Result_{j}"));
            let m = ctx.eq(d, src);
            let hit = ctx.and2(v, m);
            expect_fwd = ctx.ite(hit, r, expect_fwd);
            expect_avail = ctx.ite(hit, vr, expect_avail);
        }
        assert_eq!(fwd, expect_fwd);
        assert_eq!(avail, expect_avail);
    }
}
