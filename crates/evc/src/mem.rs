//! Memory elimination.
//!
//! EUFM memories support `read`/`write` with the forwarding property. Two
//! elimination strategies are provided:
//!
//! - [`MemoryModel::Forwarding`] — exact: memory-state equations become
//!   reads at a shared fresh address (extensionality); read-over-write
//!   unrolls into `ITE` ladders guarded by address equations; residual
//!   reads of initial memory states become per-memory uninterpreted
//!   functions of the address.
//! - [`MemoryModel::Conservative`] — `read` and `write` are abstracted by
//!   general uninterpreted functions that do *not* satisfy the forwarding
//!   property (paper [31], Sect. 7.2). This is a conservative
//!   approximation: a formula proved valid under it is valid, but a correct
//!   design may fail to verify. After the rewriting rules have removed the
//!   out-of-order updates, the remaining instructions execute strictly in
//!   program order on both diagram sides and the conservative model
//!   suffices — eliminating every address equation and hence every `e_ij`
//!   variable.

use std::collections::HashMap;

use eufm::{Context, ExprId, IdMap, Node, Sort};

/// How memory operations are eliminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryModel {
    /// Exact elimination honoring the forwarding property.
    #[default]
    Forwarding,
    /// Abstraction by general uninterpreted functions (no forwarding).
    Conservative,
}

/// The name of the fresh universal address variable used to compare memory
/// states extensionally.
pub const MEM_EQ_ADDR: &str = "memeq!addr";

/// Eliminates memory-state equations and `read`/`write` operations from
/// `root` according to `model`.
///
/// After this pass the formula contains no `Eq` between memories and, for
/// the forwarding model, no `read`/`write`/memory-variable nodes at all
/// (initial-state reads become `rd!<mem>` uninterpreted functions). For the
/// conservative model, `read` becomes the two-argument UF `rd!` and `write`
/// the three-argument memory-sorted UF `wr!`; memory variables remain as UF
/// arguments and equation leaves.
///
/// # Panics
///
/// Panics if `root` is not a formula.
pub fn eliminate(ctx: &mut Context, root: ExprId, model: MemoryModel) -> ExprId {
    assert_eq!(
        ctx.sort(root),
        Sort::Bool,
        "memory elimination expects a formula"
    );
    // Pass 1: memory equations -> reads at a shared fresh address.
    let root = {
        let mut pass = MemEqPass {
            memo: IdMap::new(),
            addr: None,
        };
        pass.rebuild(ctx, root)
    };
    // Pass 2: eliminate reads/writes.
    match model {
        MemoryModel::Forwarding => {
            let mut pass = ForwardPass {
                memo: IdMap::new(),
                read_memo: HashMap::new(),
            };
            pass.rebuild(ctx, root)
        }
        MemoryModel::Conservative => {
            let mut pass = ConservativePass { memo: IdMap::new() };
            pass.rebuild(ctx, root)
        }
    }
}

/// Replaces `Eq(mem1, mem2)` with `Eq(read(mem1, addr), read(mem2, addr))`
/// for one shared fresh address variable.
struct MemEqPass {
    memo: IdMap<ExprId>,
    addr: Option<ExprId>,
}

impl MemEqPass {
    fn addr(&mut self, ctx: &mut Context) -> ExprId {
        *self.addr.get_or_insert_with(|| ctx.tvar(MEM_EQ_ADDR))
    }

    fn rebuild(&mut self, ctx: &mut Context, id: ExprId) -> ExprId {
        if let Some(v) = self.memo.get(id) {
            return v;
        }
        let result = match ctx.node(id) {
            Node::Eq(a, b) if ctx.sort(a) == Sort::Mem => {
                let addr = self.addr(ctx);
                let a2 = self.rebuild(ctx, a);
                let b2 = self.rebuild(ctx, b);
                let ra = ctx.read(a2, addr);
                let rb = ctx.read(b2, addr);
                ctx.eq(ra, rb)
            }
            _ => rebuild_generic(ctx, id, |ctx, c| self.rebuild(ctx, c)),
        };
        self.memo.insert(id, result);
        result
    }
}

/// Exact read-over-write elimination.
struct ForwardPass {
    memo: IdMap<ExprId>,
    /// Memo for resolved reads keyed on (memory expression, address).
    read_memo: HashMap<(ExprId, ExprId), ExprId>,
}

impl ForwardPass {
    fn rebuild(&mut self, ctx: &mut Context, id: ExprId) -> ExprId {
        if let Some(v) = self.memo.get(id) {
            return v;
        }
        let result = match ctx.node(id) {
            Node::Read(m, a) => {
                let addr = self.rebuild(ctx, a);
                self.resolve_read(ctx, m, addr)
            }
            // Writes and memory variables are consumed by `resolve_read`;
            // any left outside a read context are preserved structurally
            // (they can only appear if the caller kept a bare memory term,
            // which the formula-level API prevents).
            _ => rebuild_generic(ctx, id, |ctx, c| self.rebuild(ctx, c)),
        };
        self.memo.insert(id, result);
        result
    }

    /// Resolves `read(mem, addr)` (addr already rebuilt) into a term without
    /// memory operations.
    fn resolve_read(&mut self, ctx: &mut Context, mem: ExprId, addr: ExprId) -> ExprId {
        if let Some(&v) = self.read_memo.get(&(mem, addr)) {
            return v;
        }
        let result = match ctx.node(mem) {
            Node::Write(m, a, d) => {
                let wa = self.rebuild(ctx, a);
                let wd = self.rebuild(ctx, d);
                let hit = ctx.eq(wa, addr);
                let miss = self.resolve_read(ctx, m, addr);
                ctx.ite(hit, wd, miss)
            }
            Node::Ite(c, t, e) => {
                let c2 = self.rebuild(ctx, c);
                let rt = self.resolve_read(ctx, t, addr);
                let re = self.resolve_read(ctx, e, addr);
                ctx.ite(c2, rt, re)
            }
            Node::Var(sym, Sort::Mem) => {
                let name = format!("rd!{}", ctx.name(sym));
                ctx.uf(&name, vec![addr])
            }
            Node::Uf(sym, args, Sort::Mem) => {
                // A memory produced by an uninterpreted transformer (only in
                // mixed pipelines): read it through a dedicated UF.
                let args = args.to_vec();
                let rebuilt: Vec<ExprId> = args.iter().map(|&x| self.rebuild(ctx, x)).collect();
                let inner = ctx.apply_sym(sym, rebuilt, Sort::Mem);
                let name = format!("rdapp!{}", ctx.name(sym));
                let mut full = vec![inner];
                full.push(addr);
                ctx.apply(&name, full, Sort::Term)
            }
            other => panic!("read applied to non-memory node {other:?}"),
        };
        self.read_memo.insert((mem, addr), result);
        result
    }
}

/// Conservative abstraction: `read`/`write` become general UFs.
struct ConservativePass {
    memo: IdMap<ExprId>,
}

impl ConservativePass {
    fn rebuild(&mut self, ctx: &mut Context, id: ExprId) -> ExprId {
        if let Some(v) = self.memo.get(id) {
            return v;
        }
        let result = match ctx.node(id) {
            Node::Read(m, a) => {
                let m2 = self.rebuild(ctx, m);
                let a2 = self.rebuild(ctx, a);
                ctx.apply("rd!", vec![m2, a2], Sort::Term)
            }
            Node::Write(m, a, d) => {
                let m2 = self.rebuild(ctx, m);
                let a2 = self.rebuild(ctx, a);
                let d2 = self.rebuild(ctx, d);
                ctx.apply("wr!", vec![m2, a2, d2], Sort::Mem)
            }
            _ => rebuild_generic(ctx, id, |ctx, c| self.rebuild(ctx, c)),
        };
        self.memo.insert(id, result);
        result
    }
}

/// Rebuilds a node through the smart constructors with recursively
/// transformed children.
fn rebuild_generic(
    ctx: &mut Context,
    id: ExprId,
    mut rec: impl FnMut(&mut Context, ExprId) -> ExprId,
) -> ExprId {
    match ctx.node(id) {
        // Leaves rebuild to themselves: hash-consing in the same context
        // guarantees re-interning an identical node returns the same id.
        Node::True | Node::False | Node::Var(..) => id,
        Node::Uf(sym, args, sort) => {
            let args = args.to_vec();
            let rebuilt: Vec<ExprId> = args.iter().map(|&a| rec(ctx, a)).collect();
            ctx.apply_sym(sym, rebuilt, sort)
        }
        Node::Ite(c, t, e) => {
            let c2 = rec(ctx, c);
            let t2 = rec(ctx, t);
            let e2 = rec(ctx, e);
            ctx.ite(c2, t2, e2)
        }
        Node::Eq(a, b) => {
            let a2 = rec(ctx, a);
            let b2 = rec(ctx, b);
            ctx.eq(a2, b2)
        }
        Node::Not(a) => {
            let a2 = rec(ctx, a);
            ctx.not(a2)
        }
        Node::And(xs) => {
            let xs = xs.to_vec();
            let rebuilt: Vec<ExprId> = xs.iter().map(|&x| rec(ctx, x)).collect();
            ctx.and(rebuilt)
        }
        Node::Or(xs) => {
            let xs = xs.to_vec();
            let rebuilt: Vec<ExprId> = xs.iter().map(|&x| rec(ctx, x)).collect();
            ctx.or(rebuilt)
        }
        Node::Read(m, a) => {
            let m2 = rec(ctx, m);
            let a2 = rec(ctx, a);
            ctx.read(m2, a2)
        }
        Node::Write(m, a, d) => {
            let m2 = rec(ctx, m);
            let a2 = rec(ctx, a);
            let d2 = rec(ctx, d);
            ctx.write(m2, a2, d2)
        }
    }
}

/// Whether the DAG under `root` still contains memory operations or
/// memory-sorted variables (diagnostic used by tests and the checker).
pub fn contains_memory_ops(ctx: &Context, root: ExprId) -> bool {
    let mut found = false;
    ctx.visit_post_order(&[root], |id| match ctx.node(id) {
        Node::Read(..) | Node::Write(..) => found = true,
        _ => {}
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use eufm::oracle::{check_sampled, OracleResult};

    /// The forwarding elimination must be semantics-preserving: validity of
    /// the original and eliminated formulas agree under sampling.
    fn assert_equivalid(ctx: &mut Context, original: ExprId, model: MemoryModel) {
        let expect = matches!(check_sampled(ctx, original, 300), OracleResult::Valid);
        let eliminated = eliminate(ctx, original, model);
        let got = matches!(check_sampled(ctx, eliminated, 300), OracleResult::Valid);
        assert_eq!(expect, got, "elimination changed the sampled verdict");
    }

    #[test]
    fn read_over_write_hit() {
        let mut ctx = Context::new();
        let m = ctx.mvar("m");
        let a = ctx.tvar("a");
        let d = ctx.tvar("d");
        let w = ctx.write(m, a, d);
        let r = ctx.read(w, a);
        let goal = ctx.eq(r, d); // valid
        let out = eliminate(&mut ctx, goal, MemoryModel::Forwarding);
        assert_eq!(out, Context::TRUE);
    }

    #[test]
    fn read_over_write_aliasing_ladder() {
        let mut ctx = Context::new();
        let m = ctx.mvar("m");
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let d = ctx.tvar("d");
        let w = ctx.write(m, a, d);
        let r = ctx.read(w, b);
        let rm = ctx.read(m, b);
        let cond = ctx.eq(a, b);
        let rhs = ctx.ite(cond, d, rm);
        let goal = ctx.eq(r, rhs); // valid
        let out = eliminate(&mut ctx, goal, MemoryModel::Forwarding);
        assert_eq!(out, Context::TRUE);
        assert!(!contains_memory_ops(&ctx, out));
    }

    #[test]
    fn forwarding_preserves_sampled_validity() {
        let mut ctx = Context::new();
        let m = ctx.mvar("m");
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let d1 = ctx.tvar("d1");
        let d2 = ctx.tvar("d2");
        // write order matters when a = b: last write wins
        let w1 = ctx.write(m, a, d1);
        let w12 = ctx.write(w1, b, d2);
        let r = ctx.read(w12, b);
        let goal = ctx.eq(r, d2); // valid (b's write is last)
        assert_equivalid(&mut ctx, goal, MemoryModel::Forwarding);
        // and the wrong order claim is invalid
        let r2 = ctx.read(w12, a);
        let bad = ctx.eq(r2, d1); // invalid when a = b
        assert_equivalid(&mut ctx, bad, MemoryModel::Forwarding);
    }

    #[test]
    fn mem_equation_uses_shared_fresh_address() {
        let mut ctx = Context::new();
        let m = ctx.mvar("m");
        let a = ctx.tvar("a");
        let r = ctx.read(m, a);
        let w = ctx.write(m, a, r);
        // write(m, a, read(m, a)) = m — valid extensionally
        let goal = ctx.eq(w, m);
        let out = eliminate(&mut ctx, goal, MemoryModel::Forwarding);
        let verdict = check_sampled(&ctx, out, 300);
        assert!(verdict.is_valid(), "extensional identity lost: {verdict:?}");
    }

    #[test]
    fn conservative_may_lose_forwarding_but_stays_sound() {
        let mut ctx = Context::new();
        let m = ctx.mvar("m");
        let a = ctx.tvar("a");
        let d = ctx.tvar("d");
        let w = ctx.write(m, a, d);
        let r = ctx.read(w, a);
        let goal = ctx.eq(r, d); // valid with forwarding...
        let out = eliminate(&mut ctx, goal, MemoryModel::Conservative);
        // ...but not provable conservatively: rd!(wr!(m,a,d), a) is opaque.
        let verdict = check_sampled(&ctx, out, 200);
        assert!(
            verdict.is_invalid(),
            "conservative model must not prove forwarding"
        );
    }

    #[test]
    fn conservative_preserves_structural_equality() {
        let mut ctx = Context::new();
        let m = ctx.mvar("m");
        let a = ctx.tvar("a");
        let d = ctx.tvar("d");
        let w1 = ctx.write(m, a, d);
        let r1 = ctx.read(w1, a);
        let r2 = ctx.read(w1, a);
        let goal = ctx.eq(r1, r2);
        assert_eq!(goal, Context::TRUE); // hash-consing already
                                         // identical chains compare equal after abstraction too
        let w2 = ctx.write(m, a, d);
        let x = ctx.read(w2, a);
        let y = ctx.read(w1, a);
        let goal2 = ctx.eq(x, y);
        let out = eliminate(&mut ctx, goal2, MemoryModel::Conservative);
        assert_eq!(out, Context::TRUE);
    }

    #[test]
    fn no_memory_ops_remain_after_forwarding() {
        let mut ctx = Context::new();
        let m = ctx.mvar("m");
        let n = ctx.mvar("n");
        let a = ctx.tvar("a");
        let d = ctx.tvar("d");
        let wm = ctx.write(m, a, d);
        let goal = ctx.eq(wm, n);
        let out = eliminate(&mut ctx, goal, MemoryModel::Forwarding);
        assert!(!contains_memory_ops(&ctx, out));
    }
}
