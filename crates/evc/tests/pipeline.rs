//! End-to-end pipeline tests: PE-only and rewriting+PE verification of
//! generated out-of-order processors.

use evc::check::{check_validity, CheckOptions};
use evc::mem::MemoryModel;
use evc::rewrite::{rewrite_correctness, RewriteError, RewriteInput, RewriteOptions};
use uarch::{correctness, BugSpec, Config, Operand};

fn pe_only_options() -> CheckOptions {
    CheckOptions {
        memory: MemoryModel::Forwarding,
        ..CheckOptions::default()
    }
}

fn conservative_options() -> CheckOptions {
    CheckOptions {
        memory: MemoryModel::Conservative,
        ..CheckOptions::default()
    }
}

#[test]
fn pe_only_verifies_small_correct_designs() {
    for (n, k) in [(1, 1), (2, 1), (2, 2)] {
        let config = Config::new(n, k).expect("config");
        let mut bundle = correctness::generate(&config).expect("generate");
        let report = check_validity(&mut bundle.ctx, bundle.formula, &pe_only_options());
        assert!(
            report.outcome.is_valid(),
            "rob{n}xw{k} should verify PE-only: {:?}",
            report.outcome
        );
    }
}

#[test]
fn pe_only_falsifies_buggy_design() {
    let config = Config::new(3, 1).expect("config");
    let bug = BugSpec::ForwardingIgnoresValidResult {
        slice: 2,
        operand: Operand::Src1,
    };
    let mut bundle = correctness::generate_with(&config, Some(bug), tlsim::EvalStrategy::Lazy)
        .expect("generate");
    let report = check_validity(&mut bundle.ctx, bundle.formula, &pe_only_options());
    assert!(
        report.outcome.is_invalid(),
        "bug must falsify: {:?}",
        report.outcome
    );
}

#[test]
fn rewriting_then_pe_verifies_correct_designs() {
    for (n, k) in [(1, 1), (2, 1), (2, 2), (4, 2), (6, 3)] {
        let config = Config::new(n, k).expect("config");
        let mut bundle = correctness::generate(&config).expect("generate");
        let input = RewriteInput {
            formula: bundle.formula,
            rf_impl: bundle.rf_impl,
            rf_spec0: bundle.rf_spec[0],
        };
        let outcome = rewrite_correctness(&mut bundle.ctx, &input, &RewriteOptions::default())
            .unwrap_or_else(|e| panic!("rewrite failed for rob{n}xw{k}: {e}"));
        assert_eq!(outcome.slices, n);
        assert_eq!(outcome.retire_pairs, k.min(n));
        let report = check_validity(&mut bundle.ctx, outcome.formula, &conservative_options());
        assert!(
            report.outcome.is_valid(),
            "rob{n}xw{k} rewritten formula should verify: {:?}",
            report.outcome
        );
        assert_eq!(
            report.stats.eij_vars, 0,
            "rewriting must remove all e_ij variables"
        );
    }
}

#[test]
fn rewriting_localizes_forwarding_bug() {
    let config = Config::new(6, 2).expect("config");
    let bug = BugSpec::ForwardingIgnoresValidResult {
        slice: 4,
        operand: Operand::Src2,
    };
    let mut bundle = correctness::generate_with(&config, Some(bug), tlsim::EvalStrategy::Lazy)
        .expect("generate");
    let input = RewriteInput {
        formula: bundle.formula,
        rf_impl: bundle.rf_impl,
        rf_spec0: bundle.rf_spec[0],
    };
    match rewrite_correctness(&mut bundle.ctx, &input, &RewriteOptions::default()) {
        Err(RewriteError::Slice { slice, .. }) => assert_eq!(slice, 4),
        other => panic!("expected slice-4 diagnosis, got {other:?}"),
    }
}

#[test]
fn rewriting_localizes_retire_bug() {
    let config = Config::new(4, 2).expect("config");
    let bug = BugSpec::RetireOutOfOrder { slice: 2 };
    let mut bundle = correctness::generate_with(&config, Some(bug), tlsim::EvalStrategy::Lazy)
        .expect("generate");
    let input = RewriteInput {
        formula: bundle.formula,
        rf_impl: bundle.rf_impl,
        rf_spec0: bundle.rf_spec[0],
    };
    match rewrite_correctness(&mut bundle.ctx, &input, &RewriteOptions::default()) {
        Err(RewriteError::Slice { slice, .. }) => assert_eq!(slice, 2),
        other => panic!("expected slice-2 diagnosis, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// The in-order pipelined benchmark (the paper's predecessor line, ref. [31])
// ---------------------------------------------------------------------------

#[test]
fn inorder_pipeline_verifies_with_pe() {
    let (mut ctx, formula) =
        uarch::pipeline::generate_pipeline_correctness(None).expect("generate");
    let report = check_validity(&mut ctx, formula, &pe_only_options());
    assert!(
        report.outcome.is_valid(),
        "pipeline should verify: {:?}",
        report.outcome
    );
    assert!(
        report.stats.eij_vars > 0,
        "forwarding comparisons need e_ij variables"
    );
}

#[test]
fn inorder_pipeline_bugs_are_falsified_by_pe() {
    use uarch::pipeline::PipelineBug;
    for bug in [
        PipelineBug::MissingExForwarding,
        PipelineBug::MissingWbForwarding,
        PipelineBug::ForwardsFromWrongStage,
        PipelineBug::WritebackIgnoresValid,
    ] {
        let (mut ctx, formula) =
            uarch::pipeline::generate_pipeline_correctness(Some(bug)).expect("generate");
        let report = check_validity(&mut ctx, formula, &pe_only_options());
        assert!(report.outcome.is_invalid(), "{bug:?} should be falsified");
    }
}
