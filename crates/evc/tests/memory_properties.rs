//! Property-based tests of the memory-elimination passes over random
//! memory programs (write chains, conditional updates, aliased reads).

use proptest::prelude::*;

use eufm::oracle::{check_sampled, OracleResult};
use eufm::{Context, ExprId};

/// A recipe for a random memory program over a small pool of variables.
#[derive(Debug, Clone)]
enum MemOp {
    /// Unconditional write of (addr_i, data_i).
    Write(u8, u8),
    /// Conditional update guarded by prop var `g`.
    Update(u8, u8, u8),
}

fn mem_program() -> impl Strategy<Value = Vec<MemOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..4, 0u8..4).prop_map(|(a, d)| MemOp::Write(a, d)),
            (0u8..4, 0u8..4, 0u8..3).prop_map(|(a, d, g)| MemOp::Update(a, d, g)),
        ],
        0..8,
    )
}

fn build_memory(ctx: &mut Context, ops: &[MemOp]) -> ExprId {
    let mut mem = ctx.mvar("M");
    for (pos, op) in ops.iter().enumerate() {
        match op {
            MemOp::Write(a, d) => {
                let addr = ctx.tvar(&format!("a{a}"));
                let data = ctx.tvar(&format!("d{d}"));
                mem = ctx.write(mem, addr, data);
            }
            MemOp::Update(a, d, g) => {
                let addr = ctx.tvar(&format!("a{a}"));
                let data = ctx.tvar(&format!("d{d}"));
                // One guard per position: adjacent updates sharing a guard
                // expression trigger the context's nested-ITE collapse and
                // leave the linear-chain shape (pinned by
                // `same_guard_adjacent_updates_break_the_chain_shape`
                // below). Generated processor chains always have distinct
                // per-slice guards.
                let guard = ctx.pvar(&format!("g{g}_{pos}"));
                mem = ctx.update(mem, guard, addr, data);
            }
        }
    }
    mem
}

/// The known representational limit: two adjacent conditional updates with
/// the *same* guard collapse (`ITE(c, w1, ITE(c, w0, m))` loses its else
/// chain), so the chain parser rejects the result. The collapse is
/// semantically sound; only the linear-chain *shape* is lost.
#[test]
fn same_guard_adjacent_updates_break_the_chain_shape() {
    let mut ctx = Context::new();
    let m = ctx.mvar("M");
    let g = ctx.pvar("g");
    let a = ctx.tvar("a");
    let d = ctx.tvar("d");
    let once = ctx.update(m, g, a, d);
    let twice = ctx.update(once, g, a, d);
    assert!(evc::chain::parse(&ctx, twice).is_err());
    // and the collapsed expression is still semantically a double write
    let r = ctx.read(twice, a);
    let rm = ctx.read(m, a);
    let rhs = ctx.ite(g, d, rm);
    let goal = ctx.eq(r, rhs);
    assert!(check_sampled(&ctx, goal, 400).is_valid());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forwarding elimination preserves the sampled verdict of equations
    /// between reads over random memory programs.
    #[test]
    fn forwarding_elimination_preserves_read_equations(
        ops1 in mem_program(),
        ops2 in mem_program(),
        addr in 0u8..4,
    ) {
        let mut ctx = Context::new();
        let m1 = build_memory(&mut ctx, &ops1);
        let m2 = build_memory(&mut ctx, &ops2);
        let a = ctx.tvar(&format!("a{addr}"));
        let r1 = ctx.read(m1, a);
        let r2 = ctx.read(m2, a);
        let goal = ctx.eq(r1, r2);
        let before = match check_sampled(&ctx, goal, 500) {
            OracleResult::Valid => true,
            OracleResult::Invalid(_) => false,
            OracleResult::Unsupported(_) => return Ok(()),
        };
        let eliminated = evc::mem::eliminate(&mut ctx, goal, evc::mem::MemoryModel::Forwarding);
        prop_assert!(!evc::mem::contains_memory_ops(&ctx, eliminated));
        let after = match check_sampled(&ctx, eliminated, 500) {
            OracleResult::Valid => true,
            OracleResult::Invalid(_) => false,
            OracleResult::Unsupported(_) => return Ok(()),
        };
        prop_assert_eq!(before, after, "elimination changed the verdict");
    }

    /// Memory-state equations reduce to read equations at a shared fresh
    /// address without changing the sampled verdict.
    #[test]
    fn forwarding_elimination_preserves_state_equations(
        ops1 in mem_program(),
        ops2 in mem_program(),
    ) {
        let mut ctx = Context::new();
        let m1 = build_memory(&mut ctx, &ops1);
        let m2 = build_memory(&mut ctx, &ops2);
        let goal = ctx.eq(m1, m2);
        if goal == Context::TRUE {
            return Ok(()); // identical programs collapse syntactically
        }
        let before = match check_sampled(&ctx, goal, 500) {
            OracleResult::Valid => true,
            OracleResult::Invalid(_) => false,
            OracleResult::Unsupported(_) => return Ok(()),
        };
        let eliminated = evc::mem::eliminate(&mut ctx, goal, evc::mem::MemoryModel::Forwarding);
        let after = match check_sampled(&ctx, eliminated, 500) {
            OracleResult::Valid => true,
            OracleResult::Invalid(_) => false,
            OracleResult::Unsupported(_) => return Ok(()),
        };
        prop_assert_eq!(before, after);
    }

    /// The full checker decides read equations over random memory programs
    /// in agreement with the sampling oracle.
    #[test]
    fn full_check_agrees_on_memory_programs(
        ops in mem_program(),
        a1 in 0u8..4,
        a2 in 0u8..4,
    ) {
        let mut ctx = Context::new();
        let m = build_memory(&mut ctx, &ops);
        let addr1 = ctx.tvar(&format!("a{a1}"));
        let addr2 = ctx.tvar(&format!("a{a2}"));
        let r1 = ctx.read(m, addr1);
        let r2 = ctx.read(m, addr2);
        let eq_addr = ctx.eq(addr1, addr2);
        let eq_read = ctx.eq(r1, r2);
        // same address -> same read: always valid
        let goal = ctx.implies(eq_addr, eq_read);
        let report = evc::check::check_validity(
            &mut ctx, goal, &evc::check::CheckOptions::default());
        prop_assert!(report.outcome.is_valid(),
            "congruence over memory reads must hold: {:?}", report.outcome);
    }

    /// Chain parse/rebuild round-trips random conditional-update programs.
    #[test]
    fn chain_roundtrip_on_random_programs(ops in mem_program()) {
        let mut ctx = Context::new();
        let m = build_memory(&mut ctx, &ops);
        match evc::chain::parse(&ctx, m) {
            Ok(chain) => {
                prop_assert_eq!(chain.to_expr(&mut ctx), m);
                prop_assert!(chain.len() <= ops.len());
            }
            Err(_) => {
                // Only guard simplification can break the chain shape, and
                // with distinct guard variables it cannot.
                prop_assert!(false, "chain parse failed");
            }
        }
    }
}
