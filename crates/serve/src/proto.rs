//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Every request is one JSON object on one line with a `request`
//! discriminator (`verify`, `stats`, `ping`, `shutdown`); every response
//! line carries a `response` discriminator. A `verify` request streams
//! zero or more `event` lines (queued / started / retried progress)
//! followed by exactly one terminal line — `result`, `overloaded`, or
//! `error`; every other request gets exactly one response line. The full
//! schema is documented in `DESIGN.md` §10.
//!
//! Both directions are implemented here so the daemon, `robctl`, and the
//! tests share one codec.

use std::time::Duration;

use campaign::codec;
use campaign::json::{self, Json};
use campaign::Priority;
use rob_verify::{BugSpec, Config, Limits, Strategy, Verification};

/// Where a `result` line came from: a cache hit, a fresh solve, or a
/// coalesced ride on another client's identical in-flight solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Answered from the result cache.
    Hit,
    /// Solved fresh for this request.
    Miss,
    /// Attached as a follower to an identical in-flight solve.
    Coalesced,
}

impl Disposition {
    /// Stable wire name (`cache` field of a `result` line).
    pub fn label(self) -> &'static str {
        match self {
            Disposition::Hit => "hit",
            Disposition::Miss => "miss",
            Disposition::Coalesced => "coalesced",
        }
    }

    /// Parses the wire name.
    pub fn from_label(label: &str) -> Option<Disposition> {
        match label {
            "hit" => Some(Disposition::Hit),
            "miss" => Some(Disposition::Miss),
            "coalesced" => Some(Disposition::Coalesced),
            _ => None,
        }
    }
}

/// A `verify` request: everything that determines one verification job,
/// plus per-request quality-of-service knobs (`deadline_ms`, `priority`)
/// that shape scheduling without entering the job's cache identity.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyRequest {
    /// Reorder-buffer size `N`.
    pub rob_size: usize,
    /// Issue/retire width `k`.
    pub issue_width: usize,
    /// Translation strategy.
    pub strategy: Strategy,
    /// Optional seeded defect.
    pub bug: Option<BugSpec>,
    /// SAT resource limits.
    pub sat_limits: Limits,
    /// Log and check DRUP proofs for `Verified` verdicts.
    pub check_proofs: bool,
    /// Run the rob-lint audit battery.
    pub audit: bool,
    /// Wall-clock budget for the whole request, measured from arrival.
    /// A request that cannot finish in time gets a structured
    /// `deadline-exceeded` terminal line (or a degraded result) rather
    /// than a silent hang. `None` means no deadline.
    pub deadline_ms: Option<u64>,
    /// Admission lane; bulk traffic is shed before interactive under
    /// overload.
    pub priority: Priority,
}

impl VerifyRequest {
    /// A bug-free, unlimited request for the given configuration.
    pub fn new(rob_size: usize, issue_width: usize) -> Self {
        VerifyRequest {
            rob_size,
            issue_width,
            strategy: Strategy::default(),
            bug: None,
            sat_limits: Limits::none(),
            check_proofs: false,
            audit: false,
            deadline_ms: None,
            priority: Priority::Interactive,
        }
    }

    /// The request's deadline as a [`Duration`], when present.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline_ms.map(Duration::from_millis)
    }

    /// Validates the configuration and builds the campaign job.
    ///
    /// # Errors
    ///
    /// Reports an invalid size/width combination or a bug that does not
    /// fit the configuration.
    pub fn job(&self) -> Result<campaign::JobSpec, String> {
        let config = Config::new(self.rob_size, self.issue_width).map_err(|e| e.to_string())?;
        if let Some(bug) = self.bug {
            bug.validate(&config).map_err(|e| e.to_string())?;
        }
        Ok(campaign::JobSpec {
            config,
            strategy: self.strategy,
            bug: self.bug,
            sat_limits: self.sat_limits,
            check_proofs: self.check_proofs,
            audit: self.audit,
        })
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Verify one configuration.
    Verify(VerifyRequest),
    /// Report server statistics.
    Stats,
    /// Report the metrics registry in Prometheus text exposition.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Saturation-immune health probe: answered on the connection thread
    /// without touching the admission queue, so probes can distinguish an
    /// overloaded daemon from a dead one.
    Health,
    /// Drain and exit.
    Shutdown,
}

/// An aggregate server-statistics snapshot (the `stats` response body).
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Seconds since the daemon started.
    pub uptime_secs: f64,
    /// Verify jobs answered (hits and misses).
    pub jobs_served: u64,
    /// Requests shed with `overloaded`.
    pub rejected: u64,
    /// Cache lookup hits.
    pub cache_hits: u64,
    /// Cache lookup misses.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
    /// Results currently cached.
    pub cache_entries: usize,
    /// Entries evicted since startup.
    pub cache_evictions: u64,
    /// Jobs waiting in the admission queue.
    pub queue_depth: usize,
    /// Interactive-lane jobs waiting in the admission queue.
    pub queue_interactive: usize,
    /// Bulk-lane jobs waiting in the admission queue.
    pub queue_bulk: usize,
    /// Interactive submissions shed at the admission bound.
    pub shed_interactive: u64,
    /// Bulk submissions shed at the bulk admission ceiling.
    pub shed_bulk: u64,
    /// Jobs currently executing.
    pub active_jobs: usize,
    /// Verify requests answered by riding an identical in-flight solve.
    pub coalesced: u64,
    /// Verify requests answered with a `deadline-exceeded` terminal line.
    pub deadline_exceeded: u64,
    /// Obligation-memo lookup hits since startup (sub-formula
    /// discharges, PE classifications, and main-solve verdicts replayed
    /// across requests).
    pub memo_hits: u64,
    /// Obligation-memo lookup misses since startup.
    pub memo_misses: u64,
    /// `memo_hits / (memo_hits + memo_misses)`.
    pub memo_hit_rate: f64,
    /// Entries in the obligation memo store.
    pub memo_entries: usize,
    /// Median verify latency (solved jobs only).
    pub p50: Duration,
    /// 95th-percentile verify latency (solved jobs only).
    pub p95: Duration,
}

/// A server response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Per-job progress (`queued`, `started`, `retried`).
    Event {
        /// The progress state.
        state: String,
        /// Free-form elaboration (job label, attempt number).
        detail: String,
    },
    /// The terminal answer to a `verify` request.
    Result {
        /// How the answer was produced (cache hit, fresh solve, or
        /// coalesced onto an identical in-flight solve).
        disposition: Disposition,
        /// The job-key digest (16 hex digits) for log correlation.
        key_digest: String,
        /// Wall-clock time the server spent answering.
        elapsed: Duration,
        /// The verification result.
        verification: Verification,
    },
    /// Terminal line for a `verify` whose `deadline_ms` elapsed before a
    /// result could be produced.
    DeadlineExceeded {
        /// The job-key digest (16 hex digits) for log correlation.
        key_digest: String,
        /// The deadline the request carried.
        deadline_ms: u64,
        /// Wall-clock time the request spent before being cut off.
        elapsed: Duration,
    },
    /// Statistics snapshot.
    Stats(StatsSnapshot),
    /// Answer to `health`: always served, even under saturation.
    Health {
        /// `ok`, `overloaded`, or `draining`.
        status: String,
        /// Interactive-lane jobs waiting.
        queue_interactive: usize,
        /// Bulk-lane jobs waiting.
        queue_bulk: usize,
        /// The configured admission bound.
        queue_limit: usize,
        /// Jobs currently executing.
        active_jobs: usize,
    },
    /// Metrics registry snapshot in Prometheus text exposition.
    Metrics {
        /// The exposition body (`# TYPE` + `name value` lines).
        text: String,
    },
    /// The admission queue was full; retry later.
    Overloaded {
        /// Queue depth observed.
        depth: usize,
        /// The admission bound that refused this request's lane.
        limit: usize,
        /// The lane the shed request targeted.
        lane: Priority,
    },
    /// The request failed (parse error, invalid configuration, worker
    /// crash).
    Error {
        /// What went wrong.
        message: String,
    },
    /// Answer to `ping`.
    Pong,
    /// The daemon acknowledged `shutdown` and is draining.
    ShutdownAck,
}

impl Request {
    /// Serializes to one JSON line (no trailing newline).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Verify(v) => Json::obj([
                ("request", Json::str("verify")),
                ("rob_size", Json::from(v.rob_size)),
                ("issue_width", Json::from(v.issue_width)),
                ("strategy", Json::str(v.strategy.to_string())),
                ("bug", v.bug.map(|b| b.to_string()).into()),
                ("max_conflicts", v.sat_limits.max_conflicts.into()),
                ("max_seconds", v.sat_limits.max_seconds.into()),
                (
                    "max_learnt_literals",
                    v.sat_limits.max_learnt_literals.into(),
                ),
                ("check_proofs", Json::from(v.check_proofs)),
                ("audit", Json::from(v.audit)),
                ("deadline_ms", v.deadline_ms.into()),
                ("priority", Json::str(v.priority.label())),
            ]),
            Request::Stats => Json::obj([("request", Json::str("stats"))]),
            Request::Metrics => Json::obj([("request", Json::str("metrics"))]),
            Request::Ping => Json::obj([("request", Json::str("ping"))]),
            Request::Health => Json::obj([("request", Json::str("health"))]),
            Request::Shutdown => Json::obj([("request", Json::str("shutdown"))]),
        }
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Describes the first syntactic or semantic problem; the server
    /// reports it back as an `error` response.
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = json::parse(line.trim())?;
        let kind = doc
            .get("request")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing request discriminator".to_owned())?;
        match kind {
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "ping" => Ok(Request::Ping),
            "health" => Ok(Request::Health),
            "shutdown" => Ok(Request::Shutdown),
            "verify" => {
                let rob_size = require_usize(&doc, "rob_size")?;
                let issue_width = require_usize(&doc, "issue_width")?;
                let strategy = match doc.get("strategy") {
                    None | Some(Json::Null) => Strategy::default(),
                    Some(s) => s
                        .as_str()
                        .ok_or_else(|| "strategy is not a string".to_owned())?
                        .parse()?,
                };
                let bug = match doc.get("bug") {
                    None | Some(Json::Null) => None,
                    Some(b) => Some(
                        b.as_str()
                            .ok_or_else(|| "bug is not a string".to_owned())?
                            .parse::<BugSpec>()
                            .map_err(|e| e.to_string())?,
                    ),
                };
                let sat_limits = Limits {
                    max_conflicts: optional_u64(&doc, "max_conflicts")?,
                    max_seconds: optional_f64(&doc, "max_seconds")?,
                    max_learnt_literals: optional_u64(&doc, "max_learnt_literals")?,
                };
                let priority = match doc.get("priority") {
                    None | Some(Json::Null) => Priority::Interactive,
                    Some(p) => {
                        let label = p
                            .as_str()
                            .ok_or_else(|| "priority is not a string".to_owned())?;
                        Priority::from_label(label)
                            .ok_or_else(|| format!("unknown priority {label:?}"))?
                    }
                };
                Ok(Request::Verify(VerifyRequest {
                    rob_size,
                    issue_width,
                    strategy,
                    bug,
                    sat_limits,
                    check_proofs: optional_bool(&doc, "check_proofs")?,
                    audit: optional_bool(&doc, "audit")?,
                    deadline_ms: optional_u64(&doc, "deadline_ms")?,
                    priority,
                }))
            }
            other => Err(format!("unknown request {other:?}")),
        }
    }
}

impl Response {
    /// Serializes to one JSON line (no trailing newline).
    pub fn to_json(&self) -> Json {
        match self {
            Response::Event { state, detail } => Json::obj([
                ("response", Json::str("event")),
                ("state", Json::str(state.clone())),
                ("detail", Json::str(detail.clone())),
            ]),
            Response::Result {
                disposition,
                key_digest,
                elapsed,
                verification,
            } => Json::obj([
                ("response", Json::str("result")),
                ("cache", Json::str(disposition.label())),
                ("key_digest", Json::str(key_digest.clone())),
                ("elapsed_secs", Json::Num(elapsed.as_secs_f64())),
                ("verification", codec::verification_to_json(verification)),
            ]),
            Response::DeadlineExceeded {
                key_digest,
                deadline_ms,
                elapsed,
            } => Json::obj([
                ("response", Json::str("deadline-exceeded")),
                ("key_digest", Json::str(key_digest.clone())),
                ("deadline_ms", Json::from(*deadline_ms)),
                ("elapsed_secs", Json::Num(elapsed.as_secs_f64())),
            ]),
            Response::Health {
                status,
                queue_interactive,
                queue_bulk,
                queue_limit,
                active_jobs,
            } => Json::obj([
                ("response", Json::str("health")),
                ("status", Json::str(status.clone())),
                ("queue_interactive", Json::from(*queue_interactive)),
                ("queue_bulk", Json::from(*queue_bulk)),
                ("queue_limit", Json::from(*queue_limit)),
                ("active_jobs", Json::from(*active_jobs)),
            ]),
            Response::Stats(s) => Json::obj([
                ("response", Json::str("stats")),
                ("uptime_secs", Json::Num(s.uptime_secs)),
                ("jobs_served", Json::from(s.jobs_served)),
                ("rejected", Json::from(s.rejected)),
                ("cache_hits", Json::from(s.cache_hits)),
                ("cache_misses", Json::from(s.cache_misses)),
                ("hit_rate", Json::Num(s.hit_rate)),
                ("cache_entries", Json::from(s.cache_entries)),
                ("cache_evictions", Json::from(s.cache_evictions)),
                ("queue_depth", Json::from(s.queue_depth)),
                ("queue_interactive", Json::from(s.queue_interactive)),
                ("queue_bulk", Json::from(s.queue_bulk)),
                ("shed_interactive", Json::from(s.shed_interactive)),
                ("shed_bulk", Json::from(s.shed_bulk)),
                ("active_jobs", Json::from(s.active_jobs)),
                ("coalesced", Json::from(s.coalesced)),
                ("deadline_exceeded", Json::from(s.deadline_exceeded)),
                ("memo_hits", Json::from(s.memo_hits)),
                ("memo_misses", Json::from(s.memo_misses)),
                ("memo_hit_rate", Json::Num(s.memo_hit_rate)),
                ("memo_entries", Json::from(s.memo_entries)),
                ("p50_secs", Json::Num(s.p50.as_secs_f64())),
                ("p95_secs", Json::Num(s.p95.as_secs_f64())),
            ]),
            Response::Metrics { text } => Json::obj([
                ("response", Json::str("metrics")),
                ("text", Json::str(text.clone())),
            ]),
            Response::Overloaded { depth, limit, lane } => Json::obj([
                ("response", Json::str("overloaded")),
                ("depth", Json::from(*depth)),
                ("limit", Json::from(*limit)),
                ("lane", Json::str(lane.label())),
            ]),
            Response::Error { message } => Json::obj([
                ("response", Json::str("error")),
                ("message", Json::str(message.clone())),
            ]),
            Response::Pong => Json::obj([("response", Json::str("pong"))]),
            Response::ShutdownAck => Json::obj([("response", Json::str("shutdown-ack"))]),
        }
    }

    /// Parses one response line (the `robctl` side).
    ///
    /// # Errors
    ///
    /// Describes the first malformed field.
    pub fn parse(line: &str) -> Result<Response, String> {
        let doc = json::parse(line.trim())?;
        let kind = doc
            .get("response")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing response discriminator".to_owned())?;
        match kind {
            "pong" => Ok(Response::Pong),
            "shutdown-ack" => Ok(Response::ShutdownAck),
            "event" => Ok(Response::Event {
                state: require_str(&doc, "state")?,
                detail: require_str(&doc, "detail")?,
            }),
            "overloaded" => {
                let lane = require_str(&doc, "lane")?;
                Ok(Response::Overloaded {
                    depth: require_usize(&doc, "depth")?,
                    limit: require_usize(&doc, "limit")?,
                    lane: Priority::from_label(&lane)
                        .ok_or_else(|| format!("unknown lane {lane:?}"))?,
                })
            }
            "deadline-exceeded" => {
                let elapsed = require_f64(&doc, "elapsed_secs")?;
                if !(elapsed.is_finite() && elapsed >= 0.0) {
                    return Err(format!("invalid elapsed_secs {elapsed}"));
                }
                Ok(Response::DeadlineExceeded {
                    key_digest: require_str(&doc, "key_digest")?,
                    deadline_ms: require_f64(&doc, "deadline_ms")? as u64,
                    elapsed: Duration::from_secs_f64(elapsed),
                })
            }
            "health" => Ok(Response::Health {
                status: require_str(&doc, "status")?,
                queue_interactive: require_usize(&doc, "queue_interactive")?,
                queue_bulk: require_usize(&doc, "queue_bulk")?,
                queue_limit: require_usize(&doc, "queue_limit")?,
                active_jobs: require_usize(&doc, "active_jobs")?,
            }),
            "error" => Ok(Response::Error {
                message: require_str(&doc, "message")?,
            }),
            "metrics" => Ok(Response::Metrics {
                text: require_str(&doc, "text")?,
            }),
            "result" => {
                let cache = require_str(&doc, "cache")?;
                let disposition = Disposition::from_label(&cache)
                    .ok_or_else(|| format!("unknown cache flag {cache:?}"))?;
                let elapsed = require_f64(&doc, "elapsed_secs")?;
                if !(elapsed.is_finite() && elapsed >= 0.0) {
                    return Err(format!("invalid elapsed_secs {elapsed}"));
                }
                Ok(Response::Result {
                    disposition,
                    key_digest: require_str(&doc, "key_digest")?,
                    elapsed: Duration::from_secs_f64(elapsed),
                    verification: codec::verification_from_json(
                        doc.get("verification")
                            .ok_or_else(|| "missing verification".to_owned())?,
                    )?,
                })
            }
            "stats" => Ok(Response::Stats(StatsSnapshot {
                uptime_secs: require_f64(&doc, "uptime_secs")?,
                jobs_served: require_f64(&doc, "jobs_served")? as u64,
                rejected: require_f64(&doc, "rejected")? as u64,
                cache_hits: require_f64(&doc, "cache_hits")? as u64,
                cache_misses: require_f64(&doc, "cache_misses")? as u64,
                hit_rate: require_f64(&doc, "hit_rate")?,
                cache_entries: require_usize(&doc, "cache_entries")?,
                cache_evictions: require_f64(&doc, "cache_evictions")? as u64,
                queue_depth: require_usize(&doc, "queue_depth")?,
                queue_interactive: require_usize(&doc, "queue_interactive")?,
                queue_bulk: require_usize(&doc, "queue_bulk")?,
                shed_interactive: require_f64(&doc, "shed_interactive")? as u64,
                shed_bulk: require_f64(&doc, "shed_bulk")? as u64,
                active_jobs: require_usize(&doc, "active_jobs")?,
                coalesced: require_f64(&doc, "coalesced")? as u64,
                deadline_exceeded: require_f64(&doc, "deadline_exceeded")? as u64,
                memo_hits: require_f64(&doc, "memo_hits")? as u64,
                memo_misses: require_f64(&doc, "memo_misses")? as u64,
                memo_hit_rate: require_f64(&doc, "memo_hit_rate")?,
                memo_entries: require_usize(&doc, "memo_entries")?,
                p50: Duration::from_secs_f64(require_f64(&doc, "p50_secs")?.max(0.0)),
                p95: Duration::from_secs_f64(require_f64(&doc, "p95_secs")?.max(0.0)),
            })),
            other => Err(format!("unknown response {other:?}")),
        }
    }
}

fn require_f64(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn require_usize(doc: &Json, key: &str) -> Result<usize, String> {
    let n = require_f64(doc, key)?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("field {key:?} is not a non-negative integer: {n}"));
    }
    Ok(n as usize)
}

fn require_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn optional_u64(doc: &Json, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let n = v
                .as_num()
                .ok_or_else(|| format!("field {key:?} is not a number"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!("field {key:?} is not a non-negative integer: {n}"));
            }
            Ok(Some(n as u64))
        }
    }
}

fn optional_f64(doc: &Json, key: &str) -> Result<Option<f64>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let n = v
                .as_num()
                .ok_or_else(|| format!("field {key:?} is not a number"))?;
            if !(n.is_finite() && n >= 0.0) {
                return Err(format!("field {key:?} is not a valid budget: {n}"));
            }
            Ok(Some(n))
        }
    }
}

fn optional_bool(doc: &Json, key: &str) -> Result<bool, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(other) => Err(format!("field {key:?} is not a bool: {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rob_verify::{Operand, Verdict};

    #[test]
    fn requests_roundtrip() {
        let requests = [
            Request::Ping,
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
            Request::Verify(VerifyRequest::new(8, 2)),
            Request::Verify(VerifyRequest {
                strategy: Strategy::PositiveEqualityOnly,
                bug: Some(BugSpec::ForwardingIgnoresValidResult {
                    slice: 5,
                    operand: Operand::Src2,
                }),
                sat_limits: Limits {
                    max_conflicts: Some(5000),
                    max_seconds: Some(1.5),
                    max_learnt_literals: None,
                },
                check_proofs: true,
                audit: true,
                deadline_ms: Some(1500),
                priority: Priority::Bulk,
                ..VerifyRequest::new(8, 2)
            }),
            Request::Health,
        ];
        for request in requests {
            let line = request.to_json().to_string();
            assert!(!line.contains('\n'));
            assert_eq!(Request::parse(&line).unwrap(), request, "{line}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        let verification = Verification {
            verdict: Verdict::SliceDiagnosis {
                slice: 5,
                reason: "forwarding".to_owned(),
            },
            timings: Default::default(),
            stats: Default::default(),
            diagnostics: Vec::new(),
            degraded: None,
        };
        let responses = [
            Response::Pong,
            Response::ShutdownAck,
            Response::Event {
                state: "started".to_owned(),
                detail: "rob8xw2/rewrite+pe worker=1 attempt=1".to_owned(),
            },
            Response::Overloaded {
                depth: 64,
                limit: 64,
                lane: Priority::Bulk,
            },
            Response::Error {
                message: "bad request".to_owned(),
            },
            Response::DeadlineExceeded {
                key_digest: "00ff00ff00ff00ff".to_owned(),
                deadline_ms: 250,
                elapsed: Duration::from_millis(251),
            },
            Response::Health {
                status: "overloaded".to_owned(),
                queue_interactive: 3,
                queue_bulk: 5,
                queue_limit: 8,
                active_jobs: 4,
            },
            Response::Metrics {
                text: "# TYPE rob_serve_jobs_served_total counter\n\
                       rob_serve_jobs_served_total 7\n"
                    .to_owned(),
            },
            Response::Result {
                disposition: Disposition::Coalesced,
                key_digest: "00ff00ff00ff00ff".to_owned(),
                elapsed: Duration::from_millis(3),
                verification,
            },
            Response::Stats(StatsSnapshot {
                uptime_secs: 12.5,
                jobs_served: 7,
                rejected: 1,
                cache_hits: 3,
                cache_misses: 4,
                hit_rate: 3.0 / 7.0,
                cache_entries: 4,
                cache_evictions: 0,
                queue_depth: 2,
                queue_interactive: 1,
                queue_bulk: 1,
                shed_interactive: 0,
                shed_bulk: 1,
                active_jobs: 1,
                coalesced: 2,
                deadline_exceeded: 1,
                memo_hits: 11,
                memo_misses: 5,
                memo_hit_rate: 11.0 / 16.0,
                memo_entries: 9,
                p50: Duration::from_millis(40),
                p95: Duration::from_millis(90),
            }),
        ];
        for response in responses {
            let line = response.to_json().to_string();
            assert!(!line.contains('\n'));
            assert_eq!(Response::parse(&line).unwrap(), response, "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        assert!(Request::parse("{}").is_err());
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"request":"verify"}"#).is_err());
        assert!(Request::parse(
            r#"{"request":"verify","rob_size":4,"issue_width":1,"strategy":"quantum"}"#
        )
        .is_err());
        assert!(Request::parse(
            r#"{"request":"verify","rob_size":4,"issue_width":1,"bug":"no-such-bug:1"}"#
        )
        .is_err());
        assert!(Request::parse(
            r#"{"request":"verify","rob_size":4,"issue_width":1,"max_conflicts":-3}"#
        )
        .is_err());
        assert!(Request::parse(r#"{"request":"dance"}"#).is_err());
        assert!(Request::parse(
            r#"{"request":"verify","rob_size":4,"issue_width":1,"priority":"best-effort"}"#
        )
        .is_err());
        assert!(Request::parse(
            r#"{"request":"verify","rob_size":4,"issue_width":1,"deadline_ms":-5}"#
        )
        .is_err());
    }

    #[test]
    fn verify_request_validates_configuration() {
        assert!(VerifyRequest::new(4, 2).job().is_ok());
        assert!(VerifyRequest::new(2, 8).job().is_err(), "width > size");
        let bad_bug = VerifyRequest {
            bug: Some(BugSpec::RetireOutOfOrder { slice: 99 }),
            ..VerifyRequest::new(4, 2)
        };
        assert!(bad_bug.job().is_err(), "bug slice exceeds ROB size");
    }
}
