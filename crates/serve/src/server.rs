//! The daemon: TCP accept loop, connection handlers, and the verify
//! pipeline (cache lookup → pool submission → event streaming → cache
//! insert).
//!
//! Life of a `verify` request:
//!
//! 1. the connection thread parses the line and derives the job's
//!    [`JobKey`](rob_verify::JobKey);
//! 2. a cache hit answers immediately with `cache: hit`;
//! 3. a miss is submitted to the shared [`ServicePool`] — if the bounded
//!    admission queue is full the request is shed with `overloaded`
//!    (never queued unboundedly);
//! 4. while the job runs, progress events stream back to the client;
//! 5. the result is inserted into the cache **before** the response is
//!    written, so a client that disconnected mid-stream still pays
//!    forward: the next identical request is a hit.
//!
//! Shutdown (a `shutdown` request or [`ServerHandle::shutdown`]) drains:
//! the listener stops accepting, in-flight and queued jobs finish, every
//! connection thread is joined, and the cache is flushed to its store.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use campaign::pool::{CancelToken, ExecOutcome, PoolOptions, ServicePool, SubmitError};
use campaign::{JobRunner, JobSpec};
use rob_verify::Verification;

use rob_verify::memo;
use rob_verify::trace;

use crate::cache::{ReplayReport, ResultCache};
use crate::proto::{Request, Response};
use crate::stats::ServerStats;

/// Verify jobs answered (cache hits and misses alike).
static JOBS_SERVED: trace::Counter = trace::Counter::new("serve.jobs.served");
/// Verify answers served straight from the result cache.
static CACHE_HITS: trace::Counter = trace::Counter::new("serve.cache.hits");
/// Verify answers that required a solve.
static CACHE_MISSES: trace::Counter = trace::Counter::new("serve.cache.misses");
/// Results currently held by the cache.
static CACHE_ENTRIES: trace::Gauge = trace::Gauge::new("serve.cache.entries");

/// How the daemon is wired together.
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Solver worker threads.
    pub workers: usize,
    /// Bound on jobs waiting for a worker; submissions beyond it are
    /// shed with `overloaded`.
    pub queue_limit: usize,
    /// Per-attempt wall-clock deadline for a job, if any.
    pub timeout: Option<Duration>,
    /// Maximum cached results.
    pub cache_capacity: usize,
    /// JSONL store replayed on startup and rewritten on shutdown.
    pub persist_path: Option<PathBuf>,
    /// JSONL journal for the obligation memo store: replayed on startup,
    /// appended to while serving, flushed on drain. The memo store itself
    /// is always on (it is process-global behind the daemon and shared by
    /// every request); this only controls persistence across restarts.
    pub memo_persist_path: Option<PathBuf>,
    /// When `true`, a drain trips every outstanding job's cancel token
    /// instead of waiting for queued and in-flight work to finish:
    /// cooperative jobs wind down promptly and queued jobs resolve as
    /// cancelled. The default (`false`) preserves finish-everything
    /// drains.
    pub cancel_on_drain: bool,
    /// The job runner; tests inject sleeping or panicking runners.
    pub runner: JobRunner,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: campaign::default_workers(),
            queue_limit: 32,
            timeout: None,
            cache_capacity: 1024,
            persist_path: None,
            memo_persist_path: None,
            cancel_on_drain: false,
            runner: Arc::new(|job: &JobSpec, cancel: &CancelToken| job.run_cancellable(cancel)),
        }
    }
}

/// A job travelling through the service pool, carrying the progress
/// channel of the connection that submitted it.
#[derive(Clone)]
struct ServiceJob {
    spec: JobSpec,
    events: Sender<Response>,
}

type PoolResult = Result<Verification, rob_verify::VerifyError>;

struct Shared {
    pool: ServicePool<ServiceJob, PoolResult>,
    cache: Mutex<ResultCache>,
    /// The process-global obligation memo store: every worker binds it
    /// around each job, so sub-formula discharges, PE classifications,
    /// and main-solve verdicts survive across requests.
    memo: memo::MemoHandle,
    stats: ServerStats,
    stopping: AtomicBool,
    cancel_on_drain: bool,
}

/// The daemon entry point. See [`Server::start`].
pub struct Server;

impl Server {
    /// Binds, replays the persisted cache (if configured), starts the
    /// worker pool and the accept loop, and returns a handle.
    ///
    /// # Errors
    ///
    /// Propagates bind and store-replay I/O errors.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let (cache, replay) = match &config.persist_path {
            Some(path) => {
                let (cache, report) = ResultCache::with_store(config.cache_capacity, path)?;
                (cache, Some(report))
            }
            None => (ResultCache::new(config.cache_capacity), None),
        };

        let (memo_store, memo_replay) = match &config.memo_persist_path {
            Some(path) => {
                let (store, report) = memo::ObligationStore::with_store(
                    rob_verify::jobkey::CODE_FINGERPRINT,
                    path.clone(),
                )?;
                (Arc::new(store), Some(report))
            }
            None => (rob_verify::memo_handle(), None),
        };

        let runner = Arc::clone(&config.runner);
        let worker_memo = Arc::clone(&memo_store);
        let pool = ServicePool::start(
            &PoolOptions {
                workers: config.workers,
                timeout: config.timeout,
                retries: 0,
                ..PoolOptions::default()
            },
            config.queue_limit,
            Arc::new(move |job: &ServiceJob, cancel: &CancelToken| {
                chaos::hit("serve.worker.run");
                let _ = job.events.send(Response::Event {
                    state: "started".to_owned(),
                    detail: job.spec.label(),
                });
                // The memo binding is thread-local: bind on the worker
                // thread, once per job.
                let _memo_guard = memo::bind(Arc::clone(&worker_memo));
                runner(&job.spec, cancel)
            }),
        );

        let shared = Arc::new(Shared {
            pool,
            cache: Mutex::new(cache),
            memo: memo_store,
            stats: ServerStats::new(),
            stopping: AtomicBool::new(false),
            cancel_on_drain: config.cancel_on_drain,
        });

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("rob-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_shared))?;

        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            replay,
            memo_replay,
        })
    }
}

/// Control handle for a running daemon.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    replay: Option<ReplayReport>,
    memo_replay: Option<memo::ReplayReport>,
}

impl ServerHandle {
    /// The bound address (resolved, so tests learn the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What the startup replay of the persisted store found, when a
    /// store is configured.
    pub fn replay_report(&self) -> Option<ReplayReport> {
        self.replay
    }

    /// What the startup replay of the memo journal found, when one is
    /// configured.
    pub fn memo_replay_report(&self) -> Option<memo::ReplayReport> {
        self.memo_replay
    }

    /// Requests a graceful drain and blocks until it completes.
    pub fn shutdown(mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop; failure means it is already gone.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Blocks until the daemon drains (a client sent `shutdown`).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(shared);
        let conn_addr = listener.local_addr().ok();
        if let Ok(handle) = std::thread::Builder::new()
            .name("rob-serve-conn".to_owned())
            .spawn(move || handle_connection(stream, &conn_shared, conn_addr))
        {
            connections.push(handle);
        }
        // Reap finished handlers so a long-lived daemon does not
        // accumulate join handles.
        connections.retain(|h| !h.is_finished());
    }
    // Drain: every connection thread's pending receiver resolves and the
    // thread exits — either because queued and in-flight jobs finish, or
    // (cancel-on-drain) because their tokens were tripped first and they
    // resolve as cancelled.
    if shared.cancel_on_drain {
        shared.pool.shutdown_now();
    } else {
        shared.pool.shutdown();
    }
    for handle in connections {
        let _ = handle.join();
    }
    if let Ok(cache) = shared.cache.lock() {
        let _ = cache.flush();
    }
    let _ = shared.memo.flush();
}

/// How long a connection read blocks before re-checking the stop flag.
const READ_POLL: Duration = Duration::from_millis(100);

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>, addr: Option<SocketAddr>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        match Request::parse(&line) {
            Err(message) => {
                if write_response(&mut writer, &Response::Error { message }).is_err() {
                    return;
                }
            }
            Ok(Request::Ping) => {
                if write_response(&mut writer, &Response::Pong).is_err() {
                    return;
                }
            }
            Ok(Request::Stats) => {
                let snapshot = {
                    let cache = shared.cache.lock().expect("cache poisoned");
                    shared.stats.snapshot(
                        cache.hits(),
                        cache.misses(),
                        cache.len(),
                        cache.evictions(),
                        shared.pool.queue_depth(),
                        shared.pool.active_jobs(),
                        shared.memo.stats(),
                    )
                };
                if write_response(&mut writer, &Response::Stats(snapshot)).is_err() {
                    return;
                }
            }
            Ok(Request::Metrics) => {
                let response = Response::Metrics {
                    text: trace::prometheus(),
                };
                if write_response(&mut writer, &response).is_err() {
                    return;
                }
            }
            Ok(Request::Shutdown) => {
                let _ = write_response(&mut writer, &Response::ShutdownAck);
                shared.stopping.store(true, Ordering::SeqCst);
                // Wake the accept loop so the drain begins.
                if let Some(addr) = addr {
                    let _ = TcpStream::connect(addr);
                }
                return;
            }
            Ok(Request::Verify(request)) => {
                serve_verify(&mut writer, shared, &request);
                // A verify answer is terminal for errors too; keep the
                // connection open for the next request either way.
            }
        }
    }
}

fn serve_verify(
    writer: &mut TcpStream,
    shared: &Arc<Shared>,
    request: &crate::proto::VerifyRequest,
) {
    chaos::hit("serve.verify");
    let started = Instant::now();
    let job = match request.job() {
        Ok(job) => job,
        Err(message) => {
            let _ = write_response(writer, &Response::Error { message });
            return;
        }
    };
    let key = job.key();

    if let Some(verification) = shared.cache.lock().expect("cache poisoned").get(&key) {
        shared.stats.record_served(started.elapsed(), true);
        JOBS_SERVED.inc();
        CACHE_HITS.inc();
        let _ = write_response(
            writer,
            &Response::Result {
                cache_hit: true,
                key_digest: key.digest_hex(),
                elapsed: started.elapsed(),
                verification,
            },
        );
        return;
    }

    let (events, event_rx) = mpsc::channel();
    let queued = Response::Event {
        state: "queued".to_owned(),
        detail: format!("{} key={}", job.label(), key.digest_hex()),
    };
    let submission = match shared.pool.submit(ServiceJob { spec: job, events }) {
        Ok(submission) => submission,
        Err(SubmitError::Overloaded { depth, limit }) => {
            shared.stats.record_rejected();
            let _ = write_response(writer, &Response::Overloaded { depth, limit });
            return;
        }
        Err(SubmitError::ShuttingDown) => {
            let _ = write_response(
                writer,
                &Response::Error {
                    message: "server is shutting down".to_owned(),
                },
            );
            return;
        }
    };
    // The queued event is only sent once the job is actually admitted.
    let mut client_gone = write_response(writer, &queued).is_err();
    if client_gone {
        // Nobody is listening: tell a cooperative job to wind down. We
        // still wait for whatever it returns — a job that finishes anyway
        // (non-cooperative, or already past its last poll) pays forward
        // into the cache below.
        submission.cancel.cancel();
    }

    // Stream progress while waiting for the terminal result. A client
    // that disconnects mid-stream must not poison anything: we keep
    // waiting and cache any completed result.
    let exec = loop {
        while let Ok(event) = event_rx.try_recv() {
            if !client_gone && write_response(writer, &event).is_err() {
                client_gone = true;
                submission.cancel.cancel();
            }
        }
        match submission.results.recv_timeout(Duration::from_millis(10)) {
            Ok(exec) => break Some(exec),
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break None,
        }
    };

    let response = match exec.map(|e| e.outcome) {
        // A cancelled verification is not a solve — never cache it.
        Some(ExecOutcome::Done(Ok(verification))) if verification.was_cancelled() => {
            Response::Error {
                message: "job was cancelled".to_owned(),
            }
        }
        Some(ExecOutcome::Done(Ok(verification))) => {
            let entries = {
                let mut cache = shared.cache.lock().expect("cache poisoned");
                cache.insert(&key, verification.clone());
                cache.len()
            };
            shared.stats.record_served(started.elapsed(), false);
            JOBS_SERVED.inc();
            CACHE_MISSES.inc();
            CACHE_ENTRIES.set(entries as u64);
            Response::Result {
                cache_hit: false,
                key_digest: key.digest_hex(),
                elapsed: started.elapsed(),
                verification,
            }
        }
        Some(ExecOutcome::Done(Err(error))) => Response::Error {
            message: error.to_string(),
        },
        Some(ExecOutcome::Panicked { message }) => Response::Error {
            message: format!("job crashed: {message}"),
        },
        Some(ExecOutcome::TimedOut) => Response::Error {
            message: "job exceeded the server deadline".to_owned(),
        },
        Some(ExecOutcome::Cancelled) => Response::Error {
            message: "job was cancelled".to_owned(),
        },
        None => Response::Error {
            message: "job was dropped during shutdown".to_owned(),
        },
    };
    if !client_gone {
        let _ = write_response(writer, &response);
    }
}

fn write_response(writer: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    writeln!(writer, "{}", response.to_json())?;
    writer.flush()
}
