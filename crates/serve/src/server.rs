//! The daemon: TCP accept loop, connection handlers, and the verify
//! pipeline (cache lookup → single-flight coalescing → pool submission →
//! event streaming → cache insert).
//!
//! Life of a `verify` request:
//!
//! 1. the connection thread parses the line and derives the job's
//!    [`JobKey`](rob_verify::JobKey);
//! 2. a cache hit answers immediately with `cache: hit`;
//! 3. if an identical job is already in flight, the request attaches as
//!    a **follower** of that flight (single-flight coalescing): it never
//!    occupies a worker, and the leader's terminal result fans out to
//!    every follower as `cache: coalesced`;
//! 4. otherwise the request leads: it is submitted to the shared
//!    [`ServicePool`] on its priority lane — if the lane's admission
//!    bound is hit the request is shed with `overloaded` (bulk sheds
//!    strictly before interactive, never queued unboundedly);
//! 5. a request carrying `deadline_ms` runs under a deadline-bearing
//!    child [`CancelToken`]: the verifier degrades to the PE-only
//!    translation when the rewrite phase would blow the budget, and a
//!    request that misses its deadline outright gets a structured
//!    `deadline-exceeded` terminal line — never a silent hang;
//! 6. while the job runs, progress events stream back to the client;
//! 7. the result is inserted into the cache **before** the response is
//!    written, so a client that disconnected mid-stream still pays
//!    forward: the next identical request is a hit. Degraded and
//!    cancelled verifications are never cached — the cache key promises
//!    the default-budget run.
//!
//! A leader whose client disconnects keeps computing as long as at least
//! one follower is attached (the work is never orphaned); the flight's
//! job is cancelled only when the last interested client is gone.
//!
//! Shutdown (a `shutdown` request or [`ServerHandle::shutdown`]) drains:
//! the listener stops accepting, in-flight and queued jobs finish, every
//! follower receives its terminal line, every connection thread is
//! joined, and the cache is flushed to its store.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use campaign::pool::{
    CancelToken, ExecOutcome, PoolOptions, Priority, ServicePool, Submission, SubmitError,
};
use campaign::JobSpec;
use rob_verify::{Verification, VerifyError};

use rob_verify::memo;
use rob_verify::trace;

use crate::cache::{ReplayReport, ResultCache};
use crate::proto::{Disposition, Request, Response, VerifyRequest};
use crate::stats::{PoolView, ServerStats};

/// Verify jobs answered (cache hits, misses, and coalesced alike).
static JOBS_SERVED: trace::Counter = trace::Counter::new("serve.jobs.served");
/// Verify answers served straight from the result cache.
static CACHE_HITS: trace::Counter = trace::Counter::new("serve.cache.hits");
/// Verify answers that required a solve.
static CACHE_MISSES: trace::Counter = trace::Counter::new("serve.cache.misses");
/// Results currently held by the cache.
static CACHE_ENTRIES: trace::Gauge = trace::Gauge::new("serve.cache.entries");
/// Verify answers delivered by riding an identical in-flight solve.
static JOBS_COALESCED: trace::Counter = trace::Counter::new("serve.jobs.coalesced");
/// Verify requests answered with a `deadline-exceeded` terminal line.
static DEADLINE_EXCEEDED: trace::Counter = trace::Counter::new("serve.deadline.exceeded");
/// Interactive submissions shed at the admission bound.
static SHED_INTERACTIVE: trace::Counter = trace::Counter::new("serve.shed.interactive");
/// Bulk submissions shed at the bulk admission ceiling.
static SHED_BULK: trace::Counter = trace::Counter::new("serve.shed.bulk");
/// Interactive-lane jobs waiting in the admission queue.
static QUEUE_INTERACTIVE: trace::Gauge = trace::Gauge::new("serve.queue.interactive");
/// Bulk-lane jobs waiting in the admission queue.
static QUEUE_BULK: trace::Gauge = trace::Gauge::new("serve.queue.bulk");

/// The serving layer's job runner: the job, its cooperative cancel
/// token, and the wall-clock budget remaining when the job started
/// (`None` for deadline-free requests). Tests inject sleeping or
/// panicking runners.
pub type ServeRunner = Arc<
    dyn Fn(&JobSpec, &CancelToken, Option<Duration>) -> Result<Verification, VerifyError>
        + Send
        + Sync,
>;

/// How the daemon is wired together.
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Solver worker threads.
    pub workers: usize,
    /// Bound on jobs waiting for a worker; submissions beyond it are
    /// shed with `overloaded`.
    pub queue_limit: usize,
    /// Bulk admission ceiling on **total** queue occupancy: bulk
    /// submissions are shed once the queue holds this many jobs, while
    /// interactive traffic is admitted up to `queue_limit`. Clamped to
    /// `queue_limit`.
    pub bulk_queue_limit: usize,
    /// Per-attempt wall-clock deadline for a job, if any.
    pub timeout: Option<Duration>,
    /// Maximum cached results.
    pub cache_capacity: usize,
    /// JSONL store replayed on startup and rewritten on shutdown.
    pub persist_path: Option<PathBuf>,
    /// JSONL journal for the obligation memo store: replayed on startup,
    /// appended to while serving, flushed on drain. The memo store itself
    /// is always on (it is process-global behind the daemon and shared by
    /// every request); this only controls persistence across restarts.
    pub memo_persist_path: Option<PathBuf>,
    /// When `true`, a drain trips every outstanding job's cancel token
    /// instead of waiting for queued and in-flight work to finish:
    /// cooperative jobs wind down promptly and queued jobs resolve as
    /// cancelled. The default (`false`) preserves finish-everything
    /// drains.
    pub cancel_on_drain: bool,
    /// The job runner; tests inject sleeping or panicking runners.
    pub runner: ServeRunner,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: campaign::default_workers(),
            queue_limit: 32,
            bulk_queue_limit: 16,
            timeout: None,
            cache_capacity: 1024,
            persist_path: None,
            memo_persist_path: None,
            cancel_on_drain: false,
            runner: Arc::new(
                |job: &JobSpec, cancel: &CancelToken, remaining: Option<Duration>| {
                    job.run_with_deadline(cancel, remaining)
                },
            ),
        }
    }
}

/// A job travelling through the service pool, carrying the progress
/// channel of the connection that submitted it plus its deadline
/// bookkeeping (measured from arrival, so queue time counts against the
/// budget).
#[derive(Clone)]
struct ServiceJob {
    spec: JobSpec,
    events: Sender<Response>,
    arrival: Instant,
    deadline: Option<Duration>,
}

type PoolResult = Result<Verification, VerifyError>;

/// The terminal outcome of a flight, fanned out to every follower.
/// The verification is boxed: a flight outcome travels through channels
/// and clones once per follower, and the failure arm is a short string.
#[derive(Clone)]
enum FlightOutcome {
    Solved(Box<Verification>),
    Failed(String),
}

/// One in-flight solve that identical requests can attach to.
struct Flight {
    /// The leader's per-job cancel handle; tripped only when the last
    /// interested client (leader or follower) is gone.
    cancel: CancelToken,
    /// Follower reply channels by attach id.
    followers: HashMap<u64, Sender<FlightOutcome>>,
    /// The leader's client disconnected; the flight survives while
    /// followers remain.
    leader_gone: bool,
}

struct Shared {
    pool: ServicePool<ServiceJob, PoolResult>,
    cache: Mutex<ResultCache>,
    /// The process-global obligation memo store: every worker binds it
    /// around each job, so sub-formula discharges, PE classifications,
    /// and main-solve verdicts survive across requests.
    memo: memo::MemoHandle,
    stats: ServerStats,
    stopping: AtomicBool,
    cancel_on_drain: bool,
    /// Single-flight registry: canonical job key → the running flight.
    flights: Mutex<HashMap<String, Flight>>,
    follower_seq: AtomicU64,
}

impl Shared {
    fn update_lane_gauges(&self) {
        let (interactive, bulk) = self.pool.lane_depths();
        QUEUE_INTERACTIVE.set(interactive as u64);
        QUEUE_BULK.set(bulk as u64);
    }
}

/// The daemon entry point. See [`Server::start`].
pub struct Server;

impl Server {
    /// Binds, replays the persisted cache (if configured), starts the
    /// worker pool and the accept loop, and returns a handle.
    ///
    /// # Errors
    ///
    /// Propagates bind and store-replay I/O errors.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let (cache, replay) = match &config.persist_path {
            Some(path) => {
                let (cache, report) = ResultCache::with_store(config.cache_capacity, path)?;
                (cache, Some(report))
            }
            None => (ResultCache::new(config.cache_capacity), None),
        };

        let (memo_store, memo_replay) = match &config.memo_persist_path {
            Some(path) => {
                let (store, report) = memo::ObligationStore::with_store(
                    rob_verify::jobkey::CODE_FINGERPRINT,
                    path.clone(),
                )?;
                (Arc::new(store), Some(report))
            }
            None => (rob_verify::memo_handle(), None),
        };

        let runner = Arc::clone(&config.runner);
        let worker_memo = Arc::clone(&memo_store);
        let pool = ServicePool::start_with_lanes(
            &PoolOptions {
                workers: config.workers,
                timeout: config.timeout,
                retries: 0,
                ..PoolOptions::default()
            },
            config.queue_limit,
            config.bulk_queue_limit,
            Arc::new(move |job: &ServiceJob, cancel: &CancelToken| {
                chaos::hit("serve.worker.run");
                let _ = job.events.send(Response::Event {
                    state: "started".to_owned(),
                    detail: job.spec.label(),
                });
                // Queue time counts against the request deadline: derive
                // the remaining budget now, at execution start, and run
                // under a deadline-bearing child token so even a job
                // that ignores `remaining` self-cancels at its next poll.
                let remaining = job
                    .deadline
                    .map(|d| d.saturating_sub(job.arrival.elapsed()));
                let token = match remaining {
                    Some(budget) => cancel.child_with_deadline(budget),
                    None => cancel.clone(),
                };
                // The memo binding is thread-local: bind on the worker
                // thread, once per job.
                let _memo_guard = memo::bind(Arc::clone(&worker_memo));
                runner(&job.spec, &token, remaining)
            }),
        );

        let shared = Arc::new(Shared {
            pool,
            cache: Mutex::new(cache),
            memo: memo_store,
            stats: ServerStats::new(),
            stopping: AtomicBool::new(false),
            cancel_on_drain: config.cancel_on_drain,
            flights: Mutex::new(HashMap::new()),
            follower_seq: AtomicU64::new(0),
        });

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("rob-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_shared))?;

        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            replay,
            memo_replay,
        })
    }
}

/// Control handle for a running daemon.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    replay: Option<ReplayReport>,
    memo_replay: Option<memo::ReplayReport>,
}

impl ServerHandle {
    /// The bound address (resolved, so tests learn the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What the startup replay of the persisted store found, when a
    /// store is configured.
    pub fn replay_report(&self) -> Option<ReplayReport> {
        self.replay
    }

    /// What the startup replay of the memo journal found, when one is
    /// configured.
    pub fn memo_replay_report(&self) -> Option<memo::ReplayReport> {
        self.memo_replay
    }

    /// Requests a graceful drain and blocks until it completes.
    pub fn shutdown(mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop; failure means it is already gone.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Blocks until the daemon drains (a client sent `shutdown`).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(shared);
        let conn_addr = listener.local_addr().ok();
        if let Ok(handle) = std::thread::Builder::new()
            .name("rob-serve-conn".to_owned())
            .spawn(move || handle_connection(stream, &conn_shared, conn_addr))
        {
            connections.push(handle);
        }
        // Reap finished handlers so a long-lived daemon does not
        // accumulate join handles.
        connections.retain(|h| !h.is_finished());
    }
    // Drain: every connection thread's pending receiver resolves and the
    // thread exits — either because queued and in-flight jobs finish, or
    // (cancel-on-drain) because their tokens were tripped first and they
    // resolve as cancelled. Leaders resolve their flights on the way
    // out, so every coalesced follower receives its terminal line too.
    if shared.cancel_on_drain {
        shared.pool.shutdown_now();
    } else {
        shared.pool.shutdown();
    }
    for handle in connections {
        let _ = handle.join();
    }
    if let Ok(cache) = shared.cache.lock() {
        let _ = cache.flush();
    }
    let _ = shared.memo.flush();
}

/// How long a connection read blocks before re-checking the stop flag.
const READ_POLL: Duration = Duration::from_millis(100);

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>, addr: Option<SocketAddr>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        match Request::parse(&line) {
            Err(message) => {
                if write_response(&mut writer, &Response::Error { message }).is_err() {
                    return;
                }
            }
            Ok(Request::Ping) => {
                if write_response(&mut writer, &Response::Pong).is_err() {
                    return;
                }
            }
            Ok(Request::Health) => {
                // Served on the connection thread, never via the pool:
                // a saturated daemon still answers, so probes can tell
                // "overloaded" from "dead".
                let (queue_interactive, queue_bulk) = shared.pool.lane_depths();
                let queue_limit = shared.pool.queue_limit();
                let status = if shared.stopping.load(Ordering::SeqCst) {
                    "draining"
                } else if queue_interactive + queue_bulk >= queue_limit {
                    "overloaded"
                } else {
                    "ok"
                };
                let response = Response::Health {
                    status: status.to_owned(),
                    queue_interactive,
                    queue_bulk,
                    queue_limit,
                    active_jobs: shared.pool.active_jobs(),
                };
                if write_response(&mut writer, &response).is_err() {
                    return;
                }
            }
            Ok(Request::Stats) => {
                let snapshot = {
                    let cache = shared.cache.lock().expect("cache poisoned");
                    let (queue_interactive, queue_bulk) = shared.pool.lane_depths();
                    let pool_stats = shared.pool.pool_stats();
                    shared.stats.snapshot(
                        cache.hits(),
                        cache.misses(),
                        cache.len(),
                        cache.evictions(),
                        PoolView {
                            queue_interactive,
                            queue_bulk,
                            shed_interactive: pool_stats.shed_interactive,
                            shed_bulk: pool_stats.shed_bulk,
                            active_jobs: shared.pool.active_jobs(),
                        },
                        shared.memo.stats(),
                    )
                };
                if write_response(&mut writer, &Response::Stats(snapshot)).is_err() {
                    return;
                }
            }
            Ok(Request::Metrics) => {
                shared.update_lane_gauges();
                let response = Response::Metrics {
                    text: trace::prometheus(),
                };
                if write_response(&mut writer, &response).is_err() {
                    return;
                }
            }
            Ok(Request::Shutdown) => {
                let _ = write_response(&mut writer, &Response::ShutdownAck);
                shared.stopping.store(true, Ordering::SeqCst);
                // Wake the accept loop so the drain begins.
                if let Some(addr) = addr {
                    let _ = TcpStream::connect(addr);
                }
                return;
            }
            Ok(Request::Verify(request)) => {
                serve_verify(&mut writer, shared, &request);
                // A verify answer is terminal for errors too; keep the
                // connection open for the next request either way.
            }
        }
    }
}

/// How a verify request will be answered after the cache miss.
enum Role {
    /// This request owns the solve.
    Leader(Submission<PoolResult>, Receiver<Response>),
    /// This request rides an identical in-flight solve.
    Follower(u64, Receiver<FlightOutcome>),
    /// The admission queue refused the request.
    Shed(SubmitError),
}

fn serve_verify(writer: &mut TcpStream, shared: &Arc<Shared>, request: &VerifyRequest) {
    chaos::hit("serve.verify");
    let started = Instant::now();
    let deadline = request.deadline();
    let job = match request.job() {
        Ok(job) => job,
        Err(message) => {
            let _ = write_response(writer, &Response::Error { message });
            return;
        }
    };
    let key = job.key();

    if let Some(verification) = shared.cache.lock().expect("cache poisoned").get(&key) {
        shared
            .stats
            .record_served(started.elapsed(), Disposition::Hit);
        JOBS_SERVED.inc();
        CACHE_HITS.inc();
        let _ = write_response(
            writer,
            &Response::Result {
                disposition: Disposition::Hit,
                key_digest: key.digest_hex(),
                elapsed: started.elapsed(),
                verification,
            },
        );
        return;
    }

    // Attach-or-lead, atomically under the flight registry lock, so two
    // identical concurrent misses cannot both submit a solve. Only
    // deadline-free leaders register a flight: a deadline-bearing solve
    // runs under a clipped budget and may degrade, which would be the
    // wrong answer for followers that promised nothing of the sort.
    let canonical = key.canonical().to_owned();
    let role = {
        let mut flights = shared.flights.lock().expect("flights poisoned");
        if let Some(flight) = flights.get_mut(&canonical) {
            let id = shared.follower_seq.fetch_add(1, Ordering::SeqCst);
            let (follower_tx, follower_rx) = mpsc::channel();
            flight.followers.insert(id, follower_tx);
            Role::Follower(id, follower_rx)
        } else {
            let (events, event_rx) = mpsc::channel();
            match shared.pool.submit_with(
                ServiceJob {
                    spec: job,
                    events,
                    arrival: started,
                    deadline,
                },
                request.priority,
            ) {
                Ok(submission) => {
                    if deadline.is_none() {
                        flights.insert(
                            canonical.clone(),
                            Flight {
                                cancel: submission.cancel.clone(),
                                followers: HashMap::new(),
                                leader_gone: false,
                            },
                        );
                    }
                    Role::Leader(submission, event_rx)
                }
                Err(error) => Role::Shed(error),
            }
        }
    };
    shared.update_lane_gauges();

    match role {
        Role::Shed(SubmitError::Overloaded { depth, limit, lane }) => {
            shared.stats.record_rejected();
            match lane {
                Priority::Interactive => SHED_INTERACTIVE.inc(),
                Priority::Bulk => SHED_BULK.inc(),
            }
            let _ = write_response(writer, &Response::Overloaded { depth, limit, lane });
        }
        Role::Shed(SubmitError::ShuttingDown) => {
            let _ = write_response(
                writer,
                &Response::Error {
                    message: "server is shutting down".to_owned(),
                },
            );
        }
        Role::Follower(id, follower_rx) => {
            serve_follower(
                writer,
                shared,
                &canonical,
                id,
                follower_rx,
                started,
                deadline,
                &job,
                &key,
            );
        }
        Role::Leader(submission, event_rx) => {
            serve_leader(
                writer, shared, &canonical, submission, event_rx, started, deadline, &job, &key,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_leader(
    writer: &mut TcpStream,
    shared: &Arc<Shared>,
    canonical: &str,
    submission: Submission<PoolResult>,
    event_rx: Receiver<Response>,
    started: Instant,
    deadline: Option<Duration>,
    job: &JobSpec,
    key: &rob_verify::JobKey,
) {
    // Only deadline-free leaders registered a flight (see serve_verify).
    let has_flight = deadline.is_none();
    let queued = Response::Event {
        state: "queued".to_owned(),
        detail: format!("{} key={}", job.label(), key.digest_hex()),
    };
    // The queued event is only sent once the job is actually admitted.
    let mut client_gone = write_response(writer, &queued).is_err();
    if client_gone {
        leader_client_gone(shared, canonical, &submission, has_flight);
    }

    // Stream progress while waiting for the terminal result. A client
    // that disconnects mid-stream must not poison anything: we keep
    // waiting (followers may still be attached) and cache any completed
    // result.
    let mut deadline_tripped = false;
    let exec = loop {
        while let Ok(event) = event_rx.try_recv() {
            if !client_gone && write_response(writer, &event).is_err() {
                client_gone = true;
                leader_client_gone(shared, canonical, &submission, has_flight);
            }
        }
        match submission.results.recv_timeout(Duration::from_millis(10)) {
            Ok(exec) => break Some(exec),
            Err(RecvTimeoutError::Timeout) => {
                // A deadline-bearing request must never wait out the
                // queue past its budget: trip the job token so a queued
                // job resolves as cancelled promptly (a running one is
                // already racing its deadline-bearing child token).
                if !deadline_tripped {
                    if let Some(d) = deadline {
                        if started.elapsed() >= d {
                            submission.cancel.cancel();
                            deadline_tripped = true;
                        }
                    }
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break None,
        }
    };

    let deadline_missed = deadline.is_some_and(|d| started.elapsed() >= d);
    let (response, outcome) = match exec.map(|e| e.outcome) {
        // A cancelled verification is not a solve — never cache it.
        Some(ExecOutcome::Done(Ok(verification))) if verification.was_cancelled() => {
            if deadline_missed {
                (
                    deadline_exceeded_response(shared, key, deadline, started),
                    FlightOutcome::Failed("leader missed its deadline".to_owned()),
                )
            } else {
                let message = "job was cancelled".to_owned();
                (
                    Response::Error {
                        message: message.clone(),
                    },
                    FlightOutcome::Failed(message),
                )
            }
        }
        Some(ExecOutcome::Done(Ok(verification))) => {
            // Degraded results are real (sound) answers for *this*
            // deadline-clipped request, but the cache key promises the
            // default-budget run — never cache them. Flight leaders are
            // deadline-free and thus never degraded, so followers always
            // receive cacheable-grade results.
            if verification.degraded.is_none() {
                let entries = {
                    let mut cache = shared.cache.lock().expect("cache poisoned");
                    cache.insert(key, verification.clone());
                    cache.len()
                };
                CACHE_ENTRIES.set(entries as u64);
            }
            shared
                .stats
                .record_served(started.elapsed(), Disposition::Miss);
            JOBS_SERVED.inc();
            CACHE_MISSES.inc();
            (
                Response::Result {
                    disposition: Disposition::Miss,
                    key_digest: key.digest_hex(),
                    elapsed: started.elapsed(),
                    verification: verification.clone(),
                },
                FlightOutcome::Solved(Box::new(verification)),
            )
        }
        Some(ExecOutcome::Done(Err(error))) => {
            let message = error.to_string();
            (
                Response::Error {
                    message: message.clone(),
                },
                FlightOutcome::Failed(message),
            )
        }
        Some(ExecOutcome::Panicked { message }) => {
            let message = format!("job crashed: {message}");
            (
                Response::Error {
                    message: message.clone(),
                },
                FlightOutcome::Failed(message),
            )
        }
        Some(ExecOutcome::TimedOut) => {
            let message = "job exceeded the server deadline".to_owned();
            (
                Response::Error {
                    message: message.clone(),
                },
                FlightOutcome::Failed(message),
            )
        }
        Some(ExecOutcome::Cancelled) => {
            if deadline_missed {
                (
                    deadline_exceeded_response(shared, key, deadline, started),
                    FlightOutcome::Failed("leader missed its deadline".to_owned()),
                )
            } else {
                let message = "job was cancelled".to_owned();
                (
                    Response::Error {
                        message: message.clone(),
                    },
                    FlightOutcome::Failed(message),
                )
            }
        }
        None => {
            let message = "job was dropped during shutdown".to_owned();
            (
                Response::Error {
                    message: message.clone(),
                },
                FlightOutcome::Failed(message),
            )
        }
    };
    // Resolve the flight *before* answering the leader: every follower
    // gets its terminal line even when the leader's own write fails, and
    // a shutdown drain cannot exit between the leader's answer and the
    // fan-out.
    if has_flight {
        resolve_flight(shared, canonical, &outcome);
    }
    shared.update_lane_gauges();
    if !client_gone {
        let _ = write_response(writer, &response);
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_follower(
    writer: &mut TcpStream,
    shared: &Arc<Shared>,
    canonical: &str,
    id: u64,
    follower_rx: Receiver<FlightOutcome>,
    started: Instant,
    deadline: Option<Duration>,
    job: &JobSpec,
    key: &rob_verify::JobKey,
) {
    let attached = Response::Event {
        state: "coalesced".to_owned(),
        detail: format!("{} key={}", job.label(), key.digest_hex()),
    };
    if write_response(writer, &attached).is_err() {
        // Nobody is listening; detaching may release the flight if the
        // leader's client is gone too.
        detach_follower(shared, canonical, id);
        return;
    }
    loop {
        match follower_rx.recv_timeout(Duration::from_millis(10)) {
            Ok(FlightOutcome::Solved(verification)) => {
                // The follower samples its *own* wall-clock: what this
                // client actually waited, not the leader's solve time.
                shared
                    .stats
                    .record_served(started.elapsed(), Disposition::Coalesced);
                JOBS_SERVED.inc();
                JOBS_COALESCED.inc();
                let _ = write_response(
                    writer,
                    &Response::Result {
                        disposition: Disposition::Coalesced,
                        key_digest: key.digest_hex(),
                        elapsed: started.elapsed(),
                        verification: *verification,
                    },
                );
                return;
            }
            Ok(FlightOutcome::Failed(message)) => {
                let _ = write_response(writer, &Response::Error { message });
                return;
            }
            Err(RecvTimeoutError::Timeout) => {
                if let Some(d) = deadline {
                    if started.elapsed() >= d {
                        // This follower's deadline expired; it detaches
                        // and answers for itself. The flight (and other
                        // followers) are unaffected.
                        detach_follower(shared, canonical, id);
                        let _ = write_response(
                            writer,
                            &deadline_exceeded_response(shared, key, deadline, started),
                        );
                        return;
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // The flight vanished without broadcasting — defensive:
                // resolve_flight always sends before dropping senders.
                let _ = write_response(
                    writer,
                    &Response::Error {
                        message: "coalesced flight collapsed".to_owned(),
                    },
                );
                return;
            }
        }
    }
}

/// Builds the `deadline-exceeded` terminal line and records it.
fn deadline_exceeded_response(
    shared: &Arc<Shared>,
    key: &rob_verify::JobKey,
    deadline: Option<Duration>,
    started: Instant,
) -> Response {
    shared.stats.record_deadline_exceeded();
    DEADLINE_EXCEEDED.inc();
    Response::DeadlineExceeded {
        key_digest: key.digest_hex(),
        deadline_ms: deadline.unwrap_or_default().as_millis() as u64,
        elapsed: started.elapsed(),
    }
}

/// The leader's client disconnected: the flight survives while
/// followers remain; otherwise the job is told to wind down. (A job that
/// finishes anyway — non-cooperative, or already past its last poll —
/// still pays forward into the cache.)
fn leader_client_gone(
    shared: &Arc<Shared>,
    canonical: &str,
    submission: &Submission<PoolResult>,
    has_flight: bool,
) {
    if !has_flight {
        submission.cancel.cancel();
        return;
    }
    let mut flights = shared.flights.lock().expect("flights poisoned");
    // A missing flight already resolved; nothing left to cancel for.
    if let Some(flight) = flights.get_mut(canonical) {
        flight.leader_gone = true;
        if flight.followers.is_empty() {
            submission.cancel.cancel();
        }
    }
}

/// Removes one follower from a flight; the last follower detaching from
/// a leaderless flight cancels the job (nobody is left to answer).
fn detach_follower(shared: &Arc<Shared>, canonical: &str, id: u64) {
    let mut flights = shared.flights.lock().expect("flights poisoned");
    if let Some(flight) = flights.get_mut(canonical) {
        flight.followers.remove(&id);
        if flight.leader_gone && flight.followers.is_empty() {
            flight.cancel.cancel();
        }
    }
}

/// Removes the flight and fans the terminal outcome out to every
/// follower still attached.
fn resolve_flight(shared: &Arc<Shared>, canonical: &str, outcome: &FlightOutcome) {
    let followers = shared
        .flights
        .lock()
        .expect("flights poisoned")
        .remove(canonical)
        .map(|flight| flight.followers);
    if let Some(followers) = followers {
        for follower in followers.into_values() {
            let _ = follower.send(outcome.clone());
        }
    }
}

fn write_response(writer: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    writeln!(writer, "{}", response.to_json())?;
    writer.flush()
}
