//! The content-addressed result cache.
//!
//! Entries are keyed by the exact [`JobKey`] canonical string, so a hit
//! is sound by construction — no hash is trusted for identity. Capacity
//! is bounded with least-recently-used eviction (a monotonic use stamp
//! per entry; eviction scans for the minimum, which is cheap at the
//! configured capacities).
//!
//! # Persistence
//!
//! With a store path configured, the cache can be flushed to a JSONL
//! file — one `{"key", "key_digest", "verification"}` object per line —
//! and replayed on startup. Replay is defensive: lines that fail to
//! parse, records whose stored digest disagrees with the recomputed one,
//! records whose fingerprint (embedded in the canonical key) no longer
//! matches the running build, and torn or non-UTF-8 trailing lines (a
//! crash mid-append) are skipped and counted, never served — a corrupt
//! journal degrades to a cold cache instead of failing startup.
//! Duplicate keys resolve last-wins, so an append-mostly file stays
//! correct; [`ResultCache::flush`] rewrites the file compacted
//! (atomically, via a sibling temp file that is fsynced before the
//! rename, so a crash between the two leaves either the old or the new
//! journal intact) so it does not grow without bound across restarts.

use std::collections::HashMap;
use std::io::{BufRead, BufWriter, Write};
use std::path::{Path, PathBuf};

use campaign::codec;
use campaign::json::{self, Json};
use rob_verify::jobkey::CODE_FINGERPRINT;
use rob_verify::{JobKey, Verification};

struct Entry {
    verification: Verification,
    last_used: u64,
}

/// Counters describing one persisted-store replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records accepted into the cache.
    pub loaded: usize,
    /// Lines rejected (parse failure, digest mismatch, malformed
    /// verification payload).
    pub rejected: usize,
    /// Valid records skipped because their code fingerprint does not
    /// match this build.
    pub stale: usize,
}

/// A bounded, content-addressed map from [`JobKey`] to [`Verification`].
pub struct ResultCache {
    entries: HashMap<String, Entry>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    store: Option<PathBuf>,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` results (clamped to at
    /// least 1), with no persistence.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            store: None,
        }
    }

    /// Attaches a JSONL store and replays it if it exists.
    ///
    /// # Errors
    ///
    /// Fails only on I/O errors reading an existing store; malformed
    /// content is skipped and reported, never fatal.
    pub fn with_store(
        capacity: usize,
        path: impl Into<PathBuf>,
    ) -> std::io::Result<(Self, ReplayReport)> {
        let path = path.into();
        let mut cache = ResultCache::new(capacity);
        let mut report = ReplayReport::default();
        if path.exists() {
            let file = std::fs::File::open(&path)?;
            let mut reader = std::io::BufReader::new(file);
            // Raw byte lines: a torn final append or injected garbage may
            // not be UTF-8, and must degrade to a skipped line, not an
            // I/O error that fails startup.
            let mut raw = Vec::new();
            loop {
                raw.clear();
                match reader.read_until(b'\n', &mut raw) {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(e) => {
                        eprintln!("rob-serve: cache journal read stopped: {e}");
                        break;
                    }
                }
                let Ok(line) = std::str::from_utf8(&raw) else {
                    eprintln!("rob-serve: skipping non-UTF-8 cache journal line");
                    report.rejected += 1;
                    continue;
                };
                if line.trim().is_empty() {
                    continue;
                }
                match decode_record(line) {
                    Ok((key, verification)) => {
                        if key.canonical().contains(CODE_FINGERPRINT) {
                            cache.insert(&key, verification);
                            report.loaded += 1;
                        } else {
                            report.stale += 1;
                        }
                    }
                    Err(reason) => {
                        eprintln!("rob-serve: skipping bad cache journal line: {reason}");
                        report.rejected += 1;
                    }
                }
            }
            // Replay is not traffic: don't let it skew the hit rate.
            cache.hits = 0;
            cache.misses = 0;
        }
        cache.store = Some(path);
        Ok((cache, report))
    }

    /// Looks up a key, counting a hit or a miss.
    pub fn get(&mut self, key: &JobKey) -> Option<Verification> {
        self.clock += 1;
        match self.entries.get_mut(key.canonical()) {
            Some(entry) => {
                entry.last_used = self.clock;
                self.hits += 1;
                Some(entry.verification.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a result, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn insert(&mut self, key: &JobKey, verification: Verification) {
        self.clock += 1;
        if !self.entries.contains_key(key.canonical()) && self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            key.canonical().to_owned(),
            Entry {
                verification,
                last_used: self.clock,
            },
        );
    }

    /// Cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookup hits since startup (replay excluded).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses since startup (replay excluded).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to respect the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// `hits / (hits + misses)`, or 0 with no traffic.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Writes the current contents to the attached store, compacted, via
    /// an atomic temp-file rename. No-op without a store.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn flush(&self) -> std::io::Result<()> {
        let Some(path) = &self.store else {
            return Ok(());
        };
        let tmp = sibling_tmp(path);
        {
            let file = std::fs::File::create(&tmp)?;
            let mut out = BufWriter::new(file);
            // Oldest first, so a later append-only writer still wins.
            let mut ordered: Vec<(&String, &Entry)> = self.entries.iter().collect();
            ordered.sort_by_key(|(_, e)| e.last_used);
            for (canonical, entry) in ordered {
                let key = JobKey::from_canonical(canonical.clone());
                let mut line = encode_record(&key, &entry.verification).into_bytes();
                chaos::mangle("serve.cache.flush-line", &mut line);
                out.write_all(&line)?;
                out.write_all(b"\n")?;
            }
            out.flush()?;
            // Make the bytes durable before the rename publishes them:
            // otherwise a crash can leave a renamed-but-empty journal.
            out.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }
}

fn sibling_tmp(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Encodes one persisted cache record as a single JSON line.
pub fn encode_record(key: &JobKey, verification: &Verification) -> String {
    Json::obj([
        ("key", Json::str(key.canonical())),
        ("key_digest", Json::str(key.digest_hex())),
        ("verification", codec::verification_to_json(verification)),
    ])
    .to_string()
}

/// Decodes one persisted record, validating the stored digest against
/// the recomputed one.
///
/// # Errors
///
/// Returns a description of the first malformed field, or a digest
/// mismatch (a corrupted or hand-edited line).
pub fn decode_record(line: &str) -> Result<(JobKey, Verification), String> {
    let doc = json::parse(line)?;
    let canonical = doc
        .get("key")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing key".to_owned())?;
    let key = JobKey::from_canonical(canonical);
    let stored = doc
        .get("key_digest")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing key_digest".to_owned())?;
    if stored != key.digest_hex() {
        return Err(format!(
            "digest mismatch: stored {stored}, recomputed {}",
            key.digest_hex()
        ));
    }
    let verification = codec::verification_from_json(
        doc.get("verification")
            .ok_or_else(|| "missing verification".to_owned())?,
    )?;
    Ok((key, verification))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rob_verify::{Config, Strategy, Verdict};

    fn key(n: usize) -> JobKey {
        JobKey::derive(
            &Config::new(n, 1).unwrap(),
            Strategy::default(),
            None,
            &rob_verify::Limits::none(),
            &rob_verify::JobBudgets::default(),
            false,
            false,
        )
    }

    fn verified() -> Verification {
        Verification {
            verdict: Verdict::Verified,
            timings: Default::default(),
            stats: Default::default(),
            diagnostics: Vec::new(),
            degraded: None,
        }
    }

    #[test]
    fn hit_miss_accounting_and_lru_eviction() {
        let mut cache = ResultCache::new(2);
        assert!(cache.get(&key(2)).is_none());
        cache.insert(&key(2), verified());
        cache.insert(&key(3), verified());
        assert!(cache.get(&key(2)).is_some(), "freshens key 2");
        cache.insert(&key(4), verified()); // evicts key 3 (LRU)
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&key(3)).is_none(), "key 3 was evicted");
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(4)).is_some());
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 2);
        assert!((cache.hit_rate() - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn records_roundtrip_and_reject_digest_mismatch() {
        let k = key(4);
        let line = encode_record(&k, &verified());
        let (back_key, back) = decode_record(&line).expect("decode");
        assert_eq!(back_key, k);
        assert_eq!(back.verdict, Verdict::Verified);
        let tampered = line.replace(&k.digest_hex(), "0000000000000000");
        assert!(decode_record(&tampered).is_err());
        assert!(decode_record("not json").is_err());
    }

    #[test]
    fn store_replays_last_wins_and_skips_garbage() {
        let dir = std::env::temp_dir().join(format!("rob-serve-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache-replay.jsonl");
        let k = key(4);
        let mut falsified = verified();
        falsified.verdict = Verdict::Falsified { true_vars: vec![] };
        let stale_key = JobKey::from_canonical("fp=0.0.0+s0|rob=4|w=1|…");
        let text = format!(
            "{}\nthis line is garbage\n{}\n{}\n",
            encode_record(&k, &verified()),
            encode_record(&stale_key, &verified()),
            encode_record(&k, &falsified),
        );
        std::fs::write(&path, text).unwrap();
        let (mut cache, report) = ResultCache::with_store(16, &path).unwrap();
        assert_eq!(
            report,
            ReplayReport {
                loaded: 2,
                rejected: 1,
                stale: 1
            }
        );
        assert_eq!(cache.len(), 1, "duplicate key collapses last-wins");
        let got = cache.get(&k).expect("replayed entry");
        assert!(
            matches!(got.verdict, Verdict::Falsified { .. }),
            "last wins"
        );
        assert_eq!(cache.hits(), 1, "replay does not count as traffic");

        // Flush compacts; a fresh replay sees exactly the live entries.
        cache.insert(&key(5), verified());
        cache.flush().unwrap();
        let (cache2, report2) = ResultCache::with_store(16, &path).unwrap();
        assert_eq!(
            report2,
            ReplayReport {
                loaded: 2,
                rejected: 0,
                stale: 0
            }
        );
        assert_eq!(cache2.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_and_non_utf8_trailing_writes_degrade_to_skipped_lines() {
        let dir = std::env::temp_dir().join(format!("rob-serve-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache-torn.jsonl");
        let good = encode_record(&key(4), &verified());
        // A crash mid-append: one intact record, then a record cut off
        // mid-line, then raw non-UTF-8 bytes with no trailing newline.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(good.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(&good.as_bytes()[..good.len() / 2]);
        bytes.push(b'\n');
        bytes.extend_from_slice(b"\xff\xfe{garbage");
        std::fs::write(&path, bytes).unwrap();

        let (mut cache, report) = ResultCache::with_store(16, &path).unwrap();
        assert_eq!(report.loaded, 1, "the intact record replays");
        assert_eq!(report.rejected, 2, "torn + non-UTF-8 lines are skipped");
        assert!(cache.get(&key(4)).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
