//! Server-side statistics: uptime, job counts, and latency percentiles.
//!
//! Latency samples are kept in a bounded reservoir (the most recent
//! [`SAMPLE_CAP`] solved jobs), so a long-lived daemon's percentiles
//! track current behavior and memory stays constant.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use rob_verify::memo::MemoSnapshot;

use crate::proto::{Disposition, StatsSnapshot};

/// Most recent latency samples retained for percentile estimation.
pub const SAMPLE_CAP: usize = 4096;

#[derive(Default)]
struct Inner {
    jobs_served: u64,
    rejected: u64,
    coalesced: u64,
    deadline_exceeded: u64,
    latencies: Vec<Duration>,
    next_slot: usize,
}

/// The pool-side gauges merged into a [`StatsSnapshot`]; the accumulator
/// does not own them.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolView {
    /// Interactive-lane jobs waiting in the admission queue.
    pub queue_interactive: usize,
    /// Bulk-lane jobs waiting in the admission queue.
    pub queue_bulk: usize,
    /// Interactive submissions shed at the admission bound.
    pub shed_interactive: u64,
    /// Bulk submissions shed at the bulk admission ceiling.
    pub shed_bulk: u64,
    /// Jobs currently executing on workers.
    pub active_jobs: usize,
}

/// Thread-safe statistics accumulator shared by connection handlers.
pub struct ServerStats {
    started: Instant,
    inner: Mutex<Inner>,
}

impl ServerStats {
    /// A fresh accumulator; uptime counts from now.
    pub fn new() -> Self {
        ServerStats {
            started: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Records one answered verify request. Cache hits count as served
    /// jobs but do not contribute latency samples — they would drown the
    /// solver percentiles in near-zero readings. Coalesced followers
    /// sample their **own** observed wall-clock (the time this client
    /// actually waited), which can differ from the leader's solve time
    /// when the follower attached mid-flight.
    pub fn record_served(&self, latency: Duration, disposition: Disposition) {
        let mut inner = self.inner.lock().expect("stats poisoned");
        inner.jobs_served += 1;
        match disposition {
            Disposition::Hit => return,
            Disposition::Miss => {}
            Disposition::Coalesced => inner.coalesced += 1,
        }
        if inner.latencies.len() < SAMPLE_CAP {
            inner.latencies.push(latency);
        } else {
            let slot = inner.next_slot;
            inner.latencies[slot] = latency;
            inner.next_slot = (slot + 1) % SAMPLE_CAP;
        }
    }

    /// Records one request shed with `overloaded`.
    pub fn record_rejected(&self) {
        self.inner.lock().expect("stats poisoned").rejected += 1;
    }

    /// Records one request answered with `deadline-exceeded`.
    pub fn record_deadline_exceeded(&self) {
        self.inner.lock().expect("stats poisoned").deadline_exceeded += 1;
    }

    /// Builds the wire snapshot, merging in the cache and pool gauges
    /// the accumulator does not own.
    pub fn snapshot(
        &self,
        cache_hits: u64,
        cache_misses: u64,
        cache_entries: usize,
        cache_evictions: u64,
        pool: PoolView,
        memo: MemoSnapshot,
    ) -> StatsSnapshot {
        let inner = self.inner.lock().expect("stats poisoned");
        let mut sorted = inner.latencies.clone();
        sorted.sort_unstable();
        let lookups = cache_hits + cache_misses;
        StatsSnapshot {
            uptime_secs: self.started.elapsed().as_secs_f64(),
            jobs_served: inner.jobs_served,
            rejected: inner.rejected,
            cache_hits,
            cache_misses,
            hit_rate: if lookups == 0 {
                0.0
            } else {
                cache_hits as f64 / lookups as f64
            },
            cache_entries,
            cache_evictions,
            queue_depth: pool.queue_interactive + pool.queue_bulk,
            queue_interactive: pool.queue_interactive,
            queue_bulk: pool.queue_bulk,
            shed_interactive: pool.shed_interactive,
            shed_bulk: pool.shed_bulk,
            active_jobs: pool.active_jobs,
            coalesced: inner.coalesced,
            deadline_exceeded: inner.deadline_exceeded,
            memo_hits: memo.hits,
            memo_misses: memo.misses,
            memo_hit_rate: memo.hit_rate(),
            memo_entries: memo.entries,
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
        }
    }
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_track_recent_solved_jobs_only() {
        let stats = ServerStats::new();
        for ms in 1..=100u64 {
            stats.record_served(Duration::from_millis(ms), Disposition::Miss);
        }
        // Hits are served but never sampled.
        stats.record_served(Duration::from_nanos(10), Disposition::Hit);
        stats.record_rejected();
        let memo = MemoSnapshot {
            hits: 7,
            misses: 3,
            entries: 4,
            ..Default::default()
        };
        let pool = PoolView {
            queue_interactive: 2,
            queue_bulk: 0,
            shed_interactive: 0,
            shed_bulk: 0,
            active_jobs: 1,
        };
        let snap = stats.snapshot(1, 100, 5, 0, pool, memo);
        assert_eq!(snap.jobs_served, 101);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.p50, Duration::from_millis(50));
        assert_eq!(snap.p95, Duration::from_millis(95));
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.active_jobs, 1);
        assert!((snap.hit_rate - 1.0 / 101.0).abs() < 1e-12);
        assert!(snap.uptime_secs >= 0.0);
        assert_eq!(snap.memo_hits, 7);
        assert_eq!(snap.memo_misses, 3);
        assert_eq!(snap.memo_entries, 4);
        assert!((snap.memo_hit_rate - 0.7).abs() < 1e-12);
    }

    #[test]
    fn coalesced_followers_sample_their_own_latency() {
        let stats = ServerStats::new();
        // One slow leader solve, three fast follower waits: the reservoir
        // must hold all four observations, not one latency copied four
        // times (and not just the leader's).
        stats.record_served(Duration::from_millis(80), Disposition::Miss);
        for _ in 0..3 {
            stats.record_served(Duration::from_millis(2), Disposition::Coalesced);
        }
        let snap = stats.snapshot(0, 1, 1, 0, PoolView::default(), MemoSnapshot::default());
        assert_eq!(snap.jobs_served, 4);
        assert_eq!(snap.coalesced, 3);
        // p50 over [2, 2, 2, 80] is a follower's own wait, proving the
        // followers are sampled individually.
        assert_eq!(snap.p50, Duration::from_millis(2));
        assert_eq!(snap.p95, Duration::from_millis(80));
    }

    #[test]
    fn deadline_exceeded_is_counted() {
        let stats = ServerStats::new();
        stats.record_deadline_exceeded();
        stats.record_deadline_exceeded();
        let snap = stats.snapshot(0, 0, 0, 0, PoolView::default(), MemoSnapshot::default());
        assert_eq!(snap.deadline_exceeded, 2);
        assert_eq!(snap.jobs_served, 0, "deadline misses are not served jobs");
    }

    #[test]
    fn reservoir_is_bounded_and_overwrites_oldest() {
        let stats = ServerStats::new();
        for _ in 0..SAMPLE_CAP {
            stats.record_served(Duration::from_secs(100), Disposition::Miss);
        }
        // A full second lap replaces every old sample.
        for _ in 0..SAMPLE_CAP {
            stats.record_served(Duration::from_millis(1), Disposition::Miss);
        }
        let snap = stats.snapshot(0, 0, 0, 0, PoolView::default(), MemoSnapshot::default());
        assert_eq!(snap.p95, Duration::from_millis(1));
        assert_eq!(stats.inner.lock().unwrap().latencies.len(), SAMPLE_CAP);
    }
}
