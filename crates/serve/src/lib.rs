//! # rob-serve
//!
//! Verification-as-a-service: a long-running daemon (`robd`) that
//! accepts newline-delimited JSON verification requests over TCP,
//! schedules them onto a bounded worker pool, and answers repeat
//! queries from a **content-addressed result cache**.
//!
//! The cache key ([`rob_verify::JobKey`]) covers everything that
//! determines a verification result — configuration, strategy, seeded
//! bug, SAT limits, proof/audit flags, and a code fingerprint — so a hit
//! is sound by construction. With persistence enabled, results survive
//! daemon restarts: the JSONL store is validated and replayed on
//! startup, then rewritten compacted on shutdown.
//!
//! Production behaviors:
//!
//! - **bounded admission**: requests beyond the queue bound are shed
//!   with a structured `overloaded` response instead of queueing
//!   unboundedly;
//! - **graceful drain**: shutdown finishes in-flight and queued jobs,
//!   flushes the cache, and refuses new connections;
//! - **streamed progress**: `verify` responses interleave `queued` /
//!   `started` (or `coalesced`) events before the terminal line;
//! - **single-flight coalescing**: identical in-flight requests share
//!   one solve; followers receive the terminal result as
//!   `cache: coalesced` without occupying a worker;
//! - **deadline propagation**: a `deadline_ms` on `verify` maps onto a
//!   deadline-bearing cancel token chained into the verifier — a
//!   request racing its budget degrades to the PE-only translation or
//!   answers with a structured `deadline-exceeded` line, never a hang;
//! - **priority lanes**: `priority: interactive|bulk` admission with a
//!   bulk ceiling, so overload sheds bulk strictly before interactive;
//! - **saturation-immune health**: a `health` request is answered on
//!   the connection thread even when the pool is full;
//! - **introspection**: a `stats` request reports uptime, jobs served,
//!   cache hit rate, queue depth, and p50/p95 solve latency.
//!
//! The companion `robctl` binary submits jobs, tails events, and
//! pretty-prints stats. The wire protocol is specified in `DESIGN.md`
//! §10 and implemented (both directions) in [`proto`].
//!
//! ```no_run
//! use serve::{Server, ServerConfig};
//!
//! let handle = Server::start(ServerConfig::default())?;
//! println!("serving on {}", handle.addr());
//! handle.join(); // until a client sends `shutdown`
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod proto;
pub mod server;
pub mod stats;

pub use cache::{ReplayReport, ResultCache};
pub use proto::{Disposition, Request, Response, StatsSnapshot, VerifyRequest};
pub use server::{ServeRunner, Server, ServerConfig, ServerHandle};
pub use stats::{PoolView, ServerStats};
