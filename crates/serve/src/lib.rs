//! # rob-serve
//!
//! Verification-as-a-service: a long-running daemon (`robd`) that
//! accepts newline-delimited JSON verification requests over TCP,
//! schedules them onto a bounded worker pool, and answers repeat
//! queries from a **content-addressed result cache**.
//!
//! The cache key ([`rob_verify::JobKey`]) covers everything that
//! determines a verification result — configuration, strategy, seeded
//! bug, SAT limits, proof/audit flags, and a code fingerprint — so a hit
//! is sound by construction. With persistence enabled, results survive
//! daemon restarts: the JSONL store is validated and replayed on
//! startup, then rewritten compacted on shutdown.
//!
//! Production behaviors:
//!
//! - **bounded admission**: requests beyond the queue bound are shed
//!   with a structured `overloaded` response instead of queueing
//!   unboundedly;
//! - **graceful drain**: shutdown finishes in-flight and queued jobs,
//!   flushes the cache, and refuses new connections;
//! - **streamed progress**: `verify` responses interleave `queued` /
//!   `started` events before the terminal line;
//! - **introspection**: a `stats` request reports uptime, jobs served,
//!   cache hit rate, queue depth, and p50/p95 solve latency.
//!
//! The companion `robctl` binary submits jobs, tails events, and
//! pretty-prints stats. The wire protocol is specified in `DESIGN.md`
//! §10 and implemented (both directions) in [`proto`].
//!
//! ```no_run
//! use serve::{Server, ServerConfig};
//!
//! let handle = Server::start(ServerConfig::default())?;
//! println!("serving on {}", handle.addr());
//! handle.join(); // until a client sends `shutdown`
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod proto;
pub mod server;
pub mod stats;

pub use cache::{ReplayReport, ResultCache};
pub use proto::{Request, Response, StatsSnapshot, VerifyRequest};
pub use server::{Server, ServerConfig, ServerHandle};
pub use stats::ServerStats;
