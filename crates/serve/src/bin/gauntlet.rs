//! `gauntlet` — a serve-level chaos soak for `robd`.
//!
//! Starts an in-process daemon with the **real** verification pipeline
//! under armed fault injection (worker panics, stalled request paths, a
//! corrupted cache flush), drives it with a multi-threaded client mix —
//! interactive verifies with known verdicts (including seeded bugs),
//! bulk traffic, deadline storms, a coalescing herd, and mid-stream
//! disconnectors — then drains and checks the SLOs:
//!
//! - **zero wrong verdicts**: a correct design never reads `falsified`,
//!   a seeded bug never reads `verified`, chaos or not;
//! - **zero hung connections**: every request reaches a terminal line
//!   before a generous socket timeout;
//! - **bounded interactive latency**: p99 of the interactive lane stays
//!   under the bound even while bulk traffic is being shed;
//! - **clean drain**: shutdown completes with all clients gone.
//!
//! The run is summarized as a JSON document (default `BENCH_9.json`)
//! and the exit code is nonzero when any SLO is violated, so CI can run
//! a short-budget smoke directly.
//!
//! ```text
//! gauntlet [--budget-secs S] [--seed N] [--workers N] [--out PATH]
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use campaign::json::Json;
use campaign::Priority;
use serve::{Disposition, Request, Response, Server, ServerConfig, StatsSnapshot, VerifyRequest};

/// A client never waits longer than this for one more response line; a
/// request that blows it counts as a hung connection (SLO violation).
const HANG_TIMEOUT: Duration = Duration::from_secs(10);

/// Interactive p99 bound. Generous against solver noise on a loaded CI
/// box, but far below the hang timeout: it documents "interactive stays
/// interactive while bulk is shed and workers panic".
const P99_BOUND: Duration = Duration::from_secs(2);

fn main() -> ExitCode {
    let mut budget = Duration::from_secs_f64(6.0);
    let mut seed = 42u64;
    let mut workers = 4usize;
    let mut out = "BENCH_9.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--budget-secs" => {
                budget =
                    Duration::from_secs_f64(value("--budget-secs").parse().expect("--budget-secs"));
            }
            "--seed" => seed = value("--seed").parse().expect("--seed"),
            "--workers" => workers = value("--workers").parse().expect("--workers"),
            "--out" => out = value("--out"),
            "--help" | "-h" => {
                println!("usage: gauntlet [--budget-secs S] [--seed N] [--workers N] [--out PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("gauntlet: unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Chaos stays armed for the whole soak: the first worker runs panic,
    // every verify entry stalls briefly (so coalescing windows open up),
    // and the shutdown cache flush corrupts a line.
    let guard = chaos::plan(seed)
        .panic_at("serve.worker.run", 3)
        .stall_at("serve.verify", Duration::from_millis(2))
        .corrupt_at("serve.cache.flush-line")
        .arm();

    let persist = std::env::temp_dir().join(format!("rob-gauntlet-{}.jsonl", std::process::id()));
    std::fs::remove_file(&persist).ok();
    let handle = match Server::start(ServerConfig {
        workers,
        queue_limit: 8,
        bulk_queue_limit: 4,
        persist_path: Some(persist.clone()),
        ..ServerConfig::default()
    }) {
        Ok(handle) => handle,
        Err(error) => {
            eprintln!("gauntlet: failed to start the daemon: {error}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.addr();
    println!("gauntlet: daemon on {addr}, budget {budget:?}, seed {seed}");

    let stop = Arc::new(AtomicBool::new(false));
    let (report_tx, report_rx) = mpsc::channel::<Tally>();
    let mut clients = Vec::new();

    // Interactive clients with known-correct configurations.
    for lane in 0..3u64 {
        clients.push(spawn_client(&stop, &report_tx, move |round, tally| {
            let keys = [(2, 1), (4, 1), (4, 2), (8, 1), (8, 2)];
            let (size, width) = keys[(round + lane as usize) % keys.len()];
            let request = VerifyRequest::new(size, width);
            drive(addr, request, tally, Expect::Verified, true);
        }));
    }
    // A client hammering a seeded bug: the daemon must keep saying so.
    clients.push(spawn_client(&stop, &report_tx, move |_round, tally| {
        let mut request = VerifyRequest::new(4, 2);
        request.bug = Some("forwarding-ignores-valid:2:src2".parse().expect("bug spec"));
        drive(addr, request, tally, Expect::Falsified, true);
    }));
    // Bulk traffic: large keys, shed freely under load.
    for lane in 0..2u64 {
        clients.push(spawn_client(&stop, &report_tx, move |round, tally| {
            let keys = [(12, 1), (16, 1), (16, 2), (12, 2)];
            let (size, width) = keys[(round + lane as usize) % keys.len()];
            let mut request = VerifyRequest::new(size, width);
            request.priority = Priority::Bulk;
            drive(addr, request, tally, Expect::Verified, false);
        }));
    }
    // Deadline storm: budgets of 1–5 ms, which queueing alone often
    // blows. Every one of these must still get a terminal line.
    clients.push(spawn_client(&stop, &report_tx, move |round, tally| {
        let keys = [(6, 1), (6, 2), (8, 4)];
        let (size, width) = keys[round % keys.len()];
        let mut request = VerifyRequest::new(size, width);
        request.deadline_ms = Some(1 + (round as u64 % 5));
        drive(addr, request, tally, Expect::Verified, false);
    }));
    // A coalescing herd: four concurrent identical requests per round.
    clients.push(spawn_client(&stop, &report_tx, move |round, tally| {
        let keys = [(16, 4), (12, 4), (16, 2)];
        let (size, width) = keys[round % keys.len()];
        let herd: Vec<_> = (0..4)
            .map(|_| {
                let request = VerifyRequest::new(size, width);
                std::thread::spawn(move || {
                    let mut sub = Tally::default();
                    drive(addr, request, &mut sub, Expect::Verified, false);
                    sub
                })
            })
            .collect();
        for member in herd {
            tally.merge(member.join().expect("herd member"));
        }
    }));
    // A mid-stream disconnector: submits, reads one line, hangs up.
    clients.push(spawn_client(&stop, &report_tx, move |round, tally| {
        let keys = [(8, 2), (4, 2)];
        let (size, width) = keys[round % keys.len()];
        if let Ok(stream) = TcpStream::connect(addr) {
            let _ = stream.set_read_timeout(Some(HANG_TIMEOUT));
            let mut writer = stream.try_clone().expect("clone");
            let request = Request::Verify(VerifyRequest::new(size, width));
            let _ = writeln!(writer, "{}", request.to_json());
            let _ = writer.flush();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
            tally.disconnects += 1;
        }
        std::thread::sleep(Duration::from_millis(20));
    }));
    drop(report_tx);

    std::thread::sleep(budget);
    stop.store(true, Ordering::SeqCst);
    for client in clients {
        client.join().expect("client thread");
    }
    let mut tally = Tally::default();
    while let Ok(part) = report_rx.recv() {
        tally.merge(part);
    }

    let stats = final_stats(addr);

    // Drain. `shutdown` blocks until the daemon fully exits; run it on a
    // watchdogged thread so a drain deadlock fails the gauntlet instead
    // of hanging it.
    let (drained_tx, drained_rx) = mpsc::channel();
    std::thread::spawn(move || {
        handle.shutdown();
        let _ = drained_tx.send(());
    });
    let drain_ok = drained_rx.recv_timeout(Duration::from_secs(30)).is_ok();
    let fired = guard.fired();
    drop(guard);
    std::fs::remove_file(&persist).ok();

    tally.latencies.sort_unstable();
    let p50 = percentile(&tally.latencies, 0.50);
    let p99 = percentile(&tally.latencies, 0.99);

    let mut violations = Vec::new();
    if tally.wrong_verdicts > 0 {
        violations.push(format!("{} wrong verdicts", tally.wrong_verdicts));
    }
    if tally.hung > 0 {
        violations.push(format!("{} hung connections", tally.hung));
    }
    if tally.results == 0 {
        violations.push("no request ever completed".to_owned());
    }
    if p99 > P99_BOUND {
        violations.push(format!("interactive p99 {p99:?} over {P99_BOUND:?}"));
    }
    if !drain_ok {
        violations.push("drain did not complete".to_owned());
    }

    let document = Json::obj([
        ("schema", Json::str("rob-gauntlet/v1")),
        ("seed", seed.into()),
        ("budget_secs", budget.as_secs_f64().into()),
        ("workers", workers.into()),
        ("requests", tally.requests.into()),
        ("results", tally.results.into()),
        ("errors", tally.errors.into()),
        ("overloaded", tally.overloaded.into()),
        ("deadline_exceeded", tally.deadline_exceeded.into()),
        ("coalesced", tally.coalesced.into()),
        ("cache_hits", tally.hits.into()),
        ("disconnects_injected", tally.disconnects.into()),
        ("wrong_verdicts", tally.wrong_verdicts.into()),
        ("hung_connections", tally.hung.into()),
        ("interactive_p50_secs", p50.as_secs_f64().into()),
        ("interactive_p99_secs", p99.as_secs_f64().into()),
        ("faults_fired", (fired.len() as u64).into()),
        (
            "server",
            match &stats {
                Some(s) => Json::obj([
                    ("jobs_served", s.jobs_served.into()),
                    ("coalesced", s.coalesced.into()),
                    ("rejected", s.rejected.into()),
                    ("deadline_exceeded", s.deadline_exceeded.into()),
                    ("shed_interactive", s.shed_interactive.into()),
                    ("shed_bulk", s.shed_bulk.into()),
                ]),
                None => Json::Null,
            },
        ),
        ("drain_ok", drain_ok.into()),
        ("slo_ok", violations.is_empty().into()),
        (
            "violations",
            Json::Arr(violations.iter().map(Json::str).collect()),
        ),
    ]);
    if let Err(error) = std::fs::write(&out, format!("{document}\n")) {
        eprintln!("gauntlet: cannot write {out}: {error}");
        return ExitCode::FAILURE;
    }

    println!(
        "gauntlet: {} requests ({} results, {} errors, {} overloaded, {} deadline-exceeded, \
         {} coalesced, {} hits), {} injected disconnects, {} faults fired",
        tally.requests,
        tally.results,
        tally.errors,
        tally.overloaded,
        tally.deadline_exceeded,
        tally.coalesced,
        tally.hits,
        tally.disconnects,
        fired.len(),
    );
    println!(
        "gauntlet: interactive p50 {:.1}ms p99 {:.1}ms, drain {}",
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
        if drain_ok { "ok" } else { "FAILED" },
    );
    if violations.is_empty() {
        println!("gauntlet: all SLOs met; wrote {out}");
        ExitCode::SUCCESS
    } else {
        for violation in &violations {
            eprintln!("gauntlet: SLO violated: {violation}");
        }
        ExitCode::FAILURE
    }
}

/// What verdict the request's configuration is known to deserve.
#[derive(Clone, Copy)]
enum Expect {
    /// A correct design: `falsified` would be a wrong verdict.
    Verified,
    /// A seeded bug: `verified` would be a wrong verdict.
    Falsified,
}

#[derive(Default)]
struct Tally {
    requests: u64,
    results: u64,
    errors: u64,
    overloaded: u64,
    deadline_exceeded: u64,
    coalesced: u64,
    hits: u64,
    disconnects: u64,
    wrong_verdicts: u64,
    hung: u64,
    /// Interactive-lane request wall-clocks only.
    latencies: Vec<Duration>,
}

impl Tally {
    fn merge(&mut self, other: Tally) {
        self.requests += other.requests;
        self.results += other.results;
        self.errors += other.errors;
        self.overloaded += other.overloaded;
        self.deadline_exceeded += other.deadline_exceeded;
        self.coalesced += other.coalesced;
        self.hits += other.hits;
        self.disconnects += other.disconnects;
        self.wrong_verdicts += other.wrong_verdicts;
        self.hung += other.hung;
        self.latencies.extend(other.latencies);
    }
}

fn spawn_client(
    stop: &Arc<AtomicBool>,
    report: &mpsc::Sender<Tally>,
    mut round_fn: impl FnMut(usize, &mut Tally) + Send + 'static,
) -> std::thread::JoinHandle<()> {
    let stop = Arc::clone(stop);
    let report = report.clone();
    std::thread::spawn(move || {
        let mut tally = Tally::default();
        let mut round = 0usize;
        while !stop.load(Ordering::SeqCst) {
            round_fn(round, &mut tally);
            round += 1;
        }
        let _ = report.send(tally);
    })
}

/// One full verify round-trip, classified into the tally. `sample`
/// marks the interactive clients whose wall-clock feeds the p99 SLO.
fn drive(
    addr: SocketAddr,
    request: VerifyRequest,
    tally: &mut Tally,
    expect: Expect,
    sample: bool,
) {
    tally.requests += 1;
    let started = Instant::now();
    let Ok(stream) = TcpStream::connect(addr) else {
        // The daemon refusing connections entirely would surface as zero
        // completed requests at the end.
        std::thread::sleep(Duration::from_millis(10));
        return;
    };
    let _ = stream.set_read_timeout(Some(HANG_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    if writeln!(writer, "{}", Request::Verify(request).to_json())
        .and_then(|()| writer.flush())
        .is_err()
    {
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                // Closed without a terminal line only happens during the
                // final drain race; not a hang.
                return;
            }
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                tally.hung += 1;
                return;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        let Ok(response) = Response::parse(&line) else {
            tally.errors += 1;
            return;
        };
        match response {
            Response::Event { .. } => continue,
            Response::Result {
                disposition,
                verification,
                ..
            } => {
                tally.results += 1;
                match disposition {
                    Disposition::Hit => tally.hits += 1,
                    Disposition::Coalesced => tally.coalesced += 1,
                    Disposition::Miss => {}
                }
                if sample {
                    tally.latencies.push(started.elapsed());
                }
                let verified = verification.verdict.label() == "verified";
                let wrong = match expect {
                    // A degraded (PE-only) answer is still sound; only a
                    // flat contradiction of the known verdict counts.
                    Expect::Verified => !verified,
                    Expect::Falsified => verified,
                };
                if wrong {
                    tally.wrong_verdicts += 1;
                    eprintln!(
                        "gauntlet: WRONG VERDICT {} for {line}",
                        verification.verdict.label()
                    );
                }
                return;
            }
            Response::DeadlineExceeded { .. } => {
                tally.deadline_exceeded += 1;
                return;
            }
            Response::Overloaded { .. } => {
                tally.overloaded += 1;
                // Shed is the daemon protecting itself; back off a bit.
                std::thread::sleep(Duration::from_millis(5));
                return;
            }
            Response::Error { .. } => {
                // Injected panics and drain-time cancellations land here;
                // contained failures are expected under chaos.
                tally.errors += 1;
                return;
            }
            _ => {
                tally.errors += 1;
                return;
            }
        }
    }
}

fn final_stats(addr: SocketAddr) -> Option<StatsSnapshot> {
    let stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_read_timeout(Some(HANG_TIMEOUT));
    let mut writer = stream.try_clone().ok()?;
    writeln!(writer, "{}", Request::Stats.to_json()).ok()?;
    writer.flush().ok()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    match Response::parse(&line) {
        Ok(Response::Stats(snapshot)) => Some(snapshot),
        _ => None,
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}
