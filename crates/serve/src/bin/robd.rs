//! `robd` — the verification server daemon.
//!
//! ```text
//! robd [--addr HOST:PORT] [--workers N] [--queue N] [--bulk-queue N]
//!      [--timeout-secs S] [--cache N] [--persist PATH]
//! ```
//!
//! Prints `rob-serve listening on <addr>` once ready, then serves until
//! a client sends `shutdown`, draining in-flight work and flushing the
//! cache before exiting 0.

use std::process::ExitCode;
use std::time::Duration;

use serve::{Server, ServerConfig};

fn main() -> ExitCode {
    let mut config = ServerConfig {
        // The library default is an ephemeral port (for tests); the
        // daemon wants a well-known one.
        addr: "127.0.0.1:7421".to_owned(),
        ..ServerConfig::default()
    };
    let mut bulk_queue: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let result = match arg.as_str() {
            "--addr" => take(&mut args, &arg).map(|v| config.addr = v),
            "--workers" => parse(&mut args, &arg).map(|v: usize| config.workers = v.max(1)),
            "--queue" => parse(&mut args, &arg).map(|v| config.queue_limit = v),
            "--bulk-queue" => parse(&mut args, &arg).map(|v| bulk_queue = Some(v)),
            "--timeout-secs" => parse(&mut args, &arg)
                .map(|v: f64| config.timeout = Some(Duration::from_secs_f64(v))),
            "--cache" => parse(&mut args, &arg).map(|v: usize| config.cache_capacity = v.max(1)),
            "--persist" => take(&mut args, &arg).map(|v| config.persist_path = Some(v.into())),
            "--memo-persist" => {
                take(&mut args, &arg).map(|v| config.memo_persist_path = Some(v.into()))
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(message) = result {
            eprintln!("robd: {message}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    }

    // Bulk admission defaults to half the queue so a bulk flood leaves
    // headroom for interactive traffic; an explicit flag overrides.
    config.bulk_queue_limit = bulk_queue
        .unwrap_or(config.queue_limit / 2)
        .min(config.queue_limit);

    // The daemon always collects metrics; the registry is the backing
    // store for the `metrics` request (Prometheus text exposition).
    rob_verify::trace::enable_metrics();

    let handle = match Server::start(config) {
        Ok(handle) => handle,
        Err(error) => {
            eprintln!("robd: failed to start: {error}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(replay) = handle.replay_report() {
        println!(
            "rob-serve cache replay: {} loaded, {} stale, {} rejected",
            replay.loaded, replay.stale, replay.rejected
        );
    }
    if let Some(replay) = handle.memo_replay_report() {
        println!(
            "rob-serve memo replay: {} loaded, {} stale, {} rejected",
            replay.loaded, replay.stale, replay.rejected
        );
    }
    println!("rob-serve listening on {}", handle.addr());
    handle.join();
    println!("rob-serve drained, exiting");
    ExitCode::SUCCESS
}

const USAGE: &str = "\
usage: robd [options]
  --addr HOST:PORT   bind address (default 127.0.0.1:7421; port 0 = ephemeral)
  --workers N        solver worker threads (default: available parallelism)
  --queue N          admission-queue bound; beyond it requests are shed (default 32)
  --bulk-queue N     bulk-lane admission ceiling: bulk-priority requests are
                     shed once total queue occupancy reaches N, so overload
                     sheds bulk strictly before interactive (default queue/2)
  --timeout-secs S   per-job wall-clock deadline (default: none)
  --cache N          result-cache capacity (default 1024)
  --persist PATH     JSONL cache store replayed on startup, flushed on shutdown
  --memo-persist PATH JSONL obligation-memo journal replayed on startup,
                     flushed on shutdown (the in-memory memo store is
                     always on; this persists it across restarts)
";

fn take(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    take(args, flag)?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}
