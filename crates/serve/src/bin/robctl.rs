//! `robctl` — client for the `robd` verification server.
//!
//! ```text
//! robctl [--addr HOST:PORT] [--retries N] [--backoff-ms MS] ping
//! robctl [--addr HOST:PORT] verify --size N --width K [--strategy S]
//!        [--bug SPEC] [--audit] [--check-proofs] [--max-conflicts N]
//!        [--max-seconds S] [--quiet] [--expect-cache hit|miss]
//! robctl [--addr HOST:PORT] stats
//! robctl [--addr HOST:PORT] metrics
//! robctl [--addr HOST:PORT] shutdown
//! ```
//!
//! `verify` tails progress events to stderr and prints the result to
//! stdout. `--expect-cache` makes the exit status assert the cache
//! disposition — the CI smoke test uses it to prove the second identical
//! request is served from the cache.
//!
//! `--retries` grants extra attempts for *transient* failures — a
//! refused/reset connection (daemon restarting) or an `overloaded`
//! rejection (admission queue full) — with capped exponential backoff
//! plus jitter between attempts (`--backoff-ms` sets the base delay).
//! Protocol errors, bad flags, and server-side job failures are terminal
//! and never retried.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use serve::{Request, Response, VerifyRequest};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("robctl: {message}");
            ExitCode::FAILURE
        }
    }
}

/// How one attempt of a command ended, from the retry loop's view.
enum Attempt {
    /// The command finished; exit with this code.
    Success(ExitCode),
    /// The server shed the request; retryable.
    Overloaded { depth: usize, limit: usize },
    /// The connection could not be established; retryable (the daemon
    /// may be restarting or still binding).
    ConnectFailed(String),
    /// Anything else; terminal.
    Failed(String),
}

#[derive(Debug, Clone, Copy)]
struct RetryPolicy {
    retries: u32,
    backoff: Duration,
}

fn run() -> Result<ExitCode, String> {
    let mut addr = "127.0.0.1:7421".to_owned();
    let mut policy = RetryPolicy {
        retries: 0,
        backoff: Duration::from_millis(100),
    };
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let take_value = |args: &mut Vec<String>, flag: &str| -> Result<Option<String>, String> {
        let Some(pos) = args.iter().position(|a| a == flag) else {
            return Ok(None);
        };
        if pos + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    };
    if let Some(value) = take_value(&mut args, "--addr")? {
        addr = value;
    }
    if let Some(value) = take_value(&mut args, "--retries")? {
        policy.retries = parse_flag(&value, "--retries")?;
    }
    if let Some(value) = take_value(&mut args, "--backoff-ms")? {
        policy.backoff = Duration::from_millis(parse_flag(&value, "--backoff-ms")?);
    }
    let Some(command) = args.first().cloned() else {
        print!("{USAGE}");
        return Ok(ExitCode::FAILURE);
    };
    match command.as_str() {
        "ping" => with_retry(policy, || {
            simple(&addr, &Request::Ping, |response| match response {
                Response::Pong => {
                    println!("pong");
                    Ok(ExitCode::SUCCESS)
                }
                other => Err(format!("unexpected response: {other:?}")),
            })
        }),
        "shutdown" => with_retry(policy, || {
            simple(&addr, &Request::Shutdown, |response| match response {
                Response::ShutdownAck => {
                    println!("server draining");
                    Ok(ExitCode::SUCCESS)
                }
                other => Err(format!("unexpected response: {other:?}")),
            })
        }),
        "stats" => with_retry(policy, || {
            simple(&addr, &Request::Stats, |response| match response {
                Response::Stats(s) => {
                    println!("server stats");
                    println!("  uptime          {:>10.1}s", s.uptime_secs);
                    println!("  jobs served     {:>10}", s.jobs_served);
                    println!("  rejected        {:>10}", s.rejected);
                    println!("  cache hits      {:>10}", s.cache_hits);
                    println!("  cache misses    {:>10}", s.cache_misses);
                    println!("  hit rate        {:>9.1}%", s.hit_rate * 100.0);
                    println!("  cache entries   {:>10}", s.cache_entries);
                    println!("  cache evictions {:>10}", s.cache_evictions);
                    println!("  queue depth     {:>10}", s.queue_depth);
                    println!("  active jobs     {:>10}", s.active_jobs);
                    println!("  memo hits       {:>10}", s.memo_hits);
                    println!("  memo misses     {:>10}", s.memo_misses);
                    println!("  memo hit rate   {:>9.1}%", s.memo_hit_rate * 100.0);
                    println!("  memo entries    {:>10}", s.memo_entries);
                    println!("  p50 latency     {:>10.3}s", s.p50.as_secs_f64());
                    println!("  p95 latency     {:>10.3}s", s.p95.as_secs_f64());
                    Ok(ExitCode::SUCCESS)
                }
                other => Err(format!("unexpected response: {other:?}")),
            })
        }),
        "metrics" => with_retry(policy, || {
            simple(&addr, &Request::Metrics, |response| match response {
                Response::Metrics { text } => {
                    print!("{text}");
                    Ok(ExitCode::SUCCESS)
                }
                other => Err(format!("unexpected response: {other:?}")),
            })
        }),
        "verify" => {
            // Flag errors are terminal: parse once, outside the retry
            // loop.
            let (request, quiet, expect_cache) = parse_verify_args(&args[1..])?;
            with_retry(policy, || {
                verify_attempt(&addr, request.clone(), quiet, expect_cache)
            })
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Runs `attempt` up to `1 + policy.retries` times, sleeping with capped
/// exponential backoff plus jitter between retryable failures.
fn with_retry(policy: RetryPolicy, attempt: impl Fn() -> Attempt) -> Result<ExitCode, String> {
    let mut tries = 0u32;
    loop {
        match attempt() {
            Attempt::Success(code) => return Ok(code),
            Attempt::Failed(message) => return Err(message),
            Attempt::Overloaded { depth, limit } => {
                if tries >= policy.retries {
                    eprintln!("server overloaded: {depth} jobs queued (limit {limit}); giving up");
                    return Ok(ExitCode::from(2));
                }
                eprintln!("server overloaded: {depth} jobs queued (limit {limit}); retrying");
            }
            Attempt::ConnectFailed(message) => {
                if tries >= policy.retries {
                    return Err(message);
                }
                eprintln!("{message}; retrying");
            }
        }
        std::thread::sleep(backoff_delay(policy.backoff, tries, jitter_seed()));
        tries += 1;
    }
}

/// Delay before retry number `attempt` (0-based): `base * 2^attempt`,
/// capped at 10 s, then jittered into `[delay/2, delay]` by `seed` so a
/// herd of clients does not re-arrive in lockstep.
fn backoff_delay(base: Duration, attempt: u32, seed: u64) -> Duration {
    const CAP: Duration = Duration::from_secs(10);
    let exp = base.saturating_mul(1u32 << attempt.min(16));
    let capped = exp.min(CAP);
    let nanos = capped.as_nanos() as u64;
    if nanos == 0 {
        return Duration::ZERO;
    }
    Duration::from_nanos(nanos / 2 + seed % (nanos / 2 + 1))
}

fn jitter_seed() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos() as u64)
}

/// One connect-send-receive attempt of a single-response command.
fn simple(
    addr: &str,
    request: &Request,
    render: impl Fn(Response) -> Result<ExitCode, String>,
) -> Attempt {
    let stream = match connect(addr) {
        Ok(stream) => stream,
        Err(message) => return Attempt::ConnectFailed(message),
    };
    match roundtrip_on(stream, request) {
        Ok(Response::Overloaded { depth, limit }) => Attempt::Overloaded { depth, limit },
        Ok(response) => match render(response) {
            Ok(code) => Attempt::Success(code),
            Err(message) => Attempt::Failed(message),
        },
        Err(message) => Attempt::Failed(message),
    }
}

fn parse_verify_args(args: &[String]) -> Result<(VerifyRequest, bool, Option<bool>), String> {
    let mut size: Option<usize> = None;
    let mut width: Option<usize> = None;
    let mut request = VerifyRequest::new(0, 0);
    let mut quiet = false;
    let mut expect_cache: Option<bool> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--size" => size = Some(parse_flag(&value("--size")?, "--size")?),
            "--width" => width = Some(parse_flag(&value("--width")?, "--width")?),
            "--strategy" => {
                request.strategy = value("--strategy")?.parse()?;
            }
            "--bug" => {
                request.bug = Some(value("--bug")?.parse().map_err(|e| format!("--bug: {e}"))?);
            }
            "--max-conflicts" => {
                request.sat_limits.max_conflicts =
                    Some(parse_flag(&value("--max-conflicts")?, "--max-conflicts")?);
            }
            "--max-seconds" => {
                request.sat_limits.max_seconds =
                    Some(parse_flag(&value("--max-seconds")?, "--max-seconds")?);
            }
            "--audit" => request.audit = true,
            "--check-proofs" => request.check_proofs = true,
            "--quiet" => quiet = true,
            "--expect-cache" => {
                expect_cache = Some(match value("--expect-cache")?.as_str() {
                    "hit" => true,
                    "miss" => false,
                    other => {
                        return Err(format!("--expect-cache must be hit or miss, got {other:?}"))
                    }
                });
            }
            other => return Err(format!("unknown verify flag {other:?}")),
        }
    }
    request.rob_size = size.ok_or("--size is required")?;
    request.issue_width = width.ok_or("--width is required")?;
    Ok((request, quiet, expect_cache))
}

fn verify_attempt(
    addr: &str,
    request: VerifyRequest,
    quiet: bool,
    expect_cache: Option<bool>,
) -> Attempt {
    let stream = match connect(addr) {
        Ok(stream) => stream,
        Err(message) => return Attempt::ConnectFailed(message),
    };
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(e) => return Attempt::Failed(e.to_string()),
    };
    if let Err(message) = send(&mut writer, &Request::Verify(request)) {
        return Attempt::Failed(message);
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Attempt::Failed("server closed the connection mid-request".to_owned()),
            Ok(_) => {}
            Err(e) => return Attempt::Failed(format!("read failed: {e}")),
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match Response::parse(&line) {
            Ok(response) => response,
            Err(message) => return Attempt::Failed(message),
        };
        match response {
            Response::Event { state, detail } => {
                if !quiet {
                    eprintln!("[{state}] {detail}");
                }
            }
            Response::Overloaded { depth, limit } => {
                return Attempt::Overloaded { depth, limit };
            }
            Response::Error { message } => return Attempt::Failed(message),
            Response::Result {
                cache_hit,
                key_digest,
                elapsed,
                verification,
            } => {
                let cache = if cache_hit { "hit" } else { "miss" };
                println!(
                    "verdict: {}  cache: {cache}  key: {key_digest}  elapsed: {:.3}s",
                    verification.verdict.label(),
                    elapsed.as_secs_f64(),
                );
                if !verification.diagnostics.is_empty() {
                    println!("diagnostics: {}", verification.diagnostics.len());
                }
                if let Some(expected_hit) = expect_cache {
                    if cache_hit != expected_hit {
                        eprintln!(
                            "expected cache {}, got {cache}",
                            if expected_hit { "hit" } else { "miss" },
                        );
                        return Attempt::Success(ExitCode::FAILURE);
                    }
                }
                return Attempt::Success(ExitCode::SUCCESS);
            }
            other => return Attempt::Failed(format!("unexpected response: {other:?}")),
        }
    }
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))
}

fn send(writer: &mut TcpStream, request: &Request) -> Result<(), String> {
    writeln!(writer, "{}", request.to_json()).map_err(|e| format!("write failed: {e}"))?;
    writer.flush().map_err(|e| format!("flush failed: {e}"))
}

fn roundtrip_on(stream: TcpStream, request: &Request) -> Result<Response, String> {
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    send(&mut writer, request)?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Err("server closed the connection".to_owned()),
            Ok(_) => {}
            Err(e) => return Err(format!("read failed: {e}")),
        }
        if !line.trim().is_empty() {
            return Response::parse(&line);
        }
    }
}

fn parse_flag<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value.parse().map_err(|e| format!("{flag}: {e}"))
}

const USAGE: &str = "\
usage: robctl [--addr HOST:PORT] [--retries N] [--backoff-ms MS] <command>
  --retries N      extra attempts for transient failures (connection
                   refused/reset, overloaded rejection); default 0
  --backoff-ms MS  base delay between attempts; doubles per retry,
                   capped at 10s, jittered; default 100
commands:
  ping                         liveness probe
  verify --size N --width K    verify one configuration
         [--strategy pe-only|rewrite+pe] [--bug SPEC]
         [--max-conflicts N] [--max-seconds S]
         [--audit] [--check-proofs] [--quiet]
         [--expect-cache hit|miss]   fail unless the cache agreed
  stats                        server statistics
  metrics                      metrics registry (Prometheus text exposition)
  shutdown                     drain and stop the server
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let base = Duration::from_millis(100);
        // Zero jitter seed pins the delay to the lower bound: delay/2.
        assert_eq!(backoff_delay(base, 0, 0), Duration::from_millis(50));
        assert_eq!(backoff_delay(base, 1, 0), Duration::from_millis(100));
        assert_eq!(backoff_delay(base, 2, 0), Duration::from_millis(200));
        // Far past the cap: 100ms * 2^20 >> 10s, so the cap holds.
        assert_eq!(backoff_delay(base, 20, 0), Duration::from_secs(5));
        assert!(backoff_delay(base, 20, u64::MAX) <= Duration::from_secs(10));
    }

    #[test]
    fn jitter_stays_within_half_to_full_delay() {
        let base = Duration::from_millis(200);
        for seed in [0u64, 1, 999, u64::MAX] {
            let d = backoff_delay(base, 0, seed);
            assert!(d >= Duration::from_millis(100), "{d:?}");
            assert!(d <= Duration::from_millis(200), "{d:?}");
        }
    }

    #[test]
    fn zero_base_never_sleeps() {
        assert_eq!(backoff_delay(Duration::ZERO, 5, 12345), Duration::ZERO);
    }
}
