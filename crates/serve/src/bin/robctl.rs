//! `robctl` — client for the `robd` verification server.
//!
//! ```text
//! robctl [--addr HOST:PORT] [--retries N] [--backoff-ms MS]
//!        [--breaker-threshold N] [--breaker-cooldown-ms MS]
//!        [--jitter-seed N] ping
//! robctl [--addr HOST:PORT] verify --size N --width K [--strategy S]
//!        [--bug SPEC] [--audit] [--check-proofs] [--max-conflicts N]
//!        [--max-seconds S] [--deadline-ms MS] [--priority interactive|bulk]
//!        [--quiet] [--expect-cache hit|miss|coalesced]
//! robctl [--addr HOST:PORT] stats
//! robctl [--addr HOST:PORT] metrics
//! robctl [--addr HOST:PORT] health
//! robctl [--addr HOST:PORT] shutdown
//! ```
//!
//! `verify` tails progress events to stderr and prints the result to
//! stdout. `--expect-cache` makes the exit status assert the cache
//! disposition — the CI smoke test uses it to prove the second identical
//! request is served from the cache (or coalesced onto a running one).
//!
//! `--retries` grants extra attempts for *transient* failures — a
//! refused/reset connection (daemon restarting) or an `overloaded`
//! rejection (admission queue full) — with capped exponential backoff
//! plus **decorrelated jitter** between attempts (`--backoff-ms` sets
//! the base delay): each delay is drawn uniformly from `[base, 3 ×
//! previous]`, capped at 10 s, so a herd of shed clients spreads out
//! instead of re-arriving in lockstep. Protocol errors, bad flags, and
//! server-side job failures are terminal and never retried.
//!
//! A small **circuit breaker** sits under the retry loop: after
//! `--breaker-threshold` consecutive transient failures it opens, sleeps
//! the `--breaker-cooldown-ms` window, then lets exactly one half-open
//! probe through; a probe failure re-opens it. This keeps a wedged
//! daemon from being hammered by the full retry budget at backoff speed.
//!
//! `health` is answered by the daemon even when its admission queue is
//! saturated, so probes can distinguish *overloaded* (exit 2) from
//! *dead* (exit 1); `deadline-exceeded` verify answers exit 3.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use campaign::Priority;
use serve::{Disposition, Request, Response, VerifyRequest};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("robctl: {message}");
            ExitCode::FAILURE
        }
    }
}

/// How one attempt of a command ended, from the retry loop's view.
enum Attempt {
    /// The command finished; exit with this code.
    Success(ExitCode),
    /// The server shed the request; retryable.
    Overloaded {
        depth: usize,
        limit: usize,
        lane: Priority,
    },
    /// The connection could not be established; retryable (the daemon
    /// may be restarting or still binding).
    ConnectFailed(String),
    /// Anything else; terminal.
    Failed(String),
}

#[derive(Debug, Clone, Copy)]
struct RetryPolicy {
    retries: u32,
    backoff: Duration,
    breaker_threshold: u32,
    breaker_cooldown: Duration,
    jitter_seed: u64,
}

fn run() -> Result<ExitCode, String> {
    let mut addr = "127.0.0.1:7421".to_owned();
    let mut policy = RetryPolicy {
        retries: 0,
        backoff: Duration::from_millis(100),
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(1000),
        jitter_seed: jitter_seed(),
    };
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let take_value = |args: &mut Vec<String>, flag: &str| -> Result<Option<String>, String> {
        let Some(pos) = args.iter().position(|a| a == flag) else {
            return Ok(None);
        };
        if pos + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    };
    if let Some(value) = take_value(&mut args, "--addr")? {
        addr = value;
    }
    if let Some(value) = take_value(&mut args, "--retries")? {
        policy.retries = parse_flag(&value, "--retries")?;
    }
    if let Some(value) = take_value(&mut args, "--backoff-ms")? {
        policy.backoff = Duration::from_millis(parse_flag(&value, "--backoff-ms")?);
    }
    if let Some(value) = take_value(&mut args, "--breaker-threshold")? {
        policy.breaker_threshold = parse_flag(&value, "--breaker-threshold")?;
    }
    if let Some(value) = take_value(&mut args, "--breaker-cooldown-ms")? {
        policy.breaker_cooldown =
            Duration::from_millis(parse_flag(&value, "--breaker-cooldown-ms")?);
    }
    if let Some(value) = take_value(&mut args, "--jitter-seed")? {
        policy.jitter_seed = parse_flag(&value, "--jitter-seed")?;
    }
    let Some(command) = args.first().cloned() else {
        print!("{USAGE}");
        return Ok(ExitCode::FAILURE);
    };
    match command.as_str() {
        "ping" => with_retry(policy, || {
            simple(&addr, &Request::Ping, |response| match response {
                Response::Pong => {
                    println!("pong");
                    Ok(ExitCode::SUCCESS)
                }
                other => Err(format!("unexpected response: {other:?}")),
            })
        }),
        "shutdown" => with_retry(policy, || {
            simple(&addr, &Request::Shutdown, |response| match response {
                Response::ShutdownAck => {
                    println!("server draining");
                    Ok(ExitCode::SUCCESS)
                }
                other => Err(format!("unexpected response: {other:?}")),
            })
        }),
        "health" => health(&addr),
        "stats" => with_retry(policy, || {
            simple(&addr, &Request::Stats, |response| match response {
                Response::Stats(s) => {
                    println!("server stats");
                    println!("  uptime          {:>10.1}s", s.uptime_secs);
                    println!("  jobs served     {:>10}", s.jobs_served);
                    println!("  coalesced       {:>10}", s.coalesced);
                    println!("  rejected        {:>10}", s.rejected);
                    println!("  deadline missed {:>10}", s.deadline_exceeded);
                    println!("  cache hits      {:>10}", s.cache_hits);
                    println!("  cache misses    {:>10}", s.cache_misses);
                    println!("  hit rate        {:>9.1}%", s.hit_rate * 100.0);
                    println!("  cache entries   {:>10}", s.cache_entries);
                    println!("  cache evictions {:>10}", s.cache_evictions);
                    println!(
                        "  queue depth     {:>10}  ({} interactive, {} bulk)",
                        s.queue_depth, s.queue_interactive, s.queue_bulk
                    );
                    println!(
                        "  shed            {:>10}  ({} interactive, {} bulk)",
                        s.shed_interactive + s.shed_bulk,
                        s.shed_interactive,
                        s.shed_bulk
                    );
                    println!("  active jobs     {:>10}", s.active_jobs);
                    println!("  memo hits       {:>10}", s.memo_hits);
                    println!("  memo misses     {:>10}", s.memo_misses);
                    println!("  memo hit rate   {:>9.1}%", s.memo_hit_rate * 100.0);
                    println!("  memo entries    {:>10}", s.memo_entries);
                    println!("  p50 latency     {:>10.3}s", s.p50.as_secs_f64());
                    println!("  p95 latency     {:>10.3}s", s.p95.as_secs_f64());
                    Ok(ExitCode::SUCCESS)
                }
                other => Err(format!("unexpected response: {other:?}")),
            })
        }),
        "metrics" => with_retry(policy, || {
            simple(&addr, &Request::Metrics, |response| match response {
                Response::Metrics { text } => {
                    print!("{text}");
                    Ok(ExitCode::SUCCESS)
                }
                other => Err(format!("unexpected response: {other:?}")),
            })
        }),
        "verify" => {
            // Flag errors are terminal: parse once, outside the retry
            // loop.
            let (request, quiet, expect_cache) = parse_verify_args(&args[1..])?;
            with_retry(policy, || {
                verify_attempt(&addr, request.clone(), quiet, expect_cache)
            })
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// The `health` command: one attempt, no retry — the whole point is to
/// report what the daemon looks like *right now*. Exit 0 when healthy,
/// 2 when alive but overloaded/draining, 1 when unreachable (dead).
fn health(addr: &str) -> Result<ExitCode, String> {
    let stream = match connect(addr) {
        Ok(stream) => stream,
        Err(message) => {
            eprintln!("dead: {message}");
            return Ok(ExitCode::FAILURE);
        }
    };
    match roundtrip_on(stream, &Request::Health)? {
        Response::Health {
            status,
            queue_interactive,
            queue_bulk,
            queue_limit,
            active_jobs,
        } => {
            println!(
                "{status}: queue {}/{queue_limit} ({queue_interactive} interactive, \
                 {queue_bulk} bulk), {active_jobs} active",
                queue_interactive + queue_bulk
            );
            Ok(if status == "ok" {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            })
        }
        other => Err(format!("unexpected response: {other:?}")),
    }
}

/// Circuit-breaker state: `Closed` lets attempts flow, `Open` blocks
/// them for a cooldown, `HalfOpen` admits a single probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// A minimal consecutive-failure circuit breaker. `threshold == 0`
/// disables it (the breaker never opens).
#[derive(Debug)]
struct Breaker {
    threshold: u32,
    consecutive: u32,
    state: BreakerState,
}

impl Breaker {
    fn new(threshold: u32) -> Self {
        Breaker {
            threshold,
            consecutive: 0,
            state: BreakerState::Closed,
        }
    }

    fn is_open(&self) -> bool {
        self.state == BreakerState::Open
    }

    /// The cooldown elapsed: admit one probe.
    fn begin_probe(&mut self) {
        if self.state == BreakerState::Open {
            self.state = BreakerState::HalfOpen;
        }
    }

    /// A transient failure; in `HalfOpen` this re-opens immediately.
    fn record_failure(&mut self) {
        self.consecutive += 1;
        if self.threshold > 0 && self.consecutive >= self.threshold {
            self.state = BreakerState::Open;
        }
    }

    /// A successful attempt fully closes the breaker.
    fn record_success(&mut self) {
        self.consecutive = 0;
        self.state = BreakerState::Closed;
    }
}

/// Runs `attempt` up to `1 + policy.retries` times, sleeping with capped
/// exponential backoff plus decorrelated jitter between retryable
/// failures; the circuit breaker swaps the jittered sleep for its
/// cooldown once it trips.
fn with_retry(policy: RetryPolicy, attempt: impl Fn() -> Attempt) -> Result<ExitCode, String> {
    let mut tries = 0u32;
    let mut backoff = Backoff::new(policy.backoff, Duration::from_secs(10), policy.jitter_seed);
    let mut breaker = Breaker::new(policy.breaker_threshold);
    loop {
        breaker.begin_probe();
        match attempt() {
            Attempt::Success(code) => {
                breaker.record_success();
                return Ok(code);
            }
            Attempt::Failed(message) => return Err(message),
            Attempt::Overloaded { depth, limit, lane } => {
                breaker.record_failure();
                if tries >= policy.retries {
                    eprintln!(
                        "server overloaded: {depth} jobs queued \
                         (limit {limit}, lane {lane}); giving up"
                    );
                    return Ok(ExitCode::from(2));
                }
                eprintln!(
                    "server overloaded: {depth} jobs queued (limit {limit}, lane {lane}); retrying"
                );
            }
            Attempt::ConnectFailed(message) => {
                breaker.record_failure();
                if tries >= policy.retries {
                    return Err(message);
                }
                eprintln!("{message}; retrying");
            }
        }
        if breaker.is_open() {
            eprintln!(
                "circuit breaker open after {} consecutive failures; cooling down {}ms",
                breaker.consecutive,
                policy.breaker_cooldown.as_millis()
            );
            std::thread::sleep(policy.breaker_cooldown);
        } else {
            std::thread::sleep(backoff.next_delay());
        }
        tries += 1;
    }
}

/// Tiny xorshift64 PRNG — deterministic under a seed so the jitter
/// bounds are unit-testable; zero seeds are bumped to keep the state
/// nonzero.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Capped exponential backoff with decorrelated jitter: each delay is
/// drawn uniformly from `[base, min(cap, 3 × previous)]`. Unlike
/// full-jitter-on-a-doubling-schedule, consecutive draws are coupled
/// only through the previous *actual* sleep, which provably spreads a
/// synchronized herd of clients apart over successive rounds.
struct Backoff {
    base: Duration,
    cap: Duration,
    prev: Duration,
    rng: XorShift64,
}

impl Backoff {
    fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Backoff {
            base,
            cap,
            prev: base,
            rng: XorShift64::new(seed),
        }
    }

    fn next_delay(&mut self) -> Duration {
        let base = self.base.as_nanos() as u64;
        if base == 0 {
            return Duration::ZERO;
        }
        let cap = self.cap.as_nanos() as u64;
        let hi = (self.prev.as_nanos() as u64)
            .saturating_mul(3)
            .min(cap)
            .max(base);
        let span = hi - base;
        let drawn = base
            + if span == 0 {
                0
            } else {
                self.rng.next() % (span + 1)
            };
        self.prev = Duration::from_nanos(drawn);
        self.prev
    }
}

fn jitter_seed() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos() as u64)
}

/// One connect-send-receive attempt of a single-response command.
fn simple(
    addr: &str,
    request: &Request,
    render: impl Fn(Response) -> Result<ExitCode, String>,
) -> Attempt {
    let stream = match connect(addr) {
        Ok(stream) => stream,
        Err(message) => return Attempt::ConnectFailed(message),
    };
    match roundtrip_on(stream, request) {
        Ok(Response::Overloaded { depth, limit, lane }) => {
            Attempt::Overloaded { depth, limit, lane }
        }
        Ok(response) => match render(response) {
            Ok(code) => Attempt::Success(code),
            Err(message) => Attempt::Failed(message),
        },
        Err(message) => Attempt::Failed(message),
    }
}

fn parse_verify_args(
    args: &[String],
) -> Result<(VerifyRequest, bool, Option<Disposition>), String> {
    let mut size: Option<usize> = None;
    let mut width: Option<usize> = None;
    let mut request = VerifyRequest::new(0, 0);
    let mut quiet = false;
    let mut expect_cache: Option<Disposition> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--size" => size = Some(parse_flag(&value("--size")?, "--size")?),
            "--width" => width = Some(parse_flag(&value("--width")?, "--width")?),
            "--strategy" => {
                request.strategy = value("--strategy")?.parse()?;
            }
            "--bug" => {
                request.bug = Some(value("--bug")?.parse().map_err(|e| format!("--bug: {e}"))?);
            }
            "--max-conflicts" => {
                request.sat_limits.max_conflicts =
                    Some(parse_flag(&value("--max-conflicts")?, "--max-conflicts")?);
            }
            "--max-seconds" => {
                request.sat_limits.max_seconds =
                    Some(parse_flag(&value("--max-seconds")?, "--max-seconds")?);
            }
            "--deadline-ms" => {
                request.deadline_ms = Some(parse_flag(&value("--deadline-ms")?, "--deadline-ms")?);
            }
            "--priority" => {
                let lane = value("--priority")?;
                request.priority = Priority::from_label(&lane).ok_or_else(|| {
                    format!("--priority must be interactive or bulk, got {lane:?}")
                })?;
            }
            "--audit" => request.audit = true,
            "--check-proofs" => request.check_proofs = true,
            "--quiet" => quiet = true,
            "--expect-cache" => {
                let expectation = value("--expect-cache")?;
                expect_cache = Some(Disposition::from_label(&expectation).ok_or_else(|| {
                    format!("--expect-cache must be hit, miss, or coalesced, got {expectation:?}")
                })?);
            }
            other => return Err(format!("unknown verify flag {other:?}")),
        }
    }
    request.rob_size = size.ok_or("--size is required")?;
    request.issue_width = width.ok_or("--width is required")?;
    Ok((request, quiet, expect_cache))
}

fn verify_attempt(
    addr: &str,
    request: VerifyRequest,
    quiet: bool,
    expect_cache: Option<Disposition>,
) -> Attempt {
    let stream = match connect(addr) {
        Ok(stream) => stream,
        Err(message) => return Attempt::ConnectFailed(message),
    };
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(e) => return Attempt::Failed(e.to_string()),
    };
    if let Err(message) = send(&mut writer, &Request::Verify(request)) {
        return Attempt::Failed(message);
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Attempt::Failed("server closed the connection mid-request".to_owned()),
            Ok(_) => {}
            Err(e) => return Attempt::Failed(format!("read failed: {e}")),
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match Response::parse(&line) {
            Ok(response) => response,
            Err(message) => return Attempt::Failed(message),
        };
        match response {
            Response::Event { state, detail } => {
                if !quiet {
                    eprintln!("[{state}] {detail}");
                }
            }
            Response::Overloaded { depth, limit, lane } => {
                return Attempt::Overloaded { depth, limit, lane };
            }
            Response::Error { message } => return Attempt::Failed(message),
            Response::DeadlineExceeded {
                key_digest,
                deadline_ms,
                elapsed,
            } => {
                // A structured answer, not a transport failure: the
                // deadline was the client's own budget, so this is
                // terminal (retrying would blow it again).
                println!(
                    "deadline-exceeded: {deadline_ms}ms budget, \
                     {:.3}s elapsed  key: {key_digest}",
                    elapsed.as_secs_f64()
                );
                return Attempt::Success(ExitCode::from(3));
            }
            Response::Result {
                disposition,
                key_digest,
                elapsed,
                verification,
            } => {
                let cache = disposition.label();
                println!(
                    "verdict: {}  cache: {cache}  key: {key_digest}  elapsed: {:.3}s",
                    verification.verdict.label(),
                    elapsed.as_secs_f64(),
                );
                if let Some(degraded) = &verification.degraded {
                    eprintln!("degraded: {degraded:?}");
                }
                if !verification.diagnostics.is_empty() {
                    println!("diagnostics: {}", verification.diagnostics.len());
                }
                if let Some(expected) = expect_cache {
                    if disposition != expected {
                        eprintln!("expected cache {}, got {cache}", expected.label());
                        return Attempt::Success(ExitCode::FAILURE);
                    }
                }
                return Attempt::Success(ExitCode::SUCCESS);
            }
            other => return Attempt::Failed(format!("unexpected response: {other:?}")),
        }
    }
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))
}

fn send(writer: &mut TcpStream, request: &Request) -> Result<(), String> {
    writeln!(writer, "{}", request.to_json()).map_err(|e| format!("write failed: {e}"))?;
    writer.flush().map_err(|e| format!("flush failed: {e}"))
}

fn roundtrip_on(stream: TcpStream, request: &Request) -> Result<Response, String> {
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    send(&mut writer, request)?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Err("server closed the connection".to_owned()),
            Ok(_) => {}
            Err(e) => return Err(format!("read failed: {e}")),
        }
        if !line.trim().is_empty() {
            return Response::parse(&line);
        }
    }
}

fn parse_flag<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value.parse().map_err(|e| format!("{flag}: {e}"))
}

const USAGE: &str = "\
usage: robctl [--addr HOST:PORT] [--retries N] [--backoff-ms MS]
              [--breaker-threshold N] [--breaker-cooldown-ms MS]
              [--jitter-seed N] <command>
  --retries N             extra attempts for transient failures (connection
                          refused/reset, overloaded rejection); default 0
  --backoff-ms MS         base delay between attempts; decorrelated jitter
                          in [base, 3 x previous], capped at 10s; default 100
  --breaker-threshold N   consecutive transient failures before the circuit
                          breaker opens (0 disables); default 3
  --breaker-cooldown-ms MS  how long an open breaker waits before its
                          half-open probe; default 1000
  --jitter-seed N         pin the jitter RNG (reproducible runs)
commands:
  ping                         liveness probe
  verify --size N --width K    verify one configuration
         [--strategy pe-only|rewrite+pe] [--bug SPEC]
         [--max-conflicts N] [--max-seconds S]
         [--deadline-ms MS]          per-request wall-clock budget
         [--priority interactive|bulk]  admission lane (default interactive)
         [--audit] [--check-proofs] [--quiet]
         [--expect-cache hit|miss|coalesced]  fail unless the cache agreed
  stats                        server statistics
  metrics                      metrics registry (Prometheus text exposition)
  health                       saturation-immune probe: exit 0 ok,
                               2 overloaded/draining, 1 dead
  shutdown                     drain and stop the server
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decorrelated_jitter_stays_within_bounds() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(10);
        for seed in [1u64, 7, 999, u64::MAX] {
            let mut backoff = Backoff::new(base, cap, seed);
            let mut prev = base;
            for round in 0..50 {
                let d = backoff.next_delay();
                assert!(d >= base, "round {round} seed {seed}: {d:?} below base");
                let hi = prev.saturating_mul(3).min(cap).max(base);
                assert!(d <= hi, "round {round} seed {seed}: {d:?} above {hi:?}");
                assert!(d <= cap, "round {round} seed {seed}: {d:?} above cap");
                prev = d;
            }
        }
    }

    #[test]
    fn decorrelated_jitter_is_deterministic_under_a_seed() {
        let draw = |seed: u64| -> Vec<Duration> {
            let mut backoff =
                Backoff::new(Duration::from_millis(50), Duration::from_secs(10), seed);
            (0..10).map(|_| backoff.next_delay()).collect()
        };
        assert_eq!(draw(42), draw(42), "same seed, same schedule");
        assert_ne!(draw(42), draw(43), "different seeds decorrelate");
    }

    #[test]
    fn decorrelated_jitter_escapes_lockstep() {
        // Two clients shed at the same instant with different seeds must
        // not share a single delay in their schedules (this is the whole
        // point versus deterministic doubling).
        let mut a = Backoff::new(Duration::from_millis(100), Duration::from_secs(10), 1);
        let mut b = Backoff::new(Duration::from_millis(100), Duration::from_secs(10), 2);
        let collisions = (0..20).filter(|_| a.next_delay() == b.next_delay()).count();
        assert_eq!(collisions, 0, "seeded schedules must diverge");
    }

    #[test]
    fn zero_base_never_sleeps() {
        let mut backoff = Backoff::new(Duration::ZERO, Duration::from_secs(10), 12345);
        for _ in 0..5 {
            assert_eq!(backoff.next_delay(), Duration::ZERO);
        }
    }

    #[test]
    fn jitter_caps_at_ten_seconds() {
        let mut backoff = Backoff::new(Duration::from_secs(9), Duration::from_secs(10), 7);
        for _ in 0..10 {
            assert!(backoff.next_delay() <= Duration::from_secs(10));
        }
    }

    #[test]
    fn breaker_opens_on_consecutive_failures_and_probes_half_open() {
        let mut breaker = Breaker::new(3);
        assert!(!breaker.is_open());
        breaker.record_failure();
        breaker.record_failure();
        assert!(!breaker.is_open(), "below threshold stays closed");
        breaker.record_failure();
        assert!(breaker.is_open(), "threshold consecutive failures open it");
        breaker.begin_probe();
        assert!(!breaker.is_open(), "cooldown admits a half-open probe");
        assert_eq!(breaker.state, BreakerState::HalfOpen);
        breaker.record_failure();
        assert!(breaker.is_open(), "a failed probe re-opens immediately");
        breaker.begin_probe();
        breaker.record_success();
        assert_eq!(breaker.state, BreakerState::Closed);
        assert_eq!(breaker.consecutive, 0, "success resets the streak");
    }

    #[test]
    fn breaker_success_interrupts_the_streak() {
        let mut breaker = Breaker::new(2);
        breaker.record_failure();
        breaker.record_success();
        breaker.record_failure();
        assert!(!breaker.is_open(), "non-consecutive failures never open");
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let mut breaker = Breaker::new(0);
        for _ in 0..100 {
            breaker.record_failure();
        }
        assert!(!breaker.is_open());
    }
}
