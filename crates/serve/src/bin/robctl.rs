//! `robctl` — client for the `robd` verification server.
//!
//! ```text
//! robctl [--addr HOST:PORT] ping
//! robctl [--addr HOST:PORT] verify --size N --width K [--strategy S]
//!        [--bug SPEC] [--audit] [--check-proofs] [--max-conflicts N]
//!        [--max-seconds S] [--quiet] [--expect-cache hit|miss]
//! robctl [--addr HOST:PORT] stats
//! robctl [--addr HOST:PORT] shutdown
//! ```
//!
//! `verify` tails progress events to stderr and prints the result to
//! stdout. `--expect-cache` makes the exit status assert the cache
//! disposition — the CI smoke test uses it to prove the second identical
//! request is served from the cache.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use serve::{Request, Response, VerifyRequest};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("robctl: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut addr = "127.0.0.1:7421".to_owned();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--addr") {
        if pos + 1 >= args.len() {
            return Err("--addr needs a value".to_owned());
        }
        addr = args.remove(pos + 1);
        args.remove(pos);
    }
    let Some(command) = args.first().cloned() else {
        print!("{USAGE}");
        return Ok(ExitCode::FAILURE);
    };
    match command.as_str() {
        "ping" => match roundtrip(&addr, &Request::Ping)? {
            Response::Pong => {
                println!("pong");
                Ok(ExitCode::SUCCESS)
            }
            other => Err(format!("unexpected response: {other:?}")),
        },
        "shutdown" => match roundtrip(&addr, &Request::Shutdown)? {
            Response::ShutdownAck => {
                println!("server draining");
                Ok(ExitCode::SUCCESS)
            }
            other => Err(format!("unexpected response: {other:?}")),
        },
        "stats" => match roundtrip(&addr, &Request::Stats)? {
            Response::Stats(s) => {
                println!("server stats");
                println!("  uptime          {:>10.1}s", s.uptime_secs);
                println!("  jobs served     {:>10}", s.jobs_served);
                println!("  rejected        {:>10}", s.rejected);
                println!("  cache hits      {:>10}", s.cache_hits);
                println!("  cache misses    {:>10}", s.cache_misses);
                println!("  hit rate        {:>9.1}%", s.hit_rate * 100.0);
                println!("  cache entries   {:>10}", s.cache_entries);
                println!("  cache evictions {:>10}", s.cache_evictions);
                println!("  queue depth     {:>10}", s.queue_depth);
                println!("  active jobs     {:>10}", s.active_jobs);
                println!("  p50 latency     {:>10.3}s", s.p50.as_secs_f64());
                println!("  p95 latency     {:>10.3}s", s.p95.as_secs_f64());
                Ok(ExitCode::SUCCESS)
            }
            other => Err(format!("unexpected response: {other:?}")),
        },
        "verify" => verify(&addr, &args[1..]),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn verify(addr: &str, args: &[String]) -> Result<ExitCode, String> {
    let mut size: Option<usize> = None;
    let mut width: Option<usize> = None;
    let mut request = VerifyRequest::new(0, 0);
    let mut quiet = false;
    let mut expect_cache: Option<bool> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--size" => size = Some(parse_flag(&value("--size")?, "--size")?),
            "--width" => width = Some(parse_flag(&value("--width")?, "--width")?),
            "--strategy" => {
                request.strategy = value("--strategy")?.parse()?;
            }
            "--bug" => {
                request.bug = Some(value("--bug")?.parse().map_err(|e| format!("--bug: {e}"))?);
            }
            "--max-conflicts" => {
                request.sat_limits.max_conflicts =
                    Some(parse_flag(&value("--max-conflicts")?, "--max-conflicts")?);
            }
            "--max-seconds" => {
                request.sat_limits.max_seconds =
                    Some(parse_flag(&value("--max-seconds")?, "--max-seconds")?);
            }
            "--audit" => request.audit = true,
            "--check-proofs" => request.check_proofs = true,
            "--quiet" => quiet = true,
            "--expect-cache" => {
                expect_cache = Some(match value("--expect-cache")?.as_str() {
                    "hit" => true,
                    "miss" => false,
                    other => {
                        return Err(format!("--expect-cache must be hit or miss, got {other:?}"))
                    }
                });
            }
            other => return Err(format!("unknown verify flag {other:?}")),
        }
    }
    request.rob_size = size.ok_or("--size is required")?;
    request.issue_width = width.ok_or("--width is required")?;

    let stream = connect(addr)?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    send(&mut writer, &Request::Verify(request))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Err("server closed the connection mid-request".to_owned()),
            Ok(_) => {}
            Err(e) => return Err(format!("read failed: {e}")),
        }
        if line.trim().is_empty() {
            continue;
        }
        match Response::parse(&line)? {
            Response::Event { state, detail } => {
                if !quiet {
                    eprintln!("[{state}] {detail}");
                }
            }
            Response::Overloaded { depth, limit } => {
                eprintln!("server overloaded: {depth} jobs queued (limit {limit}); retry later");
                return Ok(ExitCode::from(2));
            }
            Response::Error { message } => return Err(message),
            Response::Result {
                cache_hit,
                key_digest,
                elapsed,
                verification,
            } => {
                let cache = if cache_hit { "hit" } else { "miss" };
                println!(
                    "verdict: {}  cache: {cache}  key: {key_digest}  elapsed: {:.3}s",
                    verification.verdict.label(),
                    elapsed.as_secs_f64(),
                );
                if !verification.diagnostics.is_empty() {
                    println!("diagnostics: {}", verification.diagnostics.len());
                }
                if let Some(expected_hit) = expect_cache {
                    if cache_hit != expected_hit {
                        eprintln!(
                            "expected cache {}, got {cache}",
                            if expected_hit { "hit" } else { "miss" },
                        );
                        return Ok(ExitCode::FAILURE);
                    }
                }
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unexpected response: {other:?}")),
        }
    }
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))
}

fn send(writer: &mut TcpStream, request: &Request) -> Result<(), String> {
    writeln!(writer, "{}", request.to_json()).map_err(|e| format!("write failed: {e}"))?;
    writer.flush().map_err(|e| format!("flush failed: {e}"))
}

fn roundtrip(addr: &str, request: &Request) -> Result<Response, String> {
    let stream = connect(addr)?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    send(&mut writer, request)?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Err("server closed the connection".to_owned()),
            Ok(_) => {}
            Err(e) => return Err(format!("read failed: {e}")),
        }
        if !line.trim().is_empty() {
            return Response::parse(&line);
        }
    }
}

fn parse_flag<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value.parse().map_err(|e| format!("{flag}: {e}"))
}

const USAGE: &str = "\
usage: robctl [--addr HOST:PORT] <command>
commands:
  ping                         liveness probe
  verify --size N --width K    verify one configuration
         [--strategy pe-only|rewrite+pe] [--bug SPEC]
         [--max-conflicts N] [--max-seconds S]
         [--audit] [--check-proofs] [--quiet]
         [--expect-cache hit|miss]   fail unless the cache agreed
  stats                        server statistics
  shutdown                     drain and stop the server
";
