//! End-to-end tests of the verification server over real TCP sockets:
//! miss-then-hit caching, concurrent clients with a mid-stream
//! disconnect, bounded-admission overload, graceful drain, and cache
//! persistence across a daemon restart.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use campaign::pool::CancelToken;
use campaign::{JobSpec, Priority};
use rob_verify::{Verdict, Verification};
use serve::{Disposition, Request, Response, ServeRunner, Server, ServerConfig, VerifyRequest};

/// Connects and sends one request line.
fn open(addr: std::net::SocketAddr, request: &Request) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writeln!(writer, "{}", request.to_json()).expect("send");
    writer.flush().expect("flush");
    (writer, BufReader::new(stream))
}

/// Reads response lines until the terminal one (anything but `event`).
fn read_terminal(reader: &mut BufReader<TcpStream>) -> Response {
    let mut events = 0;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read");
        assert_ne!(n, 0, "server closed mid-request");
        if line.trim().is_empty() {
            continue;
        }
        let response = Response::parse(&line).expect("parse response");
        if let Response::Event { .. } = response {
            events += 1;
            assert!(events < 1000, "event stream never terminated");
            continue;
        }
        return response;
    }
}

fn roundtrip(addr: std::net::SocketAddr, request: &Request) -> Response {
    let (_writer, mut reader) = open(addr, request);
    read_terminal(&mut reader)
}

/// A fabricated verification so injected runners avoid real solving.
fn canned() -> Verification {
    Verification {
        verdict: Verdict::Verified,
        timings: Default::default(),
        stats: Default::default(),
        diagnostics: Vec::new(),
        degraded: None,
    }
}

fn counting_runner(delay: Duration, solves: &Arc<AtomicUsize>) -> ServeRunner {
    let solves = Arc::clone(solves);
    Arc::new(
        move |_job: &JobSpec, _cancel: &CancelToken, _deadline: Option<Duration>| {
            solves.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(delay);
            Ok(canned())
        },
    )
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rob-serve-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn miss_then_hit_and_stats() {
    let solves = Arc::new(AtomicUsize::new(0));
    let handle = Server::start(ServerConfig {
        workers: 2,
        runner: counting_runner(Duration::from_millis(30), &solves),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    assert_eq!(roundtrip(addr, &Request::Ping), Response::Pong);

    let verify = Request::Verify(VerifyRequest::new(8, 2));
    let first = roundtrip(addr, &verify);
    let Response::Result {
        disposition: Disposition::Miss,
        key_digest,
        ..
    } = &first
    else {
        panic!("first answer must be a miss: {first:?}");
    };
    let second = roundtrip(addr, &verify);
    let Response::Result {
        disposition: Disposition::Hit,
        key_digest: second_digest,
        elapsed,
        verification,
    } = &second
    else {
        panic!("second answer must be a hit: {second:?}");
    };
    assert_eq!(second_digest, key_digest);
    assert_eq!(verification.verdict, Verdict::Verified);
    assert!(
        *elapsed < Duration::from_millis(10),
        "hit must skip the solver, took {elapsed:?}"
    );
    assert_eq!(solves.load(Ordering::SeqCst), 1, "one solve serves both");

    // A different configuration is a different key.
    let other = roundtrip(addr, &Request::Verify(VerifyRequest::new(4, 1)));
    assert!(matches!(
        other,
        Response::Result {
            disposition: Disposition::Miss,
            ..
        }
    ));

    let stats = roundtrip(addr, &Request::Stats);
    let Response::Stats(s) = stats else {
        panic!("expected stats, got {stats:?}");
    };
    assert_eq!(s.jobs_served, 3);
    assert_eq!(s.cache_hits, 1);
    assert_eq!(s.cache_misses, 2);
    assert!((s.hit_rate - 1.0 / 3.0).abs() < 1e-9);
    assert_eq!(s.cache_entries, 2);
    assert!(s.p95 >= s.p50);
    assert!(
        s.p50 >= Duration::from_millis(20),
        "p50 sees the solver delay"
    );

    handle.shutdown();
}

#[test]
fn invalid_requests_get_structured_errors() {
    let handle = Server::start(ServerConfig {
        workers: 1,
        runner: Arc::new(
            |_job: &JobSpec, _cancel: &CancelToken, _deadline: Option<Duration>| Ok(canned()),
        ),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // Garbage, then a structurally invalid job, then a good request —
    // all on one connection, proving errors don't wedge the handler.
    writeln!(writer, "this is not json").unwrap();
    assert!(matches!(read_terminal(&mut reader), Response::Error { .. }));
    writeln!(
        writer,
        "{}",
        Request::Verify(VerifyRequest::new(2, 8)).to_json()
    )
    .unwrap();
    let bad_config = read_terminal(&mut reader);
    let Response::Error { message } = &bad_config else {
        panic!("expected error, got {bad_config:?}");
    };
    assert!(message.contains("width"), "{message}");
    writeln!(writer, "{}", Request::Ping.to_json()).unwrap();
    assert_eq!(read_terminal(&mut reader), Response::Pong);

    handle.shutdown();
}

#[test]
fn concurrent_clients_and_midstream_disconnect_do_not_poison_the_pool() {
    let solves = Arc::new(AtomicUsize::new(0));
    let handle = Server::start(ServerConfig {
        workers: 2,
        runner: counting_runner(Duration::from_millis(60), &solves),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    // One client submits and hangs up mid-stream, before the result.
    let quitter = Request::Verify(VerifyRequest::new(16, 4));
    {
        let (writer, mut reader) = open(addr, &quitter);
        let mut first_line = String::new();
        reader.read_line(&mut first_line).expect("first event");
        drop(writer);
        drop(reader); // disconnect while the job is still running
    }

    // Meanwhile a herd of clients works a small mixed key set.
    let keys = [(8usize, 2usize), (8, 1), (4, 2)];
    let mut clients = Vec::new();
    for round in 0..4 {
        for (i, &(size, width)) in keys.iter().enumerate() {
            let request = Request::Verify(VerifyRequest::new(size, width));
            clients.push(std::thread::spawn(move || {
                let response = roundtrip(addr, &request);
                match response {
                    Response::Result { verification, .. } => {
                        assert_eq!(verification.verdict, Verdict::Verified);
                    }
                    other => panic!("client {round}/{i}: unexpected {other:?}"),
                }
            }));
        }
    }
    for client in clients {
        client.join().expect("client thread");
    }

    // The abandoned job still completed and was cached: a repeat of the
    // quitter's request is now a hit.
    let repeat = roundtrip(addr, &quitter);
    assert!(
        matches!(
            repeat,
            Response::Result {
                disposition: Disposition::Hit,
                ..
            }
        ),
        "disconnected client's solve must land in the cache: {repeat:?}"
    );
    // 3 distinct keys from the herd + 1 from the quitter; duplicates
    // either hit the cache or (when racing the first solve) solve again.
    // The pool itself must have stayed healthy enough to serve them all.
    assert!(solves.load(Ordering::SeqCst) >= 4);

    let stats = roundtrip(addr, &Request::Stats);
    let Response::Stats(s) = stats else { panic!() };
    assert_eq!(
        s.jobs_served, 14,
        "12 herd clients + the abandoned job + the repeat"
    );
    handle.shutdown();
}

#[test]
fn overload_sheds_with_structured_rejection() {
    let solves = Arc::new(AtomicUsize::new(0));
    let handle = Server::start(ServerConfig {
        workers: 1,
        queue_limit: 1,
        runner: counting_runner(Duration::from_millis(300), &solves),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    // Distinct keys so nothing is served from the cache: the first
    // occupies the worker, the second fills the queue, the third sheds.
    let mut streams = Vec::new();
    streams.push(open(addr, &Request::Verify(VerifyRequest::new(4, 1))));
    while {
        let Response::Stats(s) = roundtrip(addr, &Request::Stats) else {
            panic!()
        };
        s.active_jobs == 0
    } {
        std::thread::sleep(Duration::from_millis(5));
    }
    streams.push(open(addr, &Request::Verify(VerifyRequest::new(5, 1))));
    while {
        let Response::Stats(s) = roundtrip(addr, &Request::Stats) else {
            panic!()
        };
        s.queue_depth == 0
    } {
        std::thread::sleep(Duration::from_millis(5));
    }

    let shed = roundtrip(addr, &Request::Verify(VerifyRequest::new(6, 1)));
    assert_eq!(
        shed,
        Response::Overloaded {
            depth: 1,
            limit: 1,
            lane: Priority::Interactive
        }
    );

    // The admitted jobs still complete.
    for (_writer, mut reader) in streams {
        assert!(matches!(
            read_terminal(&mut reader),
            Response::Result {
                disposition: Disposition::Miss,
                ..
            }
        ));
    }
    let Response::Stats(s) = roundtrip(addr, &Request::Stats) else {
        panic!()
    };
    assert_eq!(s.rejected, 1);
    handle.shutdown();
}

#[test]
fn cache_persists_across_restart_and_answers_without_resolving() {
    let store = temp_path("persist.jsonl");
    std::fs::remove_file(&store).ok();
    let request = Request::Verify(VerifyRequest::new(12, 3));

    let solves = Arc::new(AtomicUsize::new(0));
    let first = Server::start(ServerConfig {
        workers: 1,
        persist_path: Some(store.clone()),
        runner: counting_runner(Duration::ZERO, &solves),
        ..ServerConfig::default()
    })
    .expect("start first");
    let miss = roundtrip(first.addr(), &request);
    assert!(matches!(
        miss,
        Response::Result {
            disposition: Disposition::Miss,
            ..
        }
    ));
    // Graceful shutdown flushes the store.
    first.shutdown();
    assert!(store.exists(), "shutdown must flush the JSONL store");

    // The restarted daemon gets a runner that can only fail: proof that
    // a warm-cache answer never reaches the solver.
    let second = Server::start(ServerConfig {
        workers: 1,
        persist_path: Some(store.clone()),
        runner: Arc::new(
            |_job: &JobSpec, _cancel: &CancelToken, _deadline: Option<Duration>| {
                panic!("the warm cache must answer this")
            },
        ),
        ..ServerConfig::default()
    })
    .expect("start second");
    let replay = second.replay_report().expect("store configured");
    assert_eq!(replay.loaded, 1);
    assert_eq!(replay.rejected, 0);
    let hit = roundtrip(second.addr(), &request);
    assert!(
        matches!(
            hit,
            Response::Result {
                disposition: Disposition::Hit,
                ..
            }
        ),
        "restart must serve from the replayed store: {hit:?}"
    );
    // A different key does reach the (panicking) runner and the error is
    // contained by the pool, not fatal to the daemon.
    let fresh = roundtrip(second.addr(), &Request::Verify(VerifyRequest::new(3, 1)));
    let Response::Error { message } = &fresh else {
        panic!("expected contained crash, got {fresh:?}");
    };
    assert!(message.contains("crashed"), "{message}");
    assert_eq!(roundtrip(second.addr(), &Request::Ping), Response::Pong);
    second.shutdown();
    std::fs::remove_file(&store).ok();
}

#[test]
fn memo_store_warms_follow_up_requests_across_distinct_keys() {
    // Two requests with the same configuration but different SAT limits
    // have different job keys (the result cache misses twice), yet the
    // obligation memo keys deliberately exclude resource limits — limits
    // can only yield Unknown, which is never memoized — so the second
    // real solve replays the first one's discharges out of the
    // process-global store.
    let handle = Server::start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    let cold = roundtrip(addr, &Request::Verify(VerifyRequest::new(2, 1)));
    let Response::Result {
        disposition: Disposition::Miss,
        verification: cold_v,
        ..
    } = &cold
    else {
        panic!("unexpected {cold:?}");
    };
    let Response::Stats(before) = roundtrip(addr, &Request::Stats) else {
        panic!("expected stats");
    };
    assert!(before.memo_entries > 0, "first solve stored nothing");

    let mut warm_request = VerifyRequest::new(2, 1);
    warm_request.sat_limits.max_conflicts = Some(1_000_000);
    let warm = roundtrip(addr, &Request::Verify(warm_request));
    let Response::Result {
        disposition: Disposition::Miss,
        verification: warm_v,
        ..
    } = &warm
    else {
        panic!("the limit change must miss the result cache: {warm:?}");
    };
    // Memoized replay is invisible in the reported result...
    assert_eq!(warm_v.verdict, cold_v.verdict);
    assert_eq!(warm_v.stats, cold_v.stats);
    // ...but visible in the daemon's memo counters.
    let Response::Stats(after) = roundtrip(addr, &Request::Stats) else {
        panic!("expected stats");
    };
    assert!(
        after.memo_hits > before.memo_hits,
        "second solve hit nothing: {after:?}"
    );
    assert!(after.memo_hit_rate > 0.0);
    handle.shutdown();
}

#[test]
fn shutdown_request_drains_and_real_pipeline_serves_hits() {
    // One real (un-injected) end-to-end pass on the smallest config:
    // solve, hit, then a client-driven drain.
    let handle = Server::start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();
    let request = Request::Verify(VerifyRequest::new(2, 1));
    let miss = roundtrip(addr, &request);
    let Response::Result {
        disposition: Disposition::Miss,
        elapsed: miss_elapsed,
        verification,
        ..
    } = &miss
    else {
        panic!("unexpected {miss:?}");
    };
    assert_eq!(verification.verdict, Verdict::Verified);
    assert!(verification.stats.cnf_vars > 0);
    let hit = roundtrip(addr, &request);
    let Response::Result {
        disposition: Disposition::Hit,
        elapsed: hit_elapsed,
        ..
    } = &hit
    else {
        panic!("unexpected {hit:?}");
    };
    assert!(
        *hit_elapsed <= *miss_elapsed,
        "hit ({hit_elapsed:?}) must not be slower than the solve ({miss_elapsed:?})"
    );

    assert_eq!(roundtrip(addr, &Request::Shutdown), Response::ShutdownAck);
    handle.join(); // returns once the drain completes
    match TcpStream::connect(addr) {
        Err(_) => {} // listener is gone
        Ok(stream) => {
            // A connection left in the OS backlog must go unanswered.
            let mut writer = stream.try_clone().expect("clone");
            let _ = writeln!(writer, "{}", Request::Ping.to_json());
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            assert!(
                matches!(reader.read_line(&mut line), Ok(0) | Err(_)),
                "a drained server must not serve new requests"
            );
        }
    }
}
