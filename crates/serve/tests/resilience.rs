//! Resilient-serving integration tests over real TCP sockets:
//! single-flight coalescing (exactly one solve for concurrent identical
//! requests), deadline propagation with structured `deadline-exceeded`
//! answers, strict bulk-before-interactive shedding at the service
//! layer, a saturation-immune health probe, leader-disconnect follower
//! promotion, and a graceful drain that delivers every follower's
//! terminal line.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use campaign::pool::CancelToken;
use campaign::{JobSpec, Priority};
use rob_verify::{Verdict, Verification};
use serve::{Disposition, Request, Response, ServeRunner, Server, ServerConfig, VerifyRequest};

fn open(addr: std::net::SocketAddr, request: &Request) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writeln!(writer, "{}", request.to_json()).expect("send");
    writer.flush().expect("flush");
    (writer, BufReader::new(stream))
}

fn read_terminal(reader: &mut BufReader<TcpStream>) -> Response {
    let mut events = 0;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read");
        assert_ne!(n, 0, "server closed mid-request");
        if line.trim().is_empty() {
            continue;
        }
        let response = Response::parse(&line).expect("parse response");
        if let Response::Event { .. } = response {
            events += 1;
            assert!(events < 1000, "event stream never terminated");
            continue;
        }
        return response;
    }
}

fn roundtrip(addr: std::net::SocketAddr, request: &Request) -> Response {
    let (_writer, mut reader) = open(addr, request);
    read_terminal(&mut reader)
}

fn stats(addr: std::net::SocketAddr) -> serve::StatsSnapshot {
    match roundtrip(addr, &Request::Stats) {
        Response::Stats(s) => s,
        other => panic!("expected stats, got {other:?}"),
    }
}

fn canned() -> Verification {
    Verification {
        verdict: Verdict::Verified,
        timings: Default::default(),
        stats: Default::default(),
        diagnostics: Vec::new(),
        degraded: None,
    }
}

fn counting_runner(delay: Duration, solves: &Arc<AtomicUsize>) -> ServeRunner {
    let solves = Arc::clone(solves);
    Arc::new(
        move |_job: &JobSpec, _cancel: &CancelToken, _deadline: Option<Duration>| {
            solves.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(delay);
            Ok(canned())
        },
    )
}

fn bulk_verify(size: usize, width: usize) -> Request {
    let mut request = VerifyRequest::new(size, width);
    request.priority = Priority::Bulk;
    Request::Verify(request)
}

/// Tentpole: two-plus concurrent identical requests perform the
/// verification exactly once — one leader solves, everyone else rides
/// the flight and answers `cache: coalesced`.
#[test]
fn concurrent_identical_requests_solve_exactly_once() {
    let solves = Arc::new(AtomicUsize::new(0));
    let handle = Server::start(ServerConfig {
        workers: 2,
        runner: counting_runner(Duration::from_millis(300), &solves),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    // The leader's `queued` event is written only after the flight is
    // registered, so followers attached afterwards cannot race past it.
    let request = Request::Verify(VerifyRequest::new(8, 2));
    let (_leader_writer, mut leader_reader) = open(addr, &request);
    let mut queued = String::new();
    leader_reader.read_line(&mut queued).expect("queued event");
    assert!(queued.contains("queued"), "{queued}");

    let followers: Vec<_> = (0..3)
        .map(|_| {
            let request = request.clone();
            std::thread::spawn(move || roundtrip(addr, &request))
        })
        .collect();
    let mut dispositions = vec![read_terminal(&mut leader_reader)];
    for follower in followers {
        dispositions.push(follower.join().expect("follower thread"));
    }

    let mut misses = 0;
    let mut coalesced = 0;
    for response in &dispositions {
        let Response::Result {
            disposition,
            verification,
            ..
        } = response
        else {
            panic!("every client gets a result: {response:?}");
        };
        assert_eq!(verification.verdict, Verdict::Verified);
        match disposition {
            Disposition::Miss => misses += 1,
            Disposition::Coalesced => coalesced += 1,
            Disposition::Hit => panic!("nothing was cached yet"),
        }
    }
    assert_eq!(misses, 1, "exactly one leader");
    assert_eq!(coalesced, 3, "every other client coalesces");
    assert_eq!(solves.load(Ordering::SeqCst), 1, "one solve serves four");

    let s = stats(addr);
    assert_eq!(s.jobs_served, 4);
    assert_eq!(s.coalesced, 3);
    // All four clients probed the (empty) cache before attaching, but
    // only the leader's solve landed in it.
    assert_eq!(s.cache_misses, 4);
    assert_eq!(s.cache_entries, 1);
    handle.shutdown();
}

/// Tentpole: a request with a tight `deadline_ms` gets a structured
/// `deadline-exceeded` terminal line — never a silent hang — and the
/// clipped run is never cached.
#[test]
fn tight_deadline_gets_a_structured_answer_and_is_not_cached() {
    let handle = Server::start(ServerConfig {
        workers: 1,
        runner: Arc::new(
            |_job: &JobSpec, cancel: &CancelToken, remaining: Option<Duration>| {
                if remaining.is_none() {
                    return Ok(canned());
                }
                // Cooperative: the deadline-bearing child token trips at
                // the budget; wind down as cancelled.
                let horizon = Instant::now() + Duration::from_secs(5);
                while Instant::now() < horizon {
                    if cancel.is_cancelled() {
                        return Ok(Verification::cancelled(
                            Default::default(),
                            Default::default(),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(canned())
            },
        ),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    let mut request = VerifyRequest::new(9, 1);
    request.deadline_ms = Some(60);
    let started = Instant::now();
    let answer = roundtrip(addr, &Request::Verify(request));
    let Response::DeadlineExceeded {
        deadline_ms,
        elapsed,
        ..
    } = &answer
    else {
        panic!("expected deadline-exceeded, got {answer:?}");
    };
    assert_eq!(*deadline_ms, 60);
    assert!(*elapsed >= Duration::from_millis(60));
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "the answer must come promptly, not at the runner's horizon"
    );
    assert_eq!(stats(addr).deadline_exceeded, 1);

    // The clipped run must not have been cached: the same key without a
    // deadline is a fresh solve, not a hit.
    let repeat = roundtrip(addr, &Request::Verify(VerifyRequest::new(9, 1)));
    assert!(
        matches!(
            repeat,
            Response::Result {
                disposition: Disposition::Miss,
                ..
            }
        ),
        "a deadline-clipped run must never be cached: {repeat:?}"
    );
    handle.shutdown();
}

/// Overload sheds bulk strictly before interactive at the service
/// layer, the rejections carry their lane, and the per-lane queue and
/// shed counters in `stats` agree.
#[test]
fn bulk_sheds_strictly_before_interactive() {
    let solves = Arc::new(AtomicUsize::new(0));
    let handle = Server::start(ServerConfig {
        workers: 1,
        queue_limit: 2,
        bulk_queue_limit: 1,
        runner: counting_runner(Duration::from_millis(400), &solves),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    // Distinct keys throughout so nothing coalesces or hits the cache.
    let mut admitted = Vec::new();
    admitted.push(open(addr, &Request::Verify(VerifyRequest::new(4, 1))));
    while stats(addr).active_jobs == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }

    // Occupancy 0 < bulk ceiling 1: this bulk job is admitted…
    admitted.push(open(addr, &bulk_verify(5, 1)));
    while stats(addr).queue_depth == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    // …and the next one is shed at the ceiling, while interactive
    // traffic still has headroom.
    let shed_bulk = roundtrip(addr, &bulk_verify(6, 1));
    assert_eq!(
        shed_bulk,
        Response::Overloaded {
            depth: 1,
            limit: 1,
            lane: Priority::Bulk
        }
    );
    admitted.push(open(addr, &Request::Verify(VerifyRequest::new(7, 1))));
    while stats(addr).queue_depth < 2 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let shed_interactive = roundtrip(addr, &Request::Verify(VerifyRequest::new(8, 1)));
    assert_eq!(
        shed_interactive,
        Response::Overloaded {
            depth: 2,
            limit: 2,
            lane: Priority::Interactive
        }
    );

    // The saturated daemon still answers its health probe, and says
    // overloaded rather than ok.
    let health = roundtrip(addr, &Request::Health);
    let Response::Health {
        status,
        queue_interactive,
        queue_bulk,
        queue_limit,
        ..
    } = &health
    else {
        panic!("expected health, got {health:?}");
    };
    assert_eq!(status, "overloaded");
    assert_eq!((*queue_interactive, *queue_bulk), (1, 1));
    assert_eq!(*queue_limit, 2);

    let s = stats(addr);
    assert_eq!(s.queue_interactive, 1);
    assert_eq!(s.queue_bulk, 1);
    assert_eq!(s.shed_bulk, 1);
    assert_eq!(s.shed_interactive, 1);
    assert_eq!(s.rejected, 2);

    // Every admitted job still completes.
    for (_writer, mut reader) in admitted {
        assert!(matches!(
            read_terminal(&mut reader),
            Response::Result {
                disposition: Disposition::Miss,
                ..
            }
        ));
    }
    let health = roundtrip(addr, &Request::Health);
    assert!(
        matches!(health, Response::Health { ref status, .. } if status == "ok"),
        "drained queue goes back to ok: {health:?}"
    );
    handle.shutdown();
}

/// A leader whose client disconnects mid-flight does not orphan the
/// work: the attached follower keeps the flight alive, the job is never
/// cancelled, and the follower receives the full result.
#[test]
fn leader_disconnect_promotes_the_follower() {
    let solves = Arc::new(AtomicUsize::new(0));
    let cancelled = Arc::new(AtomicBool::new(false));
    let solves_in = Arc::clone(&solves);
    let cancelled_in = Arc::clone(&cancelled);
    let handle = Server::start(ServerConfig {
        workers: 1,
        runner: Arc::new(
            move |_job: &JobSpec, cancel: &CancelToken, _deadline: Option<Duration>| {
                solves_in.fetch_add(1, Ordering::SeqCst);
                let horizon = Instant::now() + Duration::from_millis(300);
                while Instant::now() < horizon {
                    if cancel.is_cancelled() {
                        cancelled_in.store(true, Ordering::SeqCst);
                        return Ok(Verification::cancelled(
                            Default::default(),
                            Default::default(),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Ok(canned())
            },
        ),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    let request = Request::Verify(VerifyRequest::new(10, 2));
    let (leader_writer, mut leader_reader) = open(addr, &request);
    let mut queued = String::new();
    leader_reader.read_line(&mut queued).expect("queued event");

    // Attach a follower, confirmed by its `coalesced` event, then hang
    // up the leader's client.
    let (attached_tx, attached_rx) = mpsc::channel();
    let follower = {
        let request = request.clone();
        std::thread::spawn(move || {
            let (_writer, mut reader) = open(addr, &request);
            let mut first = String::new();
            reader.read_line(&mut first).expect("coalesced event");
            assert!(first.contains("coalesced"), "{first}");
            attached_tx.send(()).expect("signal attach");
            read_terminal(&mut reader)
        })
    };
    attached_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("follower attached");
    drop(leader_writer);
    drop(leader_reader);

    let answer = follower.join().expect("follower thread");
    let Response::Result {
        disposition: Disposition::Coalesced,
        verification,
        ..
    } = &answer
    else {
        panic!("the follower must still be answered: {answer:?}");
    };
    assert_eq!(verification.verdict, Verdict::Verified);
    assert!(
        !cancelled.load(Ordering::SeqCst),
        "work with a live follower must not be cancelled"
    );
    assert_eq!(solves.load(Ordering::SeqCst), 1);
    handle.shutdown();
}

/// Graceful drain with followers attached: shutdown while a flight is
/// mid-solve still delivers a terminal line to the leader *and* every
/// follower before the daemon exits.
#[test]
fn drain_with_followers_delivers_every_terminal_line() {
    let solves = Arc::new(AtomicUsize::new(0));
    let handle = Server::start(ServerConfig {
        workers: 1,
        runner: counting_runner(Duration::from_millis(400), &solves),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    let request = Request::Verify(VerifyRequest::new(12, 4));
    let (_leader_writer, mut leader_reader) = open(addr, &request);
    let mut queued = String::new();
    leader_reader.read_line(&mut queued).expect("queued event");

    let (attached_tx, attached_rx) = mpsc::channel();
    let followers: Vec<_> = (0..2)
        .map(|_| {
            let request = request.clone();
            let attached_tx = attached_tx.clone();
            std::thread::spawn(move || {
                let (_writer, mut reader) = open(addr, &request);
                let mut first = String::new();
                reader.read_line(&mut first).expect("coalesced event");
                attached_tx.send(()).expect("signal attach");
                read_terminal(&mut reader)
            })
        })
        .collect();
    for _ in 0..2 {
        attached_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("follower attached");
    }

    // Drain while the flight is still solving. `shutdown` blocks until
    // the daemon fully exits, so collecting the answers afterwards
    // proves they were written before the drain completed.
    handle.shutdown();

    let leader_answer = read_terminal(&mut leader_reader);
    assert!(
        matches!(
            leader_answer,
            Response::Result {
                disposition: Disposition::Miss,
                ..
            }
        ),
        "drain must finish the leader: {leader_answer:?}"
    );
    for follower in followers {
        let answer = follower.join().expect("follower thread");
        assert!(
            matches!(
                answer,
                Response::Result {
                    disposition: Disposition::Coalesced,
                    ..
                }
            ),
            "drain must answer every follower: {answer:?}"
        );
    }
    assert_eq!(solves.load(Ordering::SeqCst), 1);
}
