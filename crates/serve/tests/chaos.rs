//! Fault-injection tests for the daemon, driven by the `rob-chaos`
//! harness: injected worker panics, corrupted persistence, a stalled
//! request path, client-disconnect cancellation, and a cancelling drain.
//!
//! Every test arms a [`chaos::plan`] (possibly empty) and holds the
//! returned guard for its whole body — the guard's global lock keeps
//! armed injection points from leaking into a concurrently running test
//! in this binary.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use campaign::pool::CancelToken;
use campaign::JobSpec;
use rob_verify::{Verdict, Verification};
use serve::{Disposition, Request, Response, ServeRunner, Server, ServerConfig, VerifyRequest};

fn open(addr: std::net::SocketAddr, request: &Request) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writeln!(writer, "{}", request.to_json()).expect("send");
    writer.flush().expect("flush");
    (writer, BufReader::new(stream))
}

fn read_terminal(reader: &mut BufReader<TcpStream>) -> Response {
    let mut events = 0;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read");
        assert_ne!(n, 0, "server closed mid-request");
        if line.trim().is_empty() {
            continue;
        }
        let response = Response::parse(&line).expect("parse response");
        if let Response::Event { .. } = response {
            events += 1;
            assert!(events < 1000, "event stream never terminated");
            continue;
        }
        return response;
    }
}

fn roundtrip(addr: std::net::SocketAddr, request: &Request) -> Response {
    let (_writer, mut reader) = open(addr, request);
    read_terminal(&mut reader)
}

fn canned() -> Verification {
    Verification {
        verdict: Verdict::Verified,
        timings: Default::default(),
        stats: Default::default(),
        diagnostics: Vec::new(),
        degraded: None,
    }
}

fn canned_runner(solves: &Arc<AtomicUsize>) -> ServeRunner {
    let solves = Arc::clone(solves);
    Arc::new(
        move |_job: &JobSpec, _cancel: &CancelToken, _deadline: Option<Duration>| {
            solves.fetch_add(1, Ordering::SeqCst);
            Ok(canned())
        },
    )
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rob-serve-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Tentpole: panics injected into the worker run path are contained by
/// the pool — the affected requests get structured errors and the daemon
/// stays fully serviceable afterwards.
#[test]
fn daemon_survives_injected_worker_panics() {
    let guard = chaos::plan(7).panic_at("serve.worker.run", 2).arm();
    let solves = Arc::new(AtomicUsize::new(0));
    let handle = Server::start(ServerConfig {
        workers: 2,
        runner: canned_runner(&solves),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    // Two requests absorb the two injected panics.
    for (size, width) in [(4usize, 1usize), (6, 1)] {
        let crashed = roundtrip(addr, &Request::Verify(VerifyRequest::new(size, width)));
        let Response::Error { message } = &crashed else {
            panic!("expected contained crash, got {crashed:?}");
        };
        assert!(message.contains("injected panic"), "{message}");
    }
    assert_eq!(guard.fired(), vec!["serve.worker.run", "serve.worker.run"]);
    assert_eq!(solves.load(Ordering::SeqCst), 0, "panic precedes the solve");

    // Panic budget exhausted: both keys (never cached — a crash is not a
    // result) now solve, and the daemon answers control traffic.
    for (size, width) in [(4usize, 1usize), (6, 1)] {
        let ok = roundtrip(addr, &Request::Verify(VerifyRequest::new(size, width)));
        assert!(
            matches!(
                ok,
                Response::Result {
                    disposition: Disposition::Miss,
                    ..
                }
            ),
            "after the panics the same key must solve: {ok:?}"
        );
    }
    assert_eq!(solves.load(Ordering::SeqCst), 2);
    assert_eq!(roundtrip(addr, &Request::Ping), Response::Pong);
    let Response::Stats(s) = roundtrip(addr, &Request::Stats) else {
        panic!()
    };
    assert_eq!(s.jobs_served, 2, "only completed solves count as served");
    handle.shutdown();
}

/// Tentpole: a corrupted shutdown flush degrades the next startup to a
/// cold cache — the bad record is skipped and counted, the daemon serves
/// (re-solving instead of crashing or serving garbage).
#[test]
fn corrupt_journal_flush_degrades_to_cold_cache() {
    // Seed 16 steers `mangle` to the trailing-garbage branch (invalid
    // UTF-8), so the flushed record is unambiguously rejected on replay.
    let guard = chaos::plan(16).corrupt_at("serve.cache.flush-line").arm();
    let store = temp_path("chaos-corrupt.jsonl");
    std::fs::remove_file(&store).ok();
    let request = Request::Verify(VerifyRequest::new(8, 2));

    let solves = Arc::new(AtomicUsize::new(0));
    let first = Server::start(ServerConfig {
        workers: 1,
        persist_path: Some(store.clone()),
        runner: canned_runner(&solves),
        ..ServerConfig::default()
    })
    .expect("start first");
    assert!(matches!(
        roundtrip(first.addr(), &request),
        Response::Result {
            disposition: Disposition::Miss,
            ..
        }
    ));
    // The drain flushes the store; the armed point corrupts the line.
    first.shutdown();
    assert_eq!(guard.fired(), vec!["serve.cache.flush-line"]);
    drop(guard); // replay and re-solve below run un-injected

    let second = Server::start(ServerConfig {
        workers: 1,
        persist_path: Some(store.clone()),
        runner: canned_runner(&solves),
        ..ServerConfig::default()
    })
    .expect("corrupt journal must not fail startup");
    let replay = second.replay_report().expect("store configured");
    assert_eq!(replay.loaded, 0, "the corrupted record must not be served");
    assert_eq!(replay.rejected, 1, "…but it is counted, not fatal");
    let again = roundtrip(second.addr(), &request);
    assert!(
        matches!(
            again,
            Response::Result {
                disposition: Disposition::Miss,
                ..
            }
        ),
        "cold cache re-solves: {again:?}"
    );
    assert_eq!(solves.load(Ordering::SeqCst), 2);
    second.shutdown();
    std::fs::remove_file(&store).ok();
}

/// A stall injected at the request entry point delays the answer but
/// does not wedge the connection or the daemon.
#[test]
fn stalled_request_path_still_answers() {
    let _guard = chaos::plan(3)
        .stall_at("serve.verify", Duration::from_millis(60))
        .arm();
    let solves = Arc::new(AtomicUsize::new(0));
    let handle = Server::start(ServerConfig {
        workers: 1,
        runner: canned_runner(&solves),
        ..ServerConfig::default()
    })
    .expect("start");
    let started = Instant::now();
    let response = roundtrip(handle.addr(), &Request::Verify(VerifyRequest::new(4, 1)));
    assert!(matches!(response, Response::Result { .. }), "{response:?}");
    assert!(
        started.elapsed() >= Duration::from_millis(60),
        "the stall must actually delay the answer"
    );
    handle.shutdown();
}

/// A client that disconnects mid-job trips the job's cancel token: a
/// cooperative runner observes the flip and winds down instead of
/// solving for nobody, and the daemon keeps serving.
#[test]
fn disconnect_cancels_a_cooperative_runner() {
    let _guard = chaos::plan(1).arm(); // no faults; serializes vs other chaos tests
    let observed_cancel = Arc::new(AtomicBool::new(false));
    let observed = Arc::clone(&observed_cancel);
    let handle = Server::start(ServerConfig {
        workers: 1,
        runner: Arc::new(
            move |job: &JobSpec, cancel: &CancelToken, _deadline: Option<Duration>| {
                if job.label().starts_with("rob4") {
                    // Occupies the single worker so the rob6 job sits queued
                    // long enough for the client's RST to land.
                    std::thread::sleep(Duration::from_millis(250));
                    return Ok(canned());
                }
                // Cooperative: poll the token; give up only well past any
                // plausible test timing.
                let deadline = Instant::now() + Duration::from_secs(5);
                while Instant::now() < deadline {
                    if cancel.is_cancelled() {
                        observed.store(true, Ordering::SeqCst);
                        return Ok(Verification::cancelled(
                            Default::default(),
                            Default::default(),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Ok(canned())
            },
        ),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    // Fill the worker, then queue the target job and hang up on it. The
    // `queued` event is written while we are still connected; the
    // `started` event (sent once the worker picks the job up, after our
    // RST has landed) fails the write and flips the token.
    let (_w_filler, mut r_filler) = open(addr, &Request::Verify(VerifyRequest::new(4, 1)));
    std::thread::sleep(Duration::from_millis(50));
    {
        let (writer, mut reader) = open(addr, &Request::Verify(VerifyRequest::new(6, 1)));
        let mut queued = String::new();
        reader.read_line(&mut queued).expect("queued event");
        assert!(queued.contains("queued"), "{queued}");
        drop(writer);
        drop(reader);
    }
    assert!(matches!(
        read_terminal(&mut r_filler),
        Response::Result { .. }
    ));

    // The abandoned job winds down via its token well before its 5 s
    // give-up horizon.
    let deadline = Instant::now() + Duration::from_secs(3);
    while !observed_cancel.load(Ordering::SeqCst) {
        assert!(
            Instant::now() < deadline,
            "runner never observed the disconnect cancellation"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // Cancelled work is not a result: the key must re-solve, not hit.
    let repeat = roundtrip(addr, &Request::Verify(VerifyRequest::new(6, 1)));
    assert!(
        matches!(
            repeat,
            Response::Result {
                disposition: Disposition::Miss,
                ..
            }
        ),
        "a cancelled job must never be cached: {repeat:?}"
    );
    handle.shutdown();
}

/// With `cancel_on_drain`, shutdown trips every outstanding token: the
/// in-flight cooperative job winds down, the queued job resolves as
/// cancelled, and both clients get structured errors — promptly.
#[test]
fn cancel_on_drain_unblocks_in_flight_and_queued_jobs() {
    let _guard = chaos::plan(2).arm(); // no faults; serializes vs other chaos tests
    let handle = Server::start(ServerConfig {
        workers: 1,
        cancel_on_drain: true,
        runner: Arc::new(
            |_job: &JobSpec, cancel: &CancelToken, _deadline: Option<Duration>| {
                let deadline = Instant::now() + Duration::from_secs(10);
                while Instant::now() < deadline {
                    if cancel.is_cancelled() {
                        return Ok(Verification::cancelled(
                            Default::default(),
                            Default::default(),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Ok(canned())
            },
        ),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    let clients: Vec<_> = [(4usize, 1usize), (6, 1)]
        .into_iter()
        .map(|(size, width)| {
            std::thread::spawn(move || {
                roundtrip(addr, &Request::Verify(VerifyRequest::new(size, width)))
            })
        })
        .collect();
    // Wait until one job occupies the worker and the other is queued.
    loop {
        let Response::Stats(s) = roundtrip(addr, &Request::Stats) else {
            panic!()
        };
        if s.active_jobs == 1 && s.queue_depth == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let drained = Instant::now();
    handle.shutdown();
    assert!(
        drained.elapsed() < Duration::from_secs(5),
        "cancel-on-drain must not wait out a 10 s job"
    );
    for client in clients {
        let response = client.join().expect("client thread");
        let Response::Error { message } = &response else {
            panic!("drained job must answer with an error: {response:?}");
        };
        assert!(message.contains("cancelled"), "{message}");
    }
}
