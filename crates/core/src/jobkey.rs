//! Content-addressed job keys.
//!
//! The verification pipeline is deterministic: the same configuration,
//! strategy, seeded bug, resource limits, and flags always produce the
//! same EUFM formula and the same verdict. A [`JobKey`] captures exactly
//! the inputs that determine the result, so identical jobs can be
//! recognized — by the campaign orchestrator (intra-sweep deduplication)
//! and by the `rob-serve` daemon (cross-request result cache).
//!
//! A key has two faces:
//!
//! - the **canonical string** ([`JobKey::canonical`]) — an exact,
//!   human-readable rendering of every input; cache lookups compare this
//!   string, so there are no hash-collision soundness concerns;
//! - the **digest** ([`JobKey::digest_hex`]) — a stable FNV-1a/64 hash of
//!   the canonical string, used for display and log correlation. FNV is
//!   used (not `DefaultHasher`) because `std`'s SipHash keys are
//!   randomized per process, and keys must be stable across daemon
//!   restarts for the persisted cache to warm up.
//!
//! Every key embeds [`CODE_FINGERPRINT`]. Bump [`SCHEMA_VERSION`] whenever
//! a change to the pipeline can alter any verdict, statistic, or timing
//! semantics: old persisted cache entries then miss instead of serving
//! stale results.

use crate::{BugSpec, Config, Limits, Strategy};

/// Bump on any semantic change to the verification pipeline. Part of
/// [`CODE_FINGERPRINT`], so bumping it invalidates all persisted cache
/// entries.
pub const SCHEMA_VERSION: u32 = 1;

/// Identifies the code that produced a cached result: crate version plus
/// the manually-maintained [`SCHEMA_VERSION`].
pub const CODE_FINGERPRINT: &str = concat!(env!("CARGO_PKG_VERSION"), "+s1");

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a/64 over a byte string. Stable across processes and platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The content-addressed identity of one verification job.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobKey {
    canonical: String,
    digest: u64,
}

impl JobKey {
    /// Derives the key for a job from everything that determines its
    /// result.
    pub fn derive(
        config: &Config,
        strategy: Strategy,
        bug: Option<BugSpec>,
        sat_limits: &Limits,
        check_proofs: bool,
        audit: bool,
    ) -> JobKey {
        let bug = bug.map_or_else(|| "-".to_owned(), |b| b.to_string());
        let limits = format!(
            "c:{},t:{},m:{}",
            opt(sat_limits.max_conflicts),
            opt(sat_limits.max_seconds),
            opt(sat_limits.max_learnt_literals),
        );
        let canonical = format!(
            "fp={fp}|rob={n}|w={k}|strategy={strategy}|bug={bug}|limits={limits}|proofs={p}|audit={a}",
            fp = CODE_FINGERPRINT,
            n = config.rob_size(),
            k = config.issue_width(),
            p = u8::from(check_proofs),
            a = u8::from(audit),
        );
        let digest = fnv1a(canonical.as_bytes());
        JobKey { canonical, digest }
    }

    /// Reconstructs a key from a previously stored canonical string (the
    /// persisted-cache load path). The digest is recomputed, so a record
    /// whose stored digest disagrees can be detected by the caller.
    pub fn from_canonical(canonical: impl Into<String>) -> JobKey {
        let canonical = canonical.into();
        let digest = fnv1a(canonical.as_bytes());
        JobKey { canonical, digest }
    }

    /// The exact canonical rendering (the true cache key).
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The 64-bit FNV-1a digest of the canonical string.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The digest as 16 lowercase hex digits.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest)
    }
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.digest)
    }
}

fn opt<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map_or_else(|| "-".to_owned(), |x| x.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Operand;

    fn key(n: usize, k: usize, strategy: Strategy) -> JobKey {
        JobKey::derive(
            &Config::new(n, k).unwrap(),
            strategy,
            None,
            &Limits::none(),
            false,
            false,
        )
    }

    #[test]
    fn identical_inputs_agree_and_any_field_changes_the_key() {
        let base = key(8, 2, Strategy::default());
        assert_eq!(base, key(8, 2, Strategy::default()));
        assert_ne!(base, key(9, 2, Strategy::default()));
        assert_ne!(base, key(8, 1, Strategy::default()));
        assert_ne!(base, key(8, 2, Strategy::PositiveEqualityOnly));
        let bugged = JobKey::derive(
            &Config::new(8, 2).unwrap(),
            Strategy::default(),
            Some(BugSpec::ForwardingIgnoresValidResult {
                slice: 3,
                operand: Operand::Src1,
            }),
            &Limits::none(),
            false,
            false,
        );
        assert_ne!(base, bugged);
        let limited = JobKey::derive(
            &Config::new(8, 2).unwrap(),
            Strategy::default(),
            None,
            &Limits {
                max_conflicts: Some(100),
                ..Limits::none()
            },
            false,
            false,
        );
        assert_ne!(base, limited);
        let audited = JobKey::derive(
            &Config::new(8, 2).unwrap(),
            Strategy::default(),
            None,
            &Limits::none(),
            false,
            true,
        );
        assert_ne!(base, audited);
    }

    #[test]
    fn digest_is_stable_across_reconstruction() {
        let k = key(4, 2, Strategy::default());
        let back = JobKey::from_canonical(k.canonical());
        assert_eq!(k, back);
        assert_eq!(k.digest_hex(), back.digest_hex());
        assert_eq!(k.digest_hex().len(), 16);
        assert!(k.canonical().contains(CODE_FINGERPRINT));
    }

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a/64 test vector.
        assert_eq!(super::fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(super::fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
