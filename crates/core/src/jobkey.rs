//! Content-addressed job keys.
//!
//! The verification pipeline is deterministic: the same configuration,
//! strategy, seeded bug, resource limits, and flags always produce the
//! same EUFM formula and the same verdict. A [`JobKey`] captures exactly
//! the inputs that determine the result, so identical jobs can be
//! recognized — by the campaign orchestrator (intra-sweep deduplication)
//! and by the `rob-serve` daemon (cross-request result cache).
//!
//! A key has two faces:
//!
//! - the **canonical string** ([`JobKey::canonical`]) — an exact,
//!   human-readable rendering of every input; cache lookups compare this
//!   string, so there are no hash-collision soundness concerns;
//! - the **digest** ([`JobKey::digest_hex`]) — a stable FNV-1a/64 hash of
//!   the canonical string, used for display and log correlation. FNV is
//!   used (not `DefaultHasher`) because `std`'s SipHash keys are
//!   randomized per process, and keys must be stable across daemon
//!   restarts for the persisted cache to warm up.
//!
//! Every key embeds [`CODE_FINGERPRINT`]. Bump [`SCHEMA_VERSION`] whenever
//! a change to the pipeline can alter any verdict, statistic, or timing
//! semantics: old persisted cache entries then miss instead of serving
//! stale results.

use std::time::Duration;

use crate::{BugSpec, Config, Limits, Strategy};

/// Bump on any semantic change to the verification pipeline. Part of
/// [`CODE_FINGERPRINT`], so bumping it invalidates all persisted cache
/// entries.
///
/// v2: budget inputs (`rewrite_deadline`, `rewrite_max_nodes`,
/// `max_nodes`) joined the canonical string — they can flip a result to
/// a degraded PE-only verdict, so v1 keys conflated distinct jobs.
pub const SCHEMA_VERSION: u32 = 2;

/// Identifies the code that produced a cached result: crate version plus
/// the manually-maintained [`SCHEMA_VERSION`].
pub const CODE_FINGERPRINT: &str = concat!(env!("CARGO_PKG_VERSION"), "+s2");

/// The resource budgets that shape a job's result.
///
/// Budgets are key inputs, not tuning noise: exhausting the rewrite
/// deadline or a node budget sends the run down the degradation ladder
/// (rewrite → PE-only → budget-stop), changing the reported statistics
/// and possibly the verdict. The default (all unlimited) matches
/// [`Verifier::new`](crate::Verifier::new).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JobBudgets {
    /// Private deadline for the rewrite phase (`None` = unlimited).
    pub rewrite_deadline: Option<Duration>,
    /// Rewrite-phase expression-node budget (0 = unlimited).
    pub rewrite_max_nodes: usize,
    /// Translation expression-node budget (0 = unlimited).
    pub max_nodes: usize,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a/64 over a byte string. Stable across processes and platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The content-addressed identity of one verification job.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobKey {
    canonical: String,
    digest: u64,
}

impl JobKey {
    /// Derives the key for a job from everything that determines its
    /// result.
    pub fn derive(
        config: &Config,
        strategy: Strategy,
        bug: Option<BugSpec>,
        sat_limits: &Limits,
        budgets: &JobBudgets,
        check_proofs: bool,
        audit: bool,
    ) -> JobKey {
        let bug = bug.map_or_else(|| "-".to_owned(), |b| b.to_string());
        let limits = format!(
            "c:{},t:{},m:{}",
            opt(sat_limits.max_conflicts),
            opt(sat_limits.max_seconds),
            opt(sat_limits.max_learnt_literals),
        );
        // Nanosecond rendering keeps the deadline exact and integral —
        // no float-formatting ambiguity in the canonical string.
        let budget = format!(
            "rwdl:{},rwn:{},n:{}",
            opt(budgets.rewrite_deadline.map(|d| d.as_nanos())),
            budgets.rewrite_max_nodes,
            budgets.max_nodes,
        );
        let canonical = format!(
            "fp={fp}|rob={n}|w={k}|strategy={strategy}|bug={bug}|limits={limits}|budget={budget}|proofs={p}|audit={a}",
            fp = CODE_FINGERPRINT,
            n = config.rob_size(),
            k = config.issue_width(),
            p = u8::from(check_proofs),
            a = u8::from(audit),
        );
        let digest = fnv1a(canonical.as_bytes());
        JobKey { canonical, digest }
    }

    /// Reconstructs a key from a previously stored canonical string (the
    /// persisted-cache load path). The digest is recomputed, so a record
    /// whose stored digest disagrees can be detected by the caller.
    pub fn from_canonical(canonical: impl Into<String>) -> JobKey {
        let canonical = canonical.into();
        let digest = fnv1a(canonical.as_bytes());
        JobKey { canonical, digest }
    }

    /// The exact canonical rendering (the true cache key).
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The 64-bit FNV-1a digest of the canonical string.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The digest as 16 lowercase hex digits.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest)
    }
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.digest)
    }
}

fn opt<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map_or_else(|| "-".to_owned(), |x| x.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Operand;

    fn key(n: usize, k: usize, strategy: Strategy) -> JobKey {
        JobKey::derive(
            &Config::new(n, k).unwrap(),
            strategy,
            None,
            &Limits::none(),
            &JobBudgets::default(),
            false,
            false,
        )
    }

    #[test]
    fn identical_inputs_agree_and_any_field_changes_the_key() {
        let base = key(8, 2, Strategy::default());
        assert_eq!(base, key(8, 2, Strategy::default()));
        assert_ne!(base, key(9, 2, Strategy::default()));
        assert_ne!(base, key(8, 1, Strategy::default()));
        assert_ne!(base, key(8, 2, Strategy::PositiveEqualityOnly));
        let bugged = JobKey::derive(
            &Config::new(8, 2).unwrap(),
            Strategy::default(),
            Some(BugSpec::ForwardingIgnoresValidResult {
                slice: 3,
                operand: Operand::Src1,
            }),
            &Limits::none(),
            &JobBudgets::default(),
            false,
            false,
        );
        assert_ne!(base, bugged);
        let limited = JobKey::derive(
            &Config::new(8, 2).unwrap(),
            Strategy::default(),
            None,
            &Limits {
                max_conflicts: Some(100),
                ..Limits::none()
            },
            &JobBudgets::default(),
            false,
            false,
        );
        assert_ne!(base, limited);
        let audited = JobKey::derive(
            &Config::new(8, 2).unwrap(),
            Strategy::default(),
            None,
            &Limits::none(),
            &JobBudgets::default(),
            false,
            true,
        );
        assert_ne!(base, audited);
    }

    #[test]
    fn budgeted_and_unbudgeted_jobs_derive_different_keys() {
        // Regression (cache soundness): budgets can flip a result to a
        // degraded PE-only verdict, so they must be key inputs. Before
        // schema v2 these four jobs shared one key.
        let base = key(8, 2, Strategy::default());
        let derive_with = |budgets: JobBudgets| {
            JobKey::derive(
                &Config::new(8, 2).unwrap(),
                Strategy::default(),
                None,
                &Limits::none(),
                &budgets,
                false,
                false,
            )
        };
        let deadlined = derive_with(JobBudgets {
            rewrite_deadline: Some(Duration::from_millis(1)),
            ..JobBudgets::default()
        });
        let rewrite_capped = derive_with(JobBudgets {
            rewrite_max_nodes: 1_000,
            ..JobBudgets::default()
        });
        let node_capped = derive_with(JobBudgets {
            max_nodes: 50_000,
            ..JobBudgets::default()
        });
        assert_ne!(base, deadlined);
        assert_ne!(base, rewrite_capped);
        assert_ne!(base, node_capped);
        assert_ne!(deadlined, rewrite_capped);
        assert_ne!(rewrite_capped, node_capped);
        assert_eq!(
            derive_with(JobBudgets::default()),
            base,
            "default budgets match the bare derivation"
        );
    }

    #[test]
    fn digest_is_stable_across_reconstruction() {
        let k = key(4, 2, Strategy::default());
        let back = JobKey::from_canonical(k.canonical());
        assert_eq!(k, back);
        assert_eq!(k.digest_hex(), back.digest_hex());
        assert_eq!(k.digest_hex().len(), 16);
        assert!(k.canonical().contains(CODE_FINGERPRINT));
    }

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a/64 test vector.
        assert_eq!(super::fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(super::fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
