//! `lint` — run the rob-lint audit battery over one verification
//! configuration.
//!
//! ```text
//! lint --size 6 --width 2 --strategy rewrite+pe
//! lint --size 6 --width 2 --bug forwarding-ignores-valid:3:src1 --expect-diagnosis
//! ```
//!
//! The full pipeline runs with every audit pass enabled: well-formedness,
//! Positive-Equality soundness, phase-transition invariants, and rewrite
//! certificate replay. Diagnostics are rendered to stderr (rustc-style)
//! and optionally streamed as JSON lines.
//!
//! Exit status: 0 when the run matches expectations — a bug-free
//! configuration verifies with zero Error diagnostics, or (with
//! `--expect-diagnosis`) a seeded bug is caught with at least one Error
//! diagnostic; 1 otherwise; 2 for usage errors.

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::process::ExitCode;

use rob_verify::{lint, BugSpec, Config, Strategy, Verdict, Verifier};

const USAGE: &str = "\
usage: lint [options]

Runs the rob-lint static-analysis and invariant-audit battery over a
single verification configuration.

options:
  --size N            reorder-buffer size (default 4)
  --width K           issue/retire width (default 2)
  --strategy S        rewrite+pe (default) or pe-only
  --bug SPEC          seed a design bug (kind:slice[:operand])
  --expect-diagnosis  succeed iff the run is falsified AND at least one
                      Error diagnostic is reported (for seeded bugs)
  --jsonl PATH        write diagnostics as JSON lines to PATH
  --quiet             suppress the human-readable diagnostic rendering
  --help              show this message
";

struct Args {
    size: usize,
    width: usize,
    strategy: Strategy,
    bug: Option<BugSpec>,
    expect_diagnosis: bool,
    jsonl: Option<String>,
    quiet: bool,
}

fn parse_args(argv: Vec<String>) -> Result<Args, String> {
    let mut args = Args {
        size: 4,
        width: 2,
        strategy: Strategy::default(),
        bug: None,
        expect_diagnosis: false,
        jsonl: None,
        quiet: false,
    };
    let mut iter = argv.into_iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--size" => {
                args.size = value("--size")?
                    .parse()
                    .map_err(|e| format!("--size: {e}"))?;
            }
            "--width" => {
                args.width = value("--width")?
                    .parse()
                    .map_err(|e| format!("--width: {e}"))?;
            }
            "--strategy" => {
                args.strategy = value("--strategy")?.parse()?;
            }
            "--bug" => {
                args.bug = Some(value("--bug")?.parse()?);
            }
            "--expect-diagnosis" => args.expect_diagnosis = true,
            "--jsonl" => args.jsonl = Some(value("--jsonl")?),
            "--quiet" => args.quiet = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn run(argv: Vec<String>) -> Result<bool, String> {
    let args = parse_args(argv)?;
    let config = Config::new(args.size, args.width).map_err(|e| e.to_string())?;
    let mut verifier = Verifier::new(config).strategy(args.strategy).audit(true);
    if let Some(bug) = args.bug {
        verifier = verifier.bug(bug);
    }
    let v = verifier.run().map_err(|e| e.to_string())?;

    if !args.quiet {
        for d in &v.diagnostics {
            eprintln!("{}", d.render());
        }
    }
    if let Some(path) = &args.jsonl {
        let mut writer =
            BufWriter::new(File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?);
        for d in &v.diagnostics {
            writeln!(writer, "{}", d.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        writer
            .flush()
            .map_err(|e| format!("cannot flush {path}: {e}"))?;
    }

    let errors = lint::error_count(&v.diagnostics);
    eprintln!(
        "lint: N={} k={} {}: verdict {}, {} diagnostics ({} errors), {:.2}s",
        args.size,
        args.width,
        args.strategy,
        v.verdict.label(),
        v.diagnostics.len(),
        errors,
        v.timings.total().as_secs_f64(),
    );

    let ok = if args.expect_diagnosis {
        v.verdict.is_falsification() && errors >= 1
    } else {
        v.verdict == Verdict::Verified && errors == 0
    };
    Ok(ok)
}

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("lint: audit expectations NOT met");
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("lint: {message}");
            eprintln!("run `lint --help` for usage");
            ExitCode::from(2)
        }
    }
}
