//! # rob-verify
//!
//! Formal verification of wide-issue out-of-order microprocessors with a
//! reorder buffer, reproducing Velev's DATE 2002 method: **rewriting rules
//! combined with Positive Equality**.
//!
//! The pipeline, end to end:
//!
//! 1. [`uarch`] generates an abstract out-of-order implementation processor
//!    (reorder buffer of `N` entries, issue/retire width `k`) and the
//!    non-pipelined ISA specification as word-level netlists.
//! 2. [`tlsim`] symbolically simulates both sides of the Burch–Dill
//!    commutative diagram, producing an EUFM correctness formula in an
//!    [`eufm`] expression context.
//! 3. [`evc`] translates the formula to propositional logic — optionally
//!    applying the **rewriting rules** first, which remove the
//!    out-of-order core from the formula entirely — exploiting **Positive
//!    Equality** for what remains.
//! 4. [`sat`] proves the negation unsatisfiable with a Chaff-style CDCL
//!    solver.
//!
//! This crate ties the stages together behind the [`Verifier`] API.
//!
//! # Quick start
//!
//! ```
//! use rob_verify::{Config, Strategy, Verdict, Verifier};
//!
//! // An 8-entry reorder buffer, issuing/retiring up to 2 per cycle.
//! let config = Config::new(8, 2)?;
//! let verification = Verifier::new(config)
//!     .strategy(Strategy::RewritingAndPositiveEquality)
//!     .run()?;
//! assert_eq!(verification.verdict, Verdict::Verified);
//! // Rewriting removed every e_ij variable (paper Table 5):
//! assert_eq!(verification.stats.eij_vars, 0);
//! # Ok::<(), rob_verify::VerifyError>(())
//! ```
//!
//! # Finding bugs
//!
//! ```
//! use rob_verify::{BugSpec, Config, Operand, Verdict, Verifier};
//!
//! let config = Config::new(8, 2)?;
//! let bug = BugSpec::ForwardingIgnoresValidResult { slice: 5, operand: Operand::Src2 };
//! let verification = Verifier::new(config).bug(bug).run()?;
//! match verification.verdict {
//!     Verdict::SliceDiagnosis { slice, .. } => assert_eq!(slice, 5),
//!     other => panic!("expected a slice diagnosis, got {other:?}"),
//! }
//! # Ok::<(), rob_verify::VerifyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub mod explain;
pub mod jobkey;

use evc::check::{
    check_validity_cancellable, memo_signature, CheckOptions, CheckOutcome, UnknownReason,
};
use evc::mem::MemoryModel;
use evc::rewrite::{
    rewrite_correctness_budgeted, RewriteBudget, RewriteError, RewriteInput, RewriteOptions,
};
use uarch::correctness::{self, CorrectnessBundle};

pub use eufm::CancelToken;
pub use jobkey::{JobBudgets, JobKey};
pub use sat::{Limits, SolverStats};
pub use tlsim::EvalStrategy;
pub use uarch::{BugSpec, Config, Operand, UarchError};

/// Re-export of the static-analysis crate, so downstream users (the
/// campaign orchestrator, the `lint` CLI) can name diagnostic types
/// without a direct dependency.
pub use lint;

/// Re-export of the tracing/metrics crate, so downstream users (the
/// campaign orchestrator, `robd`, the bench harness) can open sessions
/// and read metrics without a direct dependency.
pub use trace;

/// Re-export of the obligation-memoization crate, so orchestration
/// layers can construct and share [`memo::MemoHandle`]s without a direct
/// dependency. Stores should be created with
/// [`jobkey::CODE_FINGERPRINT`] (see [`memo_handle`]) so a pipeline
/// change invalidates them.
pub use memo;

/// A fresh in-memory memo store gated by this build's
/// [`jobkey::CODE_FINGERPRINT`] — the handle orchestration layers bind
/// around runs (see [`Verifier::memo`]).
pub fn memo_handle() -> memo::MemoHandle {
    memo::new_handle(jobkey::CODE_FINGERPRINT)
}

/// How the EUFM correctness formula is discharged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Positive Equality alone (the paper's Sect. 7.1 baseline): exact
    /// forwarding memory model, `e_ij` encoding of register-identifier
    /// comparisons. Blows up rapidly with the reorder-buffer size.
    PositiveEqualityOnly,
    /// Rewriting rules first, then Positive Equality with the conservative
    /// memory model (the paper's contribution, Sect. 7.2). Up to five
    /// orders of magnitude faster; CNF size independent of the
    /// reorder-buffer size.
    #[default]
    RewritingAndPositiveEquality,
}

/// The stable labels used by sweep files, the campaign CLI, and JSONL
/// telemetry: `pe-only` and `rewrite+pe`.
impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::PositiveEqualityOnly => f.write_str("pe-only"),
            Strategy::RewritingAndPositiveEquality => f.write_str("rewrite+pe"),
        }
    }
}

/// Accepts the [`Display`](std::fmt::Display) labels plus common aliases
/// (`pe`, `positive-equality`, `rewrite`, `rewriting`).
impl std::str::FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "pe-only" | "pe" | "positive-equality" => Ok(Strategy::PositiveEqualityOnly),
            "rewrite+pe" | "rewrite" | "rewriting" | "rewriting+pe" => {
                Ok(Strategy::RewritingAndPositiveEquality)
            }
            other => Err(format!(
                "unknown strategy {other:?} (expected pe-only or rewrite+pe)"
            )),
        }
    }
}

/// The verification verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The implementation is correct: the correctness formula is valid.
    Verified,
    /// The correctness formula is falsifiable; the listed primary variables
    /// are true in one counterexample.
    Falsified {
        /// Names of the primary Boolean variables assigned true.
        true_vars: Vec<String>,
    },
    /// A rewriting rule failed on a specific computation slice: the slice
    /// does not conform to the expected structure and is suspect (subject
    /// to the paper's false-negative caveat).
    SliceDiagnosis {
        /// The offending 1-based reorder-buffer slice.
        slice: usize,
        /// What failed.
        reason: String,
    },
    /// A resource limit (time, conflicts, node budget) was reached — the
    /// graceful analogue of the paper's out-of-memory cells.
    ResourceLimit(String),
}

impl Verdict {
    /// A stable, machine-readable label for telemetry (`verified`,
    /// `falsified`, `slice-diagnosis`, `resource-limit`).
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Verified => "verified",
            Verdict::Falsified { .. } => "falsified",
            Verdict::SliceDiagnosis { .. } => "slice-diagnosis",
            Verdict::ResourceLimit(_) => "resource-limit",
        }
    }

    /// Whether the verdict reports a falsification — an explicit
    /// counterexample or a slice diagnosis.
    pub fn is_falsification(&self) -> bool {
        matches!(
            self,
            Verdict::Falsified { .. } | Verdict::SliceDiagnosis { .. }
        )
    }
}

/// Per-phase wall-clock timings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Symbolic simulation: generating the EUFM correctness formula
    /// (paper Table 1).
    pub generate: Duration,
    /// Rewriting rules (zero for [`Strategy::PositiveEqualityOnly`]).
    pub rewrite: Duration,
    /// EUFM-to-CNF translation (paper Tables 2/4).
    pub translate: Duration,
    /// SAT solving (paper Tables 2/5).
    pub sat: Duration,
    /// Independent DRUP proof checking (zero unless requested).
    pub proof_check: Duration,
}

impl PhaseTimings {
    /// Total wall-clock time across all phases.
    pub fn total(&self) -> Duration {
        self.generate + self.rewrite + self.translate + self.sat + self.proof_check
    }
}

/// Headline statistics of a verification run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerificationStats {
    /// `e_ij` variables in the final propositional formula (paper
    /// Tables 3/5).
    pub eij_vars: usize,
    /// Other primary Boolean variables.
    pub other_vars: usize,
    /// CNF variables.
    pub cnf_vars: usize,
    /// CNF clauses.
    pub cnf_clauses: usize,
    /// Distinct EUFM nodes after formula generation.
    pub formula_nodes: usize,
    /// SAT conflicts.
    pub sat_conflicts: u64,
    /// SAT decisions.
    pub sat_decisions: u64,
    /// SAT literal propagations.
    pub sat_propagations: u64,
    /// Rewriting obligations discharged (zero for PE-only).
    pub rewrite_obligations: usize,
    /// Rewriting obligations discharged by the syntactic fast path.
    pub rewrite_syntactic: usize,
    /// Retire-width update pairs merged by the rewriting rules.
    pub retire_pairs: usize,
    /// When proof checking was requested and the verdict is
    /// [`Verdict::Verified`]: whether the independent DRUP checker
    /// accepted the solver's unsatisfiability proof.
    pub proof_checked: Option<bool>,
}

/// Short alias for [`VerificationStats`], used by the campaign
/// orchestrator's telemetry.
pub type VerifyStats = VerificationStats;

/// How a run fell down the degradation ladder
/// (rewrite → PE-only → budget-stop) while still producing a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degradation {
    /// The rewrite phase was cancelled (its private deadline expired or
    /// its token was tripped without the whole job being cancelled); the
    /// translation was retried Positive-Equality-only.
    RewriteCancelled,
    /// The rewrite phase exhausted its node budget; retried PE-only.
    RewriteBudget,
}

impl Degradation {
    /// Stable telemetry label (`rewrite-cancelled` / `rewrite-budget`).
    pub fn label(&self) -> &'static str {
        match self {
            Degradation::RewriteCancelled => "rewrite-cancelled",
            Degradation::RewriteBudget => "rewrite-budget",
        }
    }

    /// Parses a [`Degradation::label`] back.
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "rewrite-cancelled" => Some(Degradation::RewriteCancelled),
            "rewrite-budget" => Some(Degradation::RewriteBudget),
            _ => None,
        }
    }
}

/// The result of a verification run.
#[derive(Debug, Clone, PartialEq)]
pub struct Verification {
    /// The verdict.
    pub verdict: Verdict,
    /// Per-phase timings.
    pub timings: PhaseTimings,
    /// Statistics.
    pub stats: VerificationStats,
    /// Static-analysis diagnostics from the audit passes (empty unless
    /// auditing is enabled; see [`Verifier::audit`]).
    pub diagnostics: Vec<lint::Diagnostic>,
    /// Set when the verdict was reached on a degraded path (e.g. the
    /// rewrite phase gave up and the run fell back to PE-only).
    pub degraded: Option<Degradation>,
}

impl Verification {
    /// The stable [`Verdict::ResourceLimit`] reason recorded when a run is
    /// cooperatively cancelled.
    pub const CANCELLED_REASON: &'static str = "cancelled";

    /// Whether the verdict is [`Verdict::Verified`].
    pub fn is_verified(&self) -> bool {
        self.verdict == Verdict::Verified
    }

    /// A structured result for a cooperatively cancelled run, carrying
    /// whatever partial timings and statistics were gathered.
    pub fn cancelled(timings: PhaseTimings, stats: VerificationStats) -> Self {
        Verification {
            verdict: Verdict::ResourceLimit(Self::CANCELLED_REASON.to_owned()),
            timings,
            stats,
            diagnostics: Vec::new(),
            degraded: None,
        }
    }

    /// Whether this run was cooperatively cancelled (as opposed to hitting
    /// an ordinary resource limit).
    pub fn was_cancelled(&self) -> bool {
        matches!(&self.verdict, Verdict::ResourceLimit(r) if r == Self::CANCELLED_REASON)
    }
}

/// Errors from the verification driver (configuration and structural
/// problems; *verdicts* are reported through [`Verification`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Model generation failed.
    Uarch(UarchError),
    /// The rewriting engine found the formula structurally alien (not a
    /// slice-local failure).
    Structure(String),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Uarch(e) => write!(f, "{e}"),
            VerifyError::Structure(msg) => write!(f, "structural mismatch: {msg}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<UarchError> for VerifyError {
    fn from(e: UarchError) -> Self {
        VerifyError::Uarch(e)
    }
}

/// The end-to-end verification driver.
///
/// Configure with the builder-style methods and execute with
/// [`Verifier::run`]. See the crate-level examples.
#[derive(Debug, Clone)]
pub struct Verifier {
    config: Config,
    bug: Option<BugSpec>,
    strategy: Strategy,
    eval: EvalStrategy,
    sat_limits: Limits,
    max_nodes: usize,
    transitivity: bool,
    check_proof: bool,
    audit: bool,
    cancel: CancelToken,
    rewrite_deadline: Option<Duration>,
    rewrite_max_nodes: usize,
    memo: Option<memo::MemoHandle>,
}

impl Verifier {
    /// Creates a verifier for the given processor configuration.
    pub fn new(config: Config) -> Self {
        Verifier {
            config,
            bug: None,
            strategy: Strategy::default(),
            eval: EvalStrategy::Lazy,
            sat_limits: Limits::none(),
            max_nodes: 0,
            transitivity: true,
            check_proof: false,
            audit: cfg!(debug_assertions),
            cancel: CancelToken::new(),
            rewrite_deadline: None,
            rewrite_max_nodes: 0,
            memo: None,
        }
    }

    /// Seeds a design defect (for bug-hunting experiments).
    pub fn bug(mut self, bug: BugSpec) -> Self {
        self.bug = Some(bug);
        self
    }

    /// Selects the translation strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Selects the symbolic-evaluation strategy (lazy cone-of-influence by
    /// default).
    pub fn eval(mut self, eval: EvalStrategy) -> Self {
        self.eval = eval;
        self
    }

    /// Bounds the SAT search.
    pub fn sat_limits(mut self, limits: Limits) -> Self {
        self.sat_limits = limits;
        self
    }

    /// Bounds the translation's expression-node growth (0 = unlimited).
    pub fn max_nodes(mut self, max_nodes: usize) -> Self {
        self.max_nodes = max_nodes;
        self
    }

    /// Attaches a cooperative cancellation token, polled by every phase:
    /// symbolic simulation steps, rewrite-obligation loops, the
    /// Positive-Equality encoder, and the SAT search. A tripped token
    /// yields a structured cancelled result (see
    /// [`Verification::was_cancelled`]) instead of an abandoned thread.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Gives the rewrite phase a private deadline. On expiry the run
    /// *degrades* to a Positive-Equality-only translation (sound:
    /// rewriting is an optimization over PE) instead of failing; the
    /// fallback is recorded in [`Verification::degraded`].
    pub fn rewrite_deadline(mut self, deadline: Duration) -> Self {
        self.rewrite_deadline = Some(deadline);
        self
    }

    /// Bounds the rewrite phase's expression-node growth (0 = unlimited);
    /// on exhaustion the run degrades to PE-only, like
    /// [`Verifier::rewrite_deadline`].
    pub fn rewrite_max_nodes(mut self, max_nodes: usize) -> Self {
        self.rewrite_max_nodes = max_nodes;
        self
    }

    /// Shares an obligation-memoization store with this run: rewrite
    /// obligations, Positive-Equality classifications, and valid main
    /// solves are answered from the store when a structurally identical
    /// query was discharged before (by this run, an earlier run, or —
    /// through the daemon's persisted store — an earlier process).
    ///
    /// The handle is bound as the thread-ambient store for the duration
    /// of [`Verifier::run`]; orchestration layers that bind their own
    /// ambient store ([`memo::bind`]) around a pool worker don't need
    /// this. Memoization never changes a verdict or a reported
    /// statistic — warm and cold runs are field-for-field identical.
    pub fn memo(mut self, handle: memo::MemoHandle) -> Self {
        self.memo = Some(handle);
        self
    }

    /// Enables or disables transitivity constraints over `e_ij` variables.
    pub fn transitivity(mut self, enabled: bool) -> Self {
        self.transitivity = enabled;
        self
    }

    /// Logs and independently checks a DRUP unsatisfiability proof for
    /// `Verified` verdicts (see [`VerificationStats::proof_checked`]).
    pub fn proof_checking(mut self, enabled: bool) -> Self {
        self.check_proof = enabled;
        self
    }

    /// Enables or disables the static-analysis audit passes (`rob-lint`):
    /// well-formedness, Positive-Equality soundness, phase-transition
    /// invariants, and rewrite-certificate replay. Diagnostics land in
    /// [`Verification::diagnostics`]. On by default under
    /// `debug_assertions`, off in release builds.
    pub fn audit(mut self, enabled: bool) -> Self {
        self.audit = enabled;
        self
    }

    /// Generates the correctness formula and discharges it.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] for configuration or global structural
    /// failures. Verification *verdicts* — including bug diagnoses and
    /// resource exhaustion — are reported in the returned
    /// [`Verification`].
    pub fn run(&self) -> Result<Verification, VerifyError> {
        let span_run = trace::span("verify");
        span_run.attr("config", self.config);
        span_run.attr("strategy", self.strategy);
        let _memo_guard = self.memo.clone().map(memo::bind);
        let mut timings = PhaseTimings::default();
        let mut stats = VerificationStats::default();
        if self.cancel.is_cancelled() {
            return Ok(Verification::cancelled(timings, stats));
        }
        let t0 = Instant::now();
        let span_generate = trace::span("generate");
        let mut bundle: CorrectnessBundle = match correctness::generate_cancellable(
            &self.config,
            self.bug,
            self.eval,
            &self.cancel,
        ) {
            Ok(bundle) => bundle,
            Err(UarchError::Sim(tlsim::SimError::Cancelled)) => {
                timings.generate = t0.elapsed();
                return Ok(Verification::cancelled(timings, stats));
            }
            Err(e) => return Err(e.into()),
        };
        timings.generate = t0.elapsed();
        drop(span_generate);
        stats.formula_nodes = bundle.stats.ctx_nodes;

        let mut rewrite_diags: Vec<lint::Diagnostic> = Vec::new();
        let mut degraded: Option<Degradation> = None;
        let (formula, memory) = match self.strategy {
            Strategy::PositiveEqualityOnly => (bundle.formula, MemoryModel::Forwarding),
            Strategy::RewritingAndPositiveEquality => {
                let t1 = Instant::now();
                let input = RewriteInput {
                    formula: bundle.formula,
                    rf_impl: bundle.rf_impl,
                    rf_spec0: bundle.rf_spec[0],
                };
                // Pipeline memoization: a successful rewrite of this exact
                // correctness formula is keyed by the content digests of
                // its inputs; the stored record carries the rewrite stats
                // and the digest of the rewritten formula, which chains
                // into the main-solve record. When both hit, the whole
                // rewrite + check pipeline is replayed from the store.
                // Audited and proof-checked runs always execute — their
                // deliverables are not in the records.
                let pipeline_store = if self.audit || self.check_proof {
                    None
                } else {
                    memo::current()
                };
                let rewrite_key = pipeline_store.map(|store| {
                    let mut digester = memo::Digester::new();
                    let context = format!(
                        "rewrite|impl={}|spec0={}",
                        eufm::digest::digest_hex(digester.digest(&bundle.ctx, input.rf_impl)),
                        eufm::digest::digest_hex(digester.digest(&bundle.ctx, input.rf_spec0)),
                    );
                    let key = memo::derive_key(
                        memo::MemoKind::Rewrite,
                        digester.digest(&bundle.ctx, input.formula),
                        &context,
                    );
                    (store, key)
                });
                if let Some((store, key)) = &rewrite_key {
                    if let Some(memo::MemoValue::Rewrite(rw)) =
                        store.lookup(memo::MemoKind::Rewrite, *key)
                    {
                        // A recorded rewrite always succeeded, so the
                        // follow-on check ran under the conservative
                        // memory model; only a recorded *valid* solve is
                        // replayable (diagnoses carry un-recorded detail).
                        let solve_key = memo::derive_key(
                            memo::MemoKind::Solve,
                            rw.formula_digest,
                            &memo_signature(&CheckOptions {
                                memory: MemoryModel::Conservative,
                                transitivity: self.transitivity,
                                ..CheckOptions::default()
                            }),
                        );
                        if let Some(memo::MemoValue::Solve(rec)) =
                            store.lookup(memo::MemoKind::Solve, solve_key)
                        {
                            if rec.valid {
                                timings.rewrite = t1.elapsed();
                                stats.rewrite_obligations = rw.obligations as usize;
                                stats.rewrite_syntactic = rw.syntactic_hits as usize;
                                stats.retire_pairs = rw.retire_pairs as usize;
                                stats.eij_vars = rec.eij_vars as usize;
                                stats.other_vars = rec.other_vars as usize;
                                stats.cnf_vars = rec.cnf_vars as usize;
                                stats.cnf_clauses = rec.cnf_clauses as usize;
                                stats.sat_conflicts = rec.conflicts;
                                stats.sat_decisions = rec.decisions;
                                stats.sat_propagations = rec.propagations;
                                return Ok(Verification {
                                    verdict: Verdict::Verified,
                                    timings,
                                    stats,
                                    diagnostics: Vec::new(),
                                    degraded: None,
                                });
                            }
                        }
                    }
                }
                // The rewrite phase gets a child token so its private
                // deadline degrades only this phase, while a trip of the
                // job-level token still cancels the whole run.
                let budget = RewriteBudget {
                    cancel: match self.rewrite_deadline {
                        Some(deadline) => self.cancel.child_with_deadline(deadline),
                        None => self.cancel.child(),
                    },
                    max_nodes: self.rewrite_max_nodes,
                };
                let (result, cert) = rewrite_correctness_budgeted(
                    &mut bundle.ctx,
                    &input,
                    &RewriteOptions::default(),
                    &budget,
                );
                timings.rewrite = t1.elapsed();
                if self.audit {
                    let mut diags = lint::Diagnostics::new();
                    if let Err(RewriteError::Slice { slice, reason }) = &result {
                        diags.emit(
                            lint::Code::RewriteAborted,
                            format!("rewrite aborted at slice {slice}: {reason}"),
                        );
                    }
                    lint::rewrite::replay(&mut bundle.ctx, &cert, &mut diags);
                    rewrite_diags = diags.finish();
                }
                match result {
                    Ok(outcome) => {
                        stats.rewrite_obligations = outcome.obligations;
                        stats.rewrite_syntactic = outcome.syntactic_hits;
                        stats.retire_pairs = outcome.retire_pairs;
                        if let Some((store, key)) = &rewrite_key {
                            store.insert(
                                *key,
                                memo::MemoValue::Rewrite(memo::RewriteRecord {
                                    obligations: outcome.obligations as u64,
                                    syntactic_hits: outcome.syntactic_hits as u64,
                                    retire_pairs: outcome.retire_pairs as u64,
                                    formula_digest: memo::Digester::new()
                                        .digest(&bundle.ctx, outcome.formula),
                                }),
                            );
                        }
                        (outcome.formula, MemoryModel::Conservative)
                    }
                    Err(RewriteError::Slice { slice, reason }) => {
                        return Ok(Verification {
                            verdict: Verdict::SliceDiagnosis { slice, reason },
                            timings,
                            stats,
                            diagnostics: rewrite_diags,
                            degraded: None,
                        })
                    }
                    Err(RewriteError::Cancelled) if self.cancel.is_cancelled() => {
                        // The *job* was cancelled, not just the phase.
                        return Ok(Verification::cancelled(timings, stats));
                    }
                    Err(reason @ (RewriteError::Cancelled | RewriteError::Budget)) => {
                        // Degradation ladder: rewriting is an optimization
                        // over Positive Equality, so retry the original
                        // formula PE-only with the exact memory model.
                        degraded = Some(match reason {
                            RewriteError::Cancelled => Degradation::RewriteCancelled,
                            _ => Degradation::RewriteBudget,
                        });
                        (bundle.formula, MemoryModel::Forwarding)
                    }
                    Err(RewriteError::Structure(msg)) => return Err(VerifyError::Structure(msg)),
                }
            }
        };

        let options = CheckOptions {
            memory,
            transitivity: self.transitivity,
            sat_limits: self.sat_limits,
            max_nodes: self.max_nodes,
            check_proof: self.check_proof,
            audit: self.audit,
            ..CheckOptions::default()
        };
        let report = check_validity_cancellable(&mut bundle.ctx, formula, &options, &self.cancel);
        timings.translate = report.translate_time;
        timings.sat = report.sat_time;
        timings.proof_check = report.proof_check_time;
        stats.eij_vars = report.stats.eij_vars;
        stats.other_vars = report.stats.other_vars;
        stats.cnf_vars = report.stats.cnf_vars;
        stats.cnf_clauses = report.stats.cnf_clauses;
        stats.sat_conflicts = report.sat_stats.conflicts;
        stats.sat_decisions = report.sat_stats.decisions;
        stats.sat_propagations = report.sat_stats.propagations;
        stats.proof_checked = report.proof_checked;

        let verdict = match report.outcome {
            CheckOutcome::Valid => Verdict::Verified,
            CheckOutcome::Invalid { true_vars } => Verdict::Falsified { true_vars },
            CheckOutcome::Unknown(reason) => Verdict::ResourceLimit(match reason {
                UnknownReason::TranslationBudget => "translation node budget".to_owned(),
                UnknownReason::SatConflicts => "SAT conflict budget".to_owned(),
                UnknownReason::SatTime => "SAT time budget".to_owned(),
                UnknownReason::SatMemory => "SAT memory budget".to_owned(),
                UnknownReason::Cancelled => Verification::CANCELLED_REASON.to_owned(),
            }),
        };

        let mut diagnostics = rewrite_diags;
        diagnostics.extend(report.diagnostics);
        Ok(Verification {
            verdict,
            timings,
            stats,
            diagnostics,
            degraded,
        })
    }

    /// Like [`Verifier::run`], but collects the run's phase spans into a
    /// [`trace::SpanTree`] (root span `verify`, with `generate`, the evc
    /// phases, and the SAT phases nested beneath it).
    ///
    /// The [`Verification`] itself is unchanged — traces ride alongside
    /// it, so cached/serialized results stay byte-identical whether or
    /// not a run was traced.
    ///
    /// # Errors
    ///
    /// As [`Verifier::run`].
    pub fn run_traced(&self) -> Result<(Verification, trace::SpanTree), VerifyError> {
        let session = trace::session();
        let result = self.run();
        let tree = session.finish();
        result.map(|v| (v, tree))
    }
}

/// Convenience wrapper: verifies a bug-free processor with the default
/// (rewriting + Positive Equality) strategy.
///
/// # Errors
///
/// Propagates [`VerifyError`] from [`Verifier::run`].
///
/// # Example
///
/// ```
/// let ok = rob_verify::verify(rob_verify::Config::new(4, 2)?)?;
/// assert!(ok);
/// # Ok::<(), rob_verify::VerifyError>(())
/// ```
pub fn verify(config: Config) -> Result<bool, VerifyError> {
    Ok(Verifier::new(config).run()?.verdict == Verdict::Verified)
}

/// Re-export of the correctness-bundle generator for advanced use (direct
/// access to the EUFM formula and state expressions).
pub use uarch::correctness::generate as generate_correctness;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_strategy_verifies() {
        let config = Config::new(3, 2).expect("config");
        let v = Verifier::new(config).run().expect("run");
        assert_eq!(v.verdict, Verdict::Verified);
        assert_eq!(v.stats.eij_vars, 0);
        assert!(v.stats.rewrite_obligations > 0);
        assert_eq!(v.stats.retire_pairs, 2);
    }

    #[test]
    fn pe_only_strategy_verifies_small() {
        let config = Config::new(2, 1).expect("config");
        let v = Verifier::new(config)
            .strategy(Strategy::PositiveEqualityOnly)
            .run()
            .expect("run");
        assert_eq!(v.verdict, Verdict::Verified);
        assert!(v.stats.eij_vars > 0, "PE-only must use e_ij variables");
    }

    #[test]
    fn bug_is_diagnosed_to_slice() {
        let config = Config::new(5, 2).expect("config");
        let bug = BugSpec::ForwardingIgnoresValidResult {
            slice: 3,
            operand: Operand::Src1,
        };
        let v = Verifier::new(config).bug(bug).run().expect("run");
        match v.verdict {
            Verdict::SliceDiagnosis { slice, .. } => assert_eq!(slice, 3),
            other => panic!("expected diagnosis, got {other:?}"),
        }
    }

    #[test]
    fn resource_limits_are_graceful() {
        let config = Config::new(4, 4).expect("config");
        let v = Verifier::new(config)
            .strategy(Strategy::PositiveEqualityOnly)
            .sat_limits(Limits {
                max_conflicts: Some(1),
                ..Limits::none()
            })
            .run()
            .expect("run");
        assert!(matches!(v.verdict, Verdict::ResourceLimit(_)));
    }

    #[test]
    fn verified_verdicts_carry_checked_proofs() {
        let config = Config::new(4, 2).expect("config");
        let v = Verifier::new(config)
            .proof_checking(true)
            .run()
            .expect("run");
        assert_eq!(v.verdict, Verdict::Verified);
        assert_eq!(v.stats.proof_checked, Some(true));
    }

    #[test]
    fn eager_and_lazy_agree() {
        let config = Config::new(2, 2).expect("config");
        let lazy = Verifier::new(config)
            .eval(EvalStrategy::Lazy)
            .run()
            .expect("run");
        let eager = Verifier::new(config)
            .eval(EvalStrategy::Eager)
            .run()
            .expect("run");
        assert_eq!(lazy.verdict, eager.verdict);
        assert_eq!(lazy.stats.cnf_clauses, eager.stats.cnf_clauses);
    }

    #[test]
    fn verify_helper() {
        assert!(verify(Config::new(2, 2).expect("config")).expect("run"));
    }

    #[test]
    fn audited_bug_free_configs_are_clean() {
        // The ISSUE acceptance bar: the audited pipeline reports zero
        // Error diagnostics on every bug-free (N <= 8, k <= 2)
        // configuration under the default strategy.
        for n in 2..=8usize {
            for k in [1usize, 2] {
                let config = Config::new(n, k).expect("config");
                let v = Verifier::new(config).audit(true).run().expect("run");
                assert_eq!(v.verdict, Verdict::Verified, "N={n} k={k}");
                assert_eq!(
                    lint::error_count(&v.diagnostics),
                    0,
                    "N={n} k={k}:\n{}",
                    lint::render_all(&v.diagnostics)
                );
                // the audit must actually have run (summary notes present)
                assert!(v
                    .diagnostics
                    .iter()
                    .any(|d| d.code == lint::Code::PeSummary));
                assert!(v
                    .diagnostics
                    .iter()
                    .any(|d| d.code == lint::Code::RewriteSummary));
            }
        }
    }

    #[test]
    fn audited_pe_only_is_clean() {
        let config = Config::new(3, 2).expect("config");
        let v = Verifier::new(config)
            .strategy(Strategy::PositiveEqualityOnly)
            .audit(true)
            .run()
            .expect("run");
        assert_eq!(v.verdict, Verdict::Verified);
        assert_eq!(
            lint::error_count(&v.diagnostics),
            0,
            "{}",
            lint::render_all(&v.diagnostics)
        );
        assert!(v
            .diagnostics
            .iter()
            .any(|d| d.code == lint::Code::PeSummary));
    }

    #[test]
    fn every_bug_class_yields_an_error_diagnostic() {
        let bugs = [
            BugSpec::ForwardingIgnoresValidResult {
                slice: 2,
                operand: Operand::Src1,
            },
            BugSpec::ForwardingSkipsNearest {
                slice: 2,
                operand: Operand::Src2,
            },
            BugSpec::RetireOutOfOrder { slice: 2 },
            BugSpec::RetireIgnoresValid { slice: 2 },
            BugSpec::CompletionUsesStaleResult { slice: 2 },
        ];
        for bug in bugs {
            let config = Config::new(4, 2).expect("config");
            let v = Verifier::new(config)
                .bug(bug)
                .audit(true)
                .run()
                .expect("run");
            assert!(
                v.verdict.is_falsification(),
                "{bug:?} must be caught, got {:?}",
                v.verdict
            );
            assert!(
                lint::error_count(&v.diagnostics) >= 1,
                "{bug:?} must produce at least one Error diagnostic:\n{}",
                lint::render_all(&v.diagnostics)
            );
            // The abort itself is always certified.
            assert!(
                v.diagnostics
                    .iter()
                    .any(|d| d.code == lint::Code::RewriteAborted),
                "{bug:?}"
            );
        }
    }

    #[test]
    fn pre_cancelled_token_yields_a_structured_cancelled_result() {
        let config = Config::new(3, 2).expect("config");
        let token = CancelToken::new();
        token.cancel();
        let v = Verifier::new(config)
            .cancel(token)
            .run()
            .expect("cancellation is a verdict, not an error");
        assert!(v.was_cancelled());
        assert_eq!(v.verdict.label(), "resource-limit");
        assert_eq!(v.degraded, None);
    }

    #[test]
    fn cancelled_rewrite_degrades_to_pe_only_with_the_same_verdict() {
        // Acceptance criterion: a rewrite-phase cancellation yields a
        // PE-only verdict identical to the uncancelled PE-only run on a
        // correct design.
        let config = Config::new(2, 1).expect("config");
        let degraded = Verifier::new(config)
            .rewrite_deadline(Duration::ZERO)
            .run()
            .expect("run");
        assert_eq!(degraded.degraded, Some(Degradation::RewriteCancelled));
        assert_eq!(degraded.verdict, Verdict::Verified);
        assert!(
            degraded.stats.eij_vars > 0,
            "the degraded path is the PE-only translation"
        );
        assert_eq!(degraded.stats.rewrite_obligations, 0);

        let pe_only = Verifier::new(config)
            .strategy(Strategy::PositiveEqualityOnly)
            .run()
            .expect("run");
        assert_eq!(degraded.verdict, pe_only.verdict);
        assert_eq!(degraded.stats.eij_vars, pe_only.stats.eij_vars);
        assert_eq!(degraded.stats.cnf_clauses, pe_only.stats.cnf_clauses);
    }

    #[test]
    fn exhausted_rewrite_budget_degrades_to_pe_only() {
        let config = Config::new(2, 1).expect("config");
        let v = Verifier::new(config)
            .rewrite_max_nodes(1)
            .run()
            .expect("run");
        assert_eq!(v.degraded, Some(Degradation::RewriteBudget));
        assert_eq!(v.verdict, Verdict::Verified);
        assert!(v.stats.eij_vars > 0);
    }

    #[test]
    fn degradation_labels_roundtrip() {
        for d in [Degradation::RewriteCancelled, Degradation::RewriteBudget] {
            assert_eq!(Degradation::from_label(d.label()), Some(d));
        }
        assert_eq!(Degradation::from_label("nonsense"), None);
    }

    #[test]
    fn release_defaults_disable_the_audit() {
        // `audit` defaults to `cfg!(debug_assertions)`; forcing it off
        // must yield an empty diagnostics list.
        let config = Config::new(3, 1).expect("config");
        let v = Verifier::new(config).audit(false).run().expect("run");
        assert_eq!(v.verdict, Verdict::Verified);
        assert!(v.diagnostics.is_empty());
    }
}
