//! Human-readable decoding of counterexamples.
//!
//! A [`Verdict::Falsified`](crate::Verdict::Falsified) carries the names of
//! the primary Boolean variables assigned *true* in one falsifying
//! assignment. [`describe_counterexample`] groups them into the paper's
//! vocabulary: which instructions were valid, which results were already
//! computed, what the scheduler fetched, what the execution abstraction
//! completed, which dispatch controls (structural-hazard stalls,
//! fetch enables) and retire/flush controls fired, and which
//! register-identifier equalities (`e_ij`) the counterexample relies on.

use std::fmt::Write as _;

/// Groups counterexample variables into a readable report.
///
/// # Example
///
/// ```
/// let report = rob_verify::explain::describe_counterexample(&[
///     "Valid_2".to_owned(),
///     "ValidResult_2".to_owned(),
///     "NDFetch_1@0".to_owned(),
///     "eij!4!17".to_owned(),
/// ]);
/// assert!(report.contains("Valid_2"));
/// assert!(report.contains("fetched"));
/// ```
pub fn describe_counterexample(true_vars: &[String]) -> String {
    let mut valid = Vec::new();
    let mut valid_result = Vec::new();
    let mut fetched = Vec::new();
    let mut executed = Vec::new();
    let mut dispatch = Vec::new();
    let mut retire = Vec::new();
    let mut imem_valid = Vec::new();
    let mut eij = Vec::new();
    let mut other = Vec::new();
    for name in true_vars {
        if name.starts_with("Valid_") && !name.starts_with("ValidResult") {
            valid.push(name.as_str());
        } else if name.starts_with("ValidResult_") {
            valid_result.push(name.as_str());
        } else if name.starts_with("NDFetch_") {
            fetched.push(name.as_str());
        } else if name.starts_with("NDExecute_") {
            executed.push(name.as_str());
        } else if name.starts_with("NDStall") || name.starts_with("fetch_enable") {
            dispatch.push(name.as_str());
        } else if name.starts_with("flush_slot_") || name == "flush" || name.starts_with("flush@") {
            retire.push(name.as_str());
        } else if name.starts_with("app!IMemValid!") {
            imem_valid.push(name.as_str());
        } else if name.starts_with("eij!") {
            eij.push(name.as_str());
        } else {
            other.push(name.as_str());
        }
    }
    let mut out = String::new();
    let mut section = |title: &str, items: &[&str]| {
        if !items.is_empty() {
            let _ = writeln!(out, "{title}: {}", items.join(", "));
        }
    };
    section("instructions marked valid", &valid);
    section("results already computed", &valid_result);
    section("fetched this cycle (scheduler abstraction)", &fetched);
    section("completed this cycle (execution abstraction)", &executed);
    section("dispatch control (stall / fetch-enable)", &dispatch);
    section("retire/flush control (slice activation)", &retire);
    section(
        "instructions fetched as valid (instruction memory)",
        &imem_valid,
    );
    section("register-identifier equalities assumed", &eij);
    section("other control", &other);
    if out.is_empty() {
        out.push_str("all primary variables false\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_by_prefix() {
        let report = describe_counterexample(&[
            "Valid_1".to_owned(),
            "ValidResult_1".to_owned(),
            "NDExecute_3@0".to_owned(),
            "NDFetch_1@0".to_owned(),
            "eij!10!12".to_owned(),
            "app!IMemValid!1!0".to_owned(),
            "unmodelled_thing".to_owned(),
        ]);
        assert!(report.contains("instructions marked valid: Valid_1"));
        assert!(report.contains("results already computed: ValidResult_1"));
        assert!(report.contains("completed this cycle"));
        assert!(report.contains("fetched this cycle"));
        assert!(report.contains("equalities assumed: eij!10!12"));
        assert!(report.contains("instruction memory): app!IMemValid!1!0"));
        assert!(report.contains("other control: unmodelled_thing"));
    }

    #[test]
    fn dispatch_and_retire_controls_get_named_groups() {
        // At k > 1, counterexamples mention per-cycle stall controls and
        // per-slice retire/flush activations; neither belongs in the
        // catch-all bucket.
        let report = describe_counterexample(&[
            "NDStall@1".to_owned(),
            "fetch_enable".to_owned(),
            "flush_slot_3".to_owned(),
            "flush".to_owned(),
        ]);
        assert!(
            report.contains("dispatch control (stall / fetch-enable): NDStall@1, fetch_enable"),
            "{report}"
        );
        assert!(
            report.contains("retire/flush control (slice activation): flush_slot_3, flush"),
            "{report}"
        );
        assert!(!report.contains("other control"), "{report}");
    }

    #[test]
    fn empty_input_reports_all_false() {
        assert_eq!(
            describe_counterexample(&[]),
            "all primary variables false\n"
        );
    }
}
