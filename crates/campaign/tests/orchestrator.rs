//! Orchestrator behaviour tests: determinism across worker counts,
//! panic isolation, watchdog timeouts with retry, fail-fast
//! cancellation, and JSONL stream validity.

use std::sync::Arc;
use std::time::Duration;

use campaign::json::{self, Json};
use campaign::pool::CancelToken;
use campaign::{
    Campaign, Event, JobRunner, JobSpec, JsonlSink, MemorySink, NullSink, Outcome, Sweep,
};
use rob_verify::{Config, Strategy, Verdict, Verification};

fn verified() -> Verification {
    Verification {
        verdict: Verdict::Verified,
        timings: Default::default(),
        stats: Default::default(),
        diagnostics: Vec::new(),
        degraded: None,
    }
}

fn test_sweep() -> Sweep {
    Sweep::new([2usize, 3, 4], [1usize, 2]).strategies([
        Strategy::RewritingAndPositiveEquality,
        Strategy::PositiveEqualityOnly,
    ])
}

#[test]
fn outcomes_are_deterministic_across_worker_counts() {
    let sweep = test_sweep();
    let serial = Campaign::from_sweep(&sweep).workers(1).run(&NullSink);
    let parallel = Campaign::from_sweep(&sweep).workers(8).run(&NullSink);

    assert_eq!(serial.results.len(), parallel.results.len());
    assert!(!serial.results.is_empty());
    for (a, b) in serial.results.iter().zip(&parallel.results) {
        assert_eq!(a.index, b.index, "results must come back in job order");
        assert_eq!(a.job.label(), b.job.label());
        // The verdict and the formula-level statistics are functions of
        // the job alone; scheduling must not change them.
        let (va, vb) = (
            a.outcome.verification().expect("completed"),
            b.outcome.verification().expect("completed"),
        );
        assert_eq!(va.verdict, vb.verdict, "{}", a.job.label());
        assert_eq!(
            va.stats.cnf_clauses,
            vb.stats.cnf_clauses,
            "{}",
            a.job.label()
        );
        assert_eq!(va.stats.eij_vars, vb.stats.eij_vars, "{}", a.job.label());
        assert_eq!(
            va.stats.formula_nodes,
            vb.stats.formula_nodes,
            "{}",
            a.job.label()
        );
    }
    assert!(serial.all_expected() && parallel.all_expected());
}

#[test]
fn panics_become_crashed_outcomes_and_the_campaign_survives() {
    let sweep = Sweep::new([2usize, 3, 4, 5], [1usize]);
    let runner: JobRunner = Arc::new(|job: &JobSpec, _cancel: &CancelToken| {
        if job.config.rob_size() == 4 {
            panic!("injected fault in {}", job.label());
        }
        Ok(verified())
    });
    let sink = MemorySink::new();
    let outcome = Campaign::from_sweep(&sweep)
        .workers(2)
        .run_with(&sink, runner);

    assert_eq!(outcome.results.len(), 4, "campaign must run every job");
    assert_eq!(outcome.report.crashed, 1);
    assert_eq!(outcome.report.verified, 3);
    let crashed = &outcome.results[2];
    match &crashed.outcome {
        Outcome::Crashed { message } => {
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("expected a crash, got {other:?}"),
    }
    assert!(!outcome.all_expected());
    // The crash still produced a job-finished event.
    let finished = sink
        .events()
        .iter()
        .filter(|e| matches!(e, Event::JobFinished(_)))
        .count();
    assert_eq!(finished, 4);
}

#[test]
fn timeouts_are_reported_and_retried() {
    let job = JobSpec::new(Config::new(2, 1).unwrap(), Strategy::default());
    let runner: JobRunner = Arc::new(|_: &JobSpec, _cancel: &CancelToken| {
        std::thread::sleep(Duration::from_millis(300));
        Ok(verified())
    });
    let outcome = Campaign::new(vec![job])
        .workers(1)
        .timeout(Duration::from_millis(30))
        .retries(1)
        .run_with(&NullSink, runner);

    match outcome.results[0].outcome {
        Outcome::TimedOut { attempts } => assert_eq!(attempts, 2, "retry must be used"),
        ref other => panic!("expected a timeout, got {other:?}"),
    }
    assert_eq!(outcome.report.timed_out, 1);
    assert!(!outcome.all_expected());
}

#[test]
fn fail_fast_cancels_the_rest_of_the_campaign() {
    let sweep = Sweep::new([2usize, 3, 4, 5, 6, 7, 8, 9], [1usize]);
    let runner: JobRunner = Arc::new(|job: &JobSpec, _cancel: &CancelToken| {
        Ok(Verification {
            // The first job "falsifies" a bug-free design — the
            // fail-fast trigger.
            verdict: if job.config.rob_size() == 2 {
                Verdict::Falsified { true_vars: vec![] }
            } else {
                Verdict::Verified
            },
            timings: Default::default(),
            stats: Default::default(),
            diagnostics: Vec::new(),
            degraded: None,
        })
    });
    let outcome = Campaign::from_sweep(&sweep)
        .workers(1)
        .fail_fast(true)
        .run_with(&NullSink, runner);

    assert_eq!(outcome.report.falsified, 1);
    assert_eq!(
        outcome.report.cancelled,
        outcome.results.len() - 1,
        "everything after the falsification must be cancelled: {:?}",
        outcome.report
    );
}

#[test]
fn workers_overlap_independent_jobs() {
    // Jobs that wait rather than compute, so the wall-clock gain from
    // overlap is observable even on a single-CPU host.
    let sweep = Sweep::new([2usize, 3, 4, 5], [1usize, 2]);
    let runner: JobRunner = Arc::new(|_: &JobSpec, _cancel: &CancelToken| {
        std::thread::sleep(Duration::from_millis(120));
        Ok(verified())
    });
    let outcome = Campaign::from_sweep(&sweep)
        .workers(4)
        .run_with(&NullSink, runner.clone());
    let serial = Campaign::from_sweep(&sweep)
        .workers(1)
        .run_with(&NullSink, runner);

    assert_eq!(outcome.results.len(), 8);
    let speedup = serial.report.wall.as_secs_f64() / outcome.report.wall.as_secs_f64();
    assert!(
        speedup > 1.5,
        "4 workers must beat 1 by >1.5x on overlappable jobs: {speedup:.2}x \
         ({:?} vs {:?})",
        serial.report.wall,
        outcome.report.wall
    );
    // The report's own cpu-vs-wall metric must agree that jobs overlapped.
    assert!(outcome.report.speedup > 1.5, "{:?}", outcome.report);
}

#[test]
fn audited_jobs_stream_diagnostics_and_proof_check_timing() {
    let sweep = Sweep::new([3usize], [2usize])
        .check_proofs(true)
        .audit(true);
    let sink = JsonlSink::new(Vec::new());
    let outcome = Campaign::from_sweep(&sweep).workers(1).run(&sink);
    assert!(outcome.all_expected());

    // The in-memory results carry the diagnostics...
    let v = outcome.results[0]
        .outcome
        .verification()
        .expect("completed");
    assert!(
        !v.diagnostics.is_empty(),
        "audited job must produce diagnostics"
    );
    assert_eq!(v.stats.proof_checked, Some(true));

    // ...and the JSONL stream exposes them with the proof-check timing.
    let text = String::from_utf8(sink.into_inner()).unwrap();
    let finished = text
        .lines()
        .find(|l| l.contains("job-finished"))
        .expect("job-finished event");
    let parsed = json::parse(finished).expect("valid json");
    let timings = parsed.get("timings").expect("timings object");
    assert!(timings.get("proof_check_secs").is_some());
    let diagnostics = parsed.get("diagnostics").expect("diagnostics array");
    match diagnostics {
        Json::Arr(items) => {
            assert!(!items.is_empty());
            for item in items {
                assert!(item.get("code").and_then(Json::as_str).is_some());
                assert!(item.get("severity").and_then(Json::as_str).is_some());
                assert!(item.get("message").and_then(Json::as_str).is_some());
            }
        }
        other => panic!("diagnostics must be an array, got {other:?}"),
    }
    assert_eq!(
        parsed.get("lint_errors").and_then(Json::as_num),
        Some(0.0),
        "bug-free audited run must report zero lint errors"
    );
}

#[test]
fn jsonl_stream_is_valid_and_complete() {
    let sweep = Sweep::new([2usize, 3], [1usize, 2]);
    let sink = JsonlSink::new(Vec::new());
    let outcome = Campaign::from_sweep(&sweep).workers(4).run(&sink);
    assert!(outcome.all_expected());

    let text = String::from_utf8(sink.into_inner()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // campaign-started + per-job (started + finished) + summary.
    assert_eq!(lines.len(), 1 + 2 * outcome.results.len() + 1);

    let mut finished = 0;
    for line in &lines {
        let parsed = json::parse(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
        let kind = parsed
            .get("event")
            .and_then(Json::as_str)
            .expect("event field");
        if kind == "job-finished" {
            finished += 1;
            assert_eq!(
                parsed.get("outcome").and_then(Json::as_str),
                Some("verified")
            );
            let stats = parsed.get("stats").expect("stats object");
            assert!(stats.get("cnf_clauses").is_some());
            assert!(stats.get("eij_vars").is_some());
            assert!(stats.get("sat_conflicts").is_some());
            let timings = parsed.get("timings").expect("timings object");
            assert!(timings.get("total_secs").is_some());
        }
    }
    assert_eq!(finished, outcome.results.len());

    let summary = json::parse(lines.last().unwrap()).unwrap();
    assert_eq!(
        summary.get("event").and_then(Json::as_str),
        Some("campaign-summary")
    );
    assert!(summary.get("throughput_jobs_per_sec").is_some());
    assert!(summary.get("p95_secs").is_some());
    assert!(summary.get("speedup").is_some());
}
