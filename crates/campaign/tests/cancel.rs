//! Cooperative-cancellation integration tests: watchdog reclaim latency,
//! cancelling drain of a live [`ServicePool`], thread-count hygiene, and
//! end-to-end cancellation of a real verification job.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use campaign::pool::{self, CancelToken, ExecOutcome, PoolOptions, PoolStats, ServicePool};
use campaign::JobSpec;
use rob_verify::{Config, Strategy};

/// Acceptance: a slow job cancelled by the watchdog exits its thread
/// within 100 ms of the token flip. `cancel_grace` *is* that 100 ms
/// window — `reclaimed_threads == 1` proves the join landed inside it —
/// and the observation timestamp bounds the poll latency directly.
#[test]
fn watchdog_reclaims_cooperative_job_within_100ms_of_token_flip() {
    let timeout = Duration::from_millis(30);
    let observed: Arc<Mutex<Option<Instant>>> = Arc::new(Mutex::new(None));
    let sink = Arc::clone(&observed);
    let started = Instant::now();
    let (results, stats) = pool::execute_collect(
        vec![0u64],
        &PoolOptions {
            workers: 1,
            timeout: Some(timeout),
            retries: 0,
            cancel_grace: Duration::from_millis(100),
        },
        &CancelToken::new(),
        Arc::new(move |_n: &u64, cancel: &CancelToken| {
            while !cancel.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
            *sink.lock().unwrap() = Some(Instant::now());
            // Linger inside the grace window so the watchdog's own timer
            // provably fires first: the job token latches its deadline at
            // creation, slightly *before* the watchdog starts waiting, so
            // an instant self-cancelled result could win that race and
            // read as Done instead of TimedOut.
            std::thread::sleep(Duration::from_millis(50));
            0
        }),
        &(),
    );
    assert!(matches!(results[0].outcome, ExecOutcome::TimedOut));
    assert_eq!(
        stats,
        PoolStats {
            reclaimed_threads: 1,
            ..PoolStats::default()
        },
        "the job thread must be joined within the 100 ms grace window"
    );
    // The job token carries the deadline, so the flip happens no later
    // than `started + timeout` (the watchdog trips it then too). The job
    // polls every 1 ms and must notice well inside 100 ms.
    let observed = observed.lock().unwrap().expect("job observed the flip");
    let flip_to_exit = observed.saturating_duration_since(started + timeout);
    assert!(
        flip_to_exit < Duration::from_millis(100),
        "job observed cancellation {flip_to_exit:?} after the flip"
    );
}

/// Satellite: `shutdown_now` on a pool with one in-flight and one queued
/// job trips every token — the running cooperative job winds down, the
/// queued job resolves to a structured `Cancelled`, and the workers join
/// promptly instead of waiting out the job.
#[test]
fn shutdown_now_cancels_in_flight_and_queued_jobs() {
    let pool: ServicePool<u64, u64> = ServicePool::start(
        &PoolOptions {
            workers: 1,
            ..PoolOptions::default()
        },
        8,
        Arc::new(|n: &u64, cancel: &CancelToken| {
            // Cooperative: spin until cancelled, then report how we exited.
            while !cancel.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
            *n + 1000
        }),
    );
    let in_flight = pool.submit(1).unwrap();
    while pool.active_jobs() == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let queued = pool.submit(2).unwrap();

    let drained = Instant::now();
    pool.shutdown_now();
    assert!(
        drained.elapsed() < Duration::from_secs(2),
        "cancelling drain must not wait out the spinning job"
    );

    let first = in_flight.results.recv().expect("in-flight job reported");
    assert!(
        matches!(first.outcome, ExecOutcome::Done(1001)),
        "in-flight cooperative job wound down via its token: {first:?}"
    );
    let second = queued.results.recv().expect("queued job reported");
    assert!(
        matches!(second.outcome, ExecOutcome::Cancelled),
        "queued job must resolve to a structured Cancelled: {second:?}"
    );
    assert_eq!(second.attempts, 0, "queued job never ran");
    assert!(matches!(
        pool.submit(3).unwrap_err(),
        pool::SubmitError::ShuttingDown
    ));
}

/// CI reclaim assertion: after a 1 ms-deadline job is cancelled and
/// reclaimed, the process thread count returns to its baseline — no
/// leaked `campaign-job` threads.
#[test]
fn thread_count_returns_to_baseline_after_timeout_reclaim() {
    let Some(baseline) = chaos::thread_count() else {
        eprintln!("skipping: /proc/self/status not readable here");
        return;
    };
    let (results, stats) = pool::execute_collect(
        vec![0u64],
        &PoolOptions {
            workers: 1,
            timeout: Some(Duration::from_millis(1)),
            retries: 0,
            cancel_grace: Duration::from_millis(500),
        },
        &CancelToken::new(),
        Arc::new(|_n: &u64, cancel: &CancelToken| {
            while !cancel.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
            0
        }),
        &(),
    );
    // With a 1 ms deadline the job may observe its deadline-latched token
    // and report before the watchdog's own timer fires — either way is a
    // clean exit; the invariant under test is that no thread leaks.
    match results[0].outcome {
        ExecOutcome::TimedOut => assert_eq!(stats.reclaimed_threads, 1),
        ExecOutcome::Done(_) => assert_eq!(stats.reclaimed_threads, 0),
        ref other => panic!("unexpected outcome {other:?}"),
    }
    assert_eq!(stats.abandoned_threads, 0);
    // Worker scope and job thread are joined by now; give the kernel a
    // few polls to settle the accounting anyway.
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let now = chaos::thread_count().expect("was readable a moment ago");
        if now <= baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "thread count stuck at {now}, baseline {baseline}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A real verification job whose token is tripped mid-run exits with a
/// structured cancelled verdict instead of running to completion.
#[test]
fn real_verifier_job_exits_cancelled_when_token_trips() {
    let job = JobSpec::new(Config::new(2, 1).unwrap(), Strategy::default());
    let cancel = CancelToken::new();
    cancel.cancel();
    let verification = job
        .run_cancellable(&cancel)
        .expect("cancellation is a verdict, not an error");
    assert!(verification.was_cancelled());

    // And through the pool: the deadline-bearing child token makes the
    // verifier self-cancel even when the phase budget is generous.
    let hold = Arc::new(AtomicBool::new(true));
    let release = Arc::clone(&hold);
    let (results, stats) = pool::execute_collect(
        vec![JobSpec::new(
            Config::new(2, 1).unwrap(),
            Strategy::default(),
        )],
        &PoolOptions {
            workers: 1,
            timeout: Some(Duration::from_millis(5)),
            retries: 0,
            cancel_grace: Duration::from_secs(5),
        },
        &CancelToken::new(),
        Arc::new(move |job: &JobSpec, cancel: &CancelToken| {
            // Park until the deadline has certainly latched the token, so
            // the verifier's very first poll observes cancellation.
            while release.load(Ordering::SeqCst) && !cancel.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
            // Linger so the watchdog's own timer provably fires first: the
            // token latches its deadline at creation, slightly *before* the
            // watchdog starts waiting, so an instant self-cancelled result
            // could win that race and read as Done instead of TimedOut.
            std::thread::sleep(Duration::from_millis(50));
            job.run_cancellable(cancel)
        }),
        &(),
    );
    hold.store(false, Ordering::SeqCst);
    assert!(
        matches!(results[0].outcome, ExecOutcome::TimedOut),
        "{:?}",
        results[0].outcome
    );
    assert_eq!(stats.reclaimed_threads, 1, "verifier exited within grace");
}
