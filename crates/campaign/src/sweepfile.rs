//! A minimal TOML-subset parser for campaign sweep descriptions.
//!
//! The CLI reads sweep files like:
//!
//! ```toml
//! # DATE-2002 Table 2 sweep
//! sizes = [8, 16, 32]
//! widths = [2, 4]
//! strategies = ["rewrite+pe", "pe-only"]
//! bugs = ["forwarding-ignores-valid:4:src2"]
//! workers = 8
//! timeout-secs = 120.0
//! retries = 1
//! fail-fast = true
//! ```
//!
//! Only the subset needed for sweeps is supported: top-level
//! `key = value` lines with integer, float, boolean, string, and
//! flat-array values, plus `#` comments. Nested tables are rejected
//! with a clear error rather than misparsed.

use std::collections::BTreeMap;
use std::time::Duration;

use rob_verify::{BugSpec, Strategy};

use crate::job::Sweep;
use crate::run::Campaign;

/// A parsed sweep file: the sweep axes plus scheduling options.
#[derive(Debug, Clone, Default)]
pub struct SweepFile {
    /// The sweep axes.
    pub sweep: Sweep,
    /// Worker override, if the file sets one.
    pub workers: Option<usize>,
    /// Per-job deadline, if the file sets one.
    pub timeout: Option<Duration>,
    /// Retry budget for timed-out jobs.
    pub retries: Option<u32>,
    /// Fail-fast flag.
    pub fail_fast: Option<bool>,
}

impl SweepFile {
    /// Parses a sweep description.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for syntax errors,
    /// unknown keys, and type mismatches.
    pub fn parse(text: &str) -> Result<Self, String> {
        let raw = parse_toml_subset(text)?;
        let mut file = SweepFile::default();
        for (key, value) in raw {
            match key.as_str() {
                "sizes" => file.sweep.sizes = value.usize_list(&key)?,
                "widths" => file.sweep.widths = value.usize_list(&key)?,
                "strategies" => {
                    let names = value.string_list(&key)?;
                    let mut strategies = Vec::new();
                    for name in names {
                        strategies.push(
                            name.parse::<Strategy>()
                                .map_err(|e| format!("strategies: {e}"))?,
                        );
                    }
                    file.sweep.strategies = strategies;
                }
                "bugs" => {
                    let names = value.string_list(&key)?;
                    // A listed bug axis replaces the default bug-free
                    // run; add "none" to the list to keep it.
                    let mut bugs = Vec::new();
                    for name in names {
                        if name == "none" {
                            bugs.push(None);
                        } else {
                            bugs.push(Some(
                                name.parse::<BugSpec>().map_err(|e| format!("bugs: {e}"))?,
                            ));
                        }
                    }
                    file.sweep.bugs = bugs;
                }
                "max-conflicts" => {
                    let mut limits = file.sweep.sat_limits;
                    limits.max_conflicts = Some(value.usize_scalar(&key)? as u64);
                    file.sweep.sat_limits = limits;
                }
                "max-sat-secs" => {
                    let mut limits = file.sweep.sat_limits;
                    limits.max_seconds = Some(value.float_scalar(&key)?);
                    file.sweep.sat_limits = limits;
                }
                "workers" => file.workers = Some(value.usize_scalar(&key)?),
                "timeout-secs" => {
                    file.timeout = Some(Duration::from_secs_f64(value.float_scalar(&key)?));
                }
                "retries" => file.retries = Some(value.usize_scalar(&key)? as u32),
                "fail-fast" => file.fail_fast = Some(value.bool_scalar(&key)?),
                "check-proofs" => file.sweep.check_proofs = value.bool_scalar(&key)?,
                "audit" => file.sweep.audit = value.bool_scalar(&key)?,
                other => return Err(format!("unknown key `{other}`")),
            }
        }
        if file.sweep.sizes.is_empty() || file.sweep.widths.is_empty() {
            return Err("sweep file must set non-empty `sizes` and `widths`".into());
        }
        Ok(file)
    }

    /// Builds a campaign from the parsed file, applying its scheduling
    /// options on top of the defaults.
    pub fn campaign(&self) -> Campaign {
        let mut campaign = Campaign::from_sweep(&self.sweep);
        if let Some(workers) = self.workers {
            campaign = campaign.workers(workers);
        }
        if let Some(timeout) = self.timeout {
            campaign = campaign.timeout(timeout);
        }
        if let Some(retries) = self.retries {
            campaign = campaign.retries(retries);
        }
        if let Some(fail_fast) = self.fail_fast {
            campaign = campaign.fail_fast(fail_fast);
        }
        campaign
    }
}

/// A parsed TOML-subset value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Int(i64),
    Float(f64),
    Bool(bool),
    Str(String),
    List(Vec<Value>),
}

impl Value {
    fn usize_scalar(&self, key: &str) -> Result<usize, String> {
        match self {
            Value::Int(n) if *n >= 0 => Ok(*n as usize),
            _ => Err(format!("{key}: expected a non-negative integer")),
        }
    }

    fn float_scalar(&self, key: &str) -> Result<f64, String> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            _ => Err(format!("{key}: expected a number")),
        }
    }

    fn bool_scalar(&self, key: &str) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err(format!("{key}: expected true or false")),
        }
    }

    fn usize_list(&self, key: &str) -> Result<Vec<usize>, String> {
        match self {
            Value::List(items) => items.iter().map(|v| v.usize_scalar(key)).collect(),
            _ => Err(format!("{key}: expected an array of integers")),
        }
    }

    fn string_list(&self, key: &str) -> Result<Vec<String>, String> {
        match self {
            Value::List(items) => items
                .iter()
                .map(|v| match v {
                    Value::Str(s) => Ok(s.clone()),
                    _ => Err(format!("{key}: expected an array of strings")),
                })
                .collect(),
            _ => Err(format!("{key}: expected an array of strings")),
        }
    }
}

fn parse_toml_subset(text: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut map = BTreeMap::new();
    for (number, raw_line) in text.lines().enumerate() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {}: tables are not supported", number + 1));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = value`", number + 1));
        };
        let key = key.trim().to_string();
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!("line {}: bad key `{key}`", number + 1));
        }
        let value = parse_value(value.trim()).map_err(|e| format!("line {}: {e}", number + 1))?;
        if map.insert(key.clone(), value).is_some() {
            return Err(format!("line {}: duplicate key `{key}`", number + 1));
        }
    }
    Ok(map)
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Result<Value, String> {
    if text.is_empty() {
        return Err("missing value".into());
    }
    if let Some(inner) = text.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return Err(format!("unterminated array `{text}`"));
        };
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_value(part)?);
        }
        return Ok(Value::List(items));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let Some(inner) = inner.strip_suffix('"') else {
            return Err(format!("unterminated string `{text}`"));
        };
        if inner.contains('"') {
            return Err(format!("embedded quote in `{text}`"));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(n) = text.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    if let Ok(f) = text.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(format!("unrecognised value `{text}`"))
}

/// Splits array contents on commas outside quotes (arrays don't nest in
/// this subset).
fn split_top_level(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    for (i, c) in text.char_indices() {
        match c {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_sweep_file() {
        let text = r#"
# table sweep
sizes = [8, 16]   # N axis
widths = [2, 4]
strategies = ["rewrite+pe", "pe-only"]
bugs = ["none", "retire-out-of-order:2"]
workers = 4
timeout-secs = 1.5
retries = 2
fail-fast = true
max-conflicts = 100000
check-proofs = true
audit = true
"#;
        let file = SweepFile::parse(text).expect("parse");
        assert_eq!(file.sweep.sizes, vec![8, 16]);
        assert_eq!(file.sweep.widths, vec![2, 4]);
        assert_eq!(file.sweep.strategies.len(), 2);
        assert_eq!(file.sweep.bugs.len(), 2);
        assert_eq!(file.sweep.bugs[0], None);
        assert_eq!(file.workers, Some(4));
        assert_eq!(file.timeout, Some(Duration::from_secs_f64(1.5)));
        assert_eq!(file.retries, Some(2));
        assert_eq!(file.fail_fast, Some(true));
        assert_eq!(file.sweep.sat_limits.max_conflicts, Some(100_000));
        assert!(file.sweep.check_proofs);
        assert!(file.sweep.audit);
        // 2 sizes x 2 widths x 2 strategies x 2 bug-axis entries.
        let jobs = file.campaign().jobs().to_vec();
        assert_eq!(jobs.len(), 16);
        assert!(jobs.iter().all(|j| j.check_proofs && j.audit));
    }

    #[test]
    fn rejects_unknown_keys_and_bad_syntax() {
        assert!(SweepFile::parse("sizes = [4]\nwidths = [2]\nbogus = 1")
            .unwrap_err()
            .contains("unknown key"));
        assert!(SweepFile::parse("sizes [4]")
            .unwrap_err()
            .contains("line 1"));
        assert!(SweepFile::parse("[table]").unwrap_err().contains("tables"));
        assert!(SweepFile::parse("sizes = [4]")
            .unwrap_err()
            .contains("widths"));
        assert!(SweepFile::parse("sizes = [4]\nwidths = [2]\nsizes = [8]")
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    fn comments_respect_strings() {
        assert_eq!(strip_comment(r#"a = "x # y" # real"#), r#"a = "x # y" "#);
    }

    #[test]
    fn value_grammar() {
        assert_eq!(parse_value("3").unwrap(), Value::Int(3));
        assert_eq!(parse_value("3.5").unwrap(), Value::Float(3.5));
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("\"x\"").unwrap(), Value::Str("x".into()));
        assert_eq!(
            parse_value("[1, 2]").unwrap(),
            Value::List(vec![Value::Int(1), Value::Int(2)])
        );
        assert!(parse_value("[1, 2").is_err());
        assert!(parse_value("nope").is_err());
    }
}
