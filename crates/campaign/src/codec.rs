//! Bidirectional JSON coding of verification results.
//!
//! The JSONL event stream only ever *writes* results; the serving layer
//! (`rob-serve`) also needs to *read* them back — cache entries are
//! persisted as JSON and replayed on startup, and `robctl` decodes
//! responses off the wire. This module centralizes both directions so the
//! event schema, the wire protocol, and the persisted cache all share one
//! encoding (and one set of tests).
//!
//! Decoding is strict about shape (wrong types are errors) but tolerant
//! about unknown diagnostic codes: a record written by a newer build with
//! extra codes decodes with those diagnostics dropped rather than
//! poisoning the whole cache line.

use std::time::Duration;

use rob_verify::{lint, Degradation, PhaseTimings, Verdict, Verification, VerifyStats};

use crate::json::Json;

fn secs(d: Duration) -> Json {
    Json::Num(d.as_secs_f64())
}

/// Encodes per-phase timings as an object of `*_secs` fields.
pub fn timings_to_json(t: &PhaseTimings) -> Json {
    Json::obj([
        ("generate_secs", secs(t.generate)),
        ("rewrite_secs", secs(t.rewrite)),
        ("translate_secs", secs(t.translate)),
        ("sat_secs", secs(t.sat)),
        ("proof_check_secs", secs(t.proof_check)),
        ("total_secs", secs(t.total())),
    ])
}

/// Encodes headline statistics.
pub fn stats_to_json(s: &VerifyStats) -> Json {
    Json::obj([
        ("eij_vars", Json::from(s.eij_vars)),
        ("other_vars", Json::from(s.other_vars)),
        ("cnf_vars", Json::from(s.cnf_vars)),
        ("cnf_clauses", Json::from(s.cnf_clauses)),
        ("formula_nodes", Json::from(s.formula_nodes)),
        ("sat_conflicts", Json::from(s.sat_conflicts)),
        ("sat_decisions", Json::from(s.sat_decisions)),
        ("sat_propagations", Json::from(s.sat_propagations)),
        ("rewrite_obligations", Json::from(s.rewrite_obligations)),
        ("rewrite_syntactic", Json::from(s.rewrite_syntactic)),
        ("retire_pairs", Json::from(s.retire_pairs)),
        ("proof_checked", s.proof_checked.into()),
    ])
}

/// Encodes the verdict-specific detail payload (`null` for `Verified`).
pub fn verdict_detail(verdict: &Verdict) -> Json {
    match verdict {
        Verdict::Verified => Json::Null,
        Verdict::Falsified { true_vars } => Json::obj([(
            "true_vars",
            Json::Arr(true_vars.iter().map(|v| Json::str(v.clone())).collect()),
        )]),
        Verdict::SliceDiagnosis { slice, reason } => Json::obj([
            ("slice", Json::from(*slice)),
            ("reason", Json::str(reason.clone())),
        ]),
        Verdict::ResourceLimit(which) => Json::obj([("limit", Json::str(which.clone()))]),
    }
}

/// Encodes diagnostics as an array of `{code, severity, message}` objects.
pub fn diagnostics_to_json(diagnostics: &[lint::Diagnostic]) -> Json {
    Json::Arr(
        diagnostics
            .iter()
            .map(|d| {
                Json::obj([
                    ("code", Json::str(d.code.as_str())),
                    ("severity", Json::str(d.severity.as_str())),
                    ("message", Json::str(d.message.clone())),
                ])
            })
            .collect(),
    )
}

/// Encodes a complete verification result as one self-contained object.
pub fn verification_to_json(v: &Verification) -> Json {
    Json::obj([
        ("verdict", Json::str(v.verdict.label())),
        ("detail", verdict_detail(&v.verdict)),
        (
            "degraded",
            match v.degraded {
                Some(d) => Json::str(d.label()),
                None => Json::Null,
            },
        ),
        ("timings", timings_to_json(&v.timings)),
        ("stats", stats_to_json(&v.stats)),
        ("diagnostics", diagnostics_to_json(&v.diagnostics)),
    ])
}

fn get_num(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn get_usize(obj: &Json, key: &str) -> Result<usize, String> {
    Ok(get_num(obj, key)? as usize)
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, String> {
    Ok(get_num(obj, key)? as u64)
}

fn get_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn duration_field(obj: &Json, key: &str) -> Result<Duration, String> {
    let secs = get_num(obj, key)?;
    if !(secs.is_finite() && secs >= 0.0) {
        return Err(format!("field {key:?} is not a valid duration: {secs}"));
    }
    Ok(Duration::from_secs_f64(secs))
}

/// Decodes the verdict from its label and detail payload.
pub fn verdict_from_json(label: &str, detail: &Json) -> Result<Verdict, String> {
    match label {
        "verified" => Ok(Verdict::Verified),
        "falsified" => {
            let vars = detail
                .get("true_vars")
                .ok_or_else(|| "falsified verdict is missing true_vars".to_owned())?;
            let Json::Arr(items) = vars else {
                return Err("true_vars is not an array".to_owned());
            };
            let true_vars = items
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| "non-string entry in true_vars".to_owned())
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Verdict::Falsified { true_vars })
        }
        "slice-diagnosis" => Ok(Verdict::SliceDiagnosis {
            slice: get_usize(detail, "slice")?,
            reason: get_str(detail, "reason")?.to_owned(),
        }),
        "resource-limit" => Ok(Verdict::ResourceLimit(get_str(detail, "limit")?.to_owned())),
        other => Err(format!("unknown verdict label {other:?}")),
    }
}

fn timings_from_json(obj: &Json) -> Result<PhaseTimings, String> {
    Ok(PhaseTimings {
        generate: duration_field(obj, "generate_secs")?,
        rewrite: duration_field(obj, "rewrite_secs")?,
        translate: duration_field(obj, "translate_secs")?,
        sat: duration_field(obj, "sat_secs")?,
        proof_check: duration_field(obj, "proof_check_secs")?,
    })
}

fn stats_from_json(obj: &Json) -> Result<VerifyStats, String> {
    let proof_checked = match obj.get("proof_checked") {
        None | Some(Json::Null) => None,
        Some(Json::Bool(b)) => Some(*b),
        Some(other) => return Err(format!("proof_checked is not a bool: {other}")),
    };
    Ok(VerifyStats {
        eij_vars: get_usize(obj, "eij_vars")?,
        other_vars: get_usize(obj, "other_vars")?,
        cnf_vars: get_usize(obj, "cnf_vars")?,
        cnf_clauses: get_usize(obj, "cnf_clauses")?,
        formula_nodes: get_usize(obj, "formula_nodes")?,
        sat_conflicts: get_u64(obj, "sat_conflicts")?,
        // Absent in records written before these counters existed.
        sat_decisions: get_u64(obj, "sat_decisions").unwrap_or(0),
        sat_propagations: get_u64(obj, "sat_propagations").unwrap_or(0),
        rewrite_obligations: get_usize(obj, "rewrite_obligations")?,
        rewrite_syntactic: get_usize(obj, "rewrite_syntactic")?,
        retire_pairs: get_usize(obj, "retire_pairs")?,
        proof_checked,
    })
}

fn diagnostics_from_json(value: &Json) -> Result<Vec<lint::Diagnostic>, String> {
    let Json::Arr(items) = value else {
        return Err("diagnostics is not an array".to_owned());
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let code_str = get_str(item, "code")?;
        // Unknown codes (written by a newer build) are skipped, not fatal.
        let Some(&code) = lint::Code::all().iter().find(|c| c.as_str() == code_str) else {
            continue;
        };
        let severity = match get_str(item, "severity")? {
            "error" => lint::Severity::Error,
            "warning" => lint::Severity::Warning,
            "note" => lint::Severity::Note,
            other => return Err(format!("unknown severity {other:?}")),
        };
        out.push(lint::Diagnostic {
            code,
            severity,
            message: get_str(item, "message")?.to_owned(),
            // Node anchors are arena-local ids; they are meaningless in a
            // different process and are not persisted.
            node: None,
        });
    }
    Ok(out)
}

/// Decodes a complete verification result previously encoded by
/// [`verification_to_json`].
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn verification_from_json(value: &Json) -> Result<Verification, String> {
    let label = get_str(value, "verdict")?;
    let detail = value.get("detail").unwrap_or(&Json::Null);
    let verdict = verdict_from_json(label, detail)?;
    let timings = timings_from_json(
        value
            .get("timings")
            .ok_or_else(|| "missing timings".to_owned())?,
    )?;
    let stats = stats_from_json(
        value
            .get("stats")
            .ok_or_else(|| "missing stats".to_owned())?,
    )?;
    let diagnostics = match value.get("diagnostics") {
        None => Vec::new(),
        Some(d) => diagnostics_from_json(d)?,
    };
    // Absent in records written before graceful degradation existed;
    // unknown labels are treated as "not degraded" rather than fatal.
    let degraded = match value.get("degraded") {
        None | Some(Json::Null) => None,
        Some(d) => d.as_str().and_then(Degradation::from_label),
    };
    Ok(Verification {
        verdict,
        timings,
        stats,
        diagnostics,
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample(verdict: Verdict) -> Verification {
        Verification {
            verdict,
            timings: PhaseTimings {
                generate: Duration::from_millis(10),
                rewrite: Duration::from_millis(20),
                translate: Duration::from_millis(30),
                sat: Duration::from_millis(40),
                proof_check: Duration::ZERO,
            },
            stats: VerifyStats {
                eij_vars: 1,
                other_vars: 2,
                cnf_vars: 30,
                cnf_clauses: 40,
                formula_nodes: 50,
                sat_conflicts: 6,
                sat_decisions: 7,
                sat_propagations: 8,
                rewrite_obligations: 9,
                rewrite_syntactic: 10,
                retire_pairs: 2,
                proof_checked: Some(true),
            },
            diagnostics: vec![lint::Diagnostic {
                code: lint::Code::PeSummary,
                severity: lint::Severity::Note,
                message: "5 p-vars, 0 g-vars".to_owned(),
                node: None,
            }],
            degraded: None,
        }
    }

    #[test]
    fn every_verdict_roundtrips_through_text() {
        let verdicts = [
            Verdict::Verified,
            Verdict::Falsified {
                true_vars: vec!["Valid_2".to_owned(), "eij!1!2".to_owned()],
            },
            Verdict::SliceDiagnosis {
                slice: 3,
                reason: "forwarding chain broken".to_owned(),
            },
            Verdict::ResourceLimit("SAT conflict budget".to_owned()),
        ];
        for verdict in verdicts {
            let v = sample(verdict);
            let text = verification_to_json(&v).to_string();
            assert!(!text.contains('\n'));
            let parsed = json::parse(&text).expect("parse");
            let back = verification_from_json(&parsed).expect("decode");
            assert_eq!(back.verdict, v.verdict);
            assert_eq!(back.timings, v.timings);
            assert_eq!(back.stats, v.stats);
            assert_eq!(back.diagnostics.len(), v.diagnostics.len());
            assert_eq!(back.diagnostics[0].code, v.diagnostics[0].code);
            assert_eq!(back.diagnostics[0].message, v.diagnostics[0].message);
        }
    }

    #[test]
    fn degradation_roundtrips_and_is_optional() {
        let mut v = sample(Verdict::Verified);
        v.degraded = Some(Degradation::RewriteCancelled);
        let text = verification_to_json(&v).to_string();
        let back = verification_from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.degraded, Some(Degradation::RewriteCancelled));
        // Records written before the field existed decode as not degraded.
        let mut old = verification_to_json(&sample(Verdict::Verified));
        if let Json::Obj(map) = &mut old {
            map.remove("degraded");
        }
        let back = verification_from_json(&old).unwrap();
        assert_eq!(back.degraded, None);
    }

    #[test]
    fn malformed_records_are_rejected() {
        let good = verification_to_json(&sample(Verdict::Verified));
        let mut missing_stats = good.clone();
        if let Json::Obj(map) = &mut missing_stats {
            map.remove("stats");
        }
        assert!(verification_from_json(&missing_stats).is_err());
        assert!(verification_from_json(&Json::Null).is_err());
        assert!(verdict_from_json("nonsense", &Json::Null).is_err());
        assert!(verdict_from_json("falsified", &Json::Null).is_err());
    }

    #[test]
    fn unknown_diagnostic_codes_are_skipped_not_fatal() {
        let doc = json::parse(r#"{"code":"L9999","severity":"error","message":"from the future"}"#)
            .unwrap();
        let decoded = diagnostics_from_json(&Json::Arr(vec![doc])).unwrap();
        assert!(decoded.is_empty());
    }
}
