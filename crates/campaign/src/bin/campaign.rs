//! `campaign` — run a verification sweep from flags or a sweep file.
//!
//! ```text
//! campaign --sizes 8,16 --widths 2,4 --strategies rewrite+pe,pe-only \
//!          --workers 8 --events events.jsonl
//! campaign table2.toml --events events.jsonl
//! ```
//!
//! Exit status: 0 if every job produced its expected outcome, 1 if any
//! job was unexpected (wrong verdict, crash, timeout, error), 2 for
//! usage errors.

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::process::ExitCode;
use std::time::Duration;

use campaign::{Event, EventSink, JsonlSink, NullSink, Outcome, Sweep, SweepFile, Tee};
use rob_verify::{BugSpec, Strategy};

const USAGE: &str = "\
usage: campaign [SWEEP_FILE] [options]

Runs a verification campaign described by a sweep file (TOML subset)
and/or command-line flags. Flags override file settings.

options:
  --sizes N,N,...        reorder-buffer sizes to sweep
  --widths K,K,...       issue/retire widths to sweep
  --strategies S,S,...   rewrite+pe (default) and/or pe-only
  --bugs B,B,...         bug specs (kind:slice[:operand]) or `none`
  --max-conflicts N      SAT conflict limit per job
  --max-sat-secs S       SAT time limit per job (seconds)
  --workers N            worker threads (default: available parallelism)
  --timeout-secs S       per-job wall-clock deadline
  --retries N            extra attempts for timed-out jobs
  --fail-fast            abort on first unexpected falsification
  --check-proofs         log + independently check DRUP proofs per job
  --audit                run the rob-lint audit battery per job and
                         stream diagnostics into the event log
  --profile              trace each job and attach per-phase span
                         rollups to job-finished events
  --no-memo              disable the campaign-wide obligation memo store
                         (enabled by default; the summary reports its
                         hit-rate)
  --events PATH          write the JSONL event stream to PATH
  --quiet                suppress per-job progress lines
  --help                 show this message
";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("campaign: {message}");
            eprintln!("run `campaign --help` for usage");
            ExitCode::from(2)
        }
    }
}

struct Args {
    sweep_file: Option<String>,
    sizes: Option<Vec<usize>>,
    widths: Option<Vec<usize>>,
    strategies: Option<Vec<Strategy>>,
    bugs: Option<Vec<Option<BugSpec>>>,
    max_conflicts: Option<u64>,
    max_sat_secs: Option<f64>,
    workers: Option<usize>,
    timeout_secs: Option<f64>,
    retries: Option<u32>,
    fail_fast: bool,
    check_proofs: bool,
    audit: bool,
    profile: bool,
    no_memo: bool,
    events: Option<String>,
    quiet: bool,
}

fn parse_list<T, E: std::fmt::Display>(
    flag: &str,
    value: &str,
    parse: impl Fn(&str) -> Result<T, E>,
) -> Result<Vec<T>, String> {
    value
        .split(',')
        .filter(|part| !part.is_empty())
        .map(|part| parse(part.trim()).map_err(|e| format!("{flag}: {e}")))
        .collect()
}

fn parse_args(argv: Vec<String>) -> Result<Args, String> {
    let mut args = Args {
        sweep_file: None,
        sizes: None,
        widths: None,
        strategies: None,
        bugs: None,
        max_conflicts: None,
        max_sat_secs: None,
        workers: None,
        timeout_secs: None,
        retries: None,
        fail_fast: false,
        check_proofs: false,
        audit: false,
        profile: false,
        no_memo: false,
        events: None,
        quiet: false,
    };
    let mut iter = argv.into_iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--sizes" => {
                let v = value("--sizes")?;
                args.sizes = Some(parse_list("--sizes", &v, str::parse::<usize>)?);
            }
            "--widths" => {
                let v = value("--widths")?;
                args.widths = Some(parse_list("--widths", &v, str::parse::<usize>)?);
            }
            "--strategies" => {
                let v = value("--strategies")?;
                args.strategies = Some(parse_list("--strategies", &v, str::parse::<Strategy>)?);
            }
            "--bugs" => {
                let v = value("--bugs")?;
                args.bugs = Some(parse_list("--bugs", &v, |part| {
                    if part == "none" {
                        Ok(None)
                    } else {
                        part.parse::<BugSpec>().map(Some)
                    }
                })?);
            }
            "--max-conflicts" => {
                let v = value("--max-conflicts")?;
                args.max_conflicts = Some(v.parse().map_err(|e| format!("--max-conflicts: {e}"))?);
            }
            "--max-sat-secs" => {
                let v = value("--max-sat-secs")?;
                args.max_sat_secs = Some(v.parse().map_err(|e| format!("--max-sat-secs: {e}"))?);
            }
            "--workers" => {
                let v = value("--workers")?;
                args.workers = Some(v.parse().map_err(|e| format!("--workers: {e}"))?);
            }
            "--timeout-secs" => {
                let v = value("--timeout-secs")?;
                args.timeout_secs = Some(v.parse().map_err(|e| format!("--timeout-secs: {e}"))?);
            }
            "--retries" => {
                let v = value("--retries")?;
                args.retries = Some(v.parse().map_err(|e| format!("--retries: {e}"))?);
            }
            "--fail-fast" => args.fail_fast = true,
            "--check-proofs" => args.check_proofs = true,
            "--audit" => args.audit = true,
            "--profile" => args.profile = true,
            "--no-memo" => args.no_memo = true,
            "--events" => args.events = Some(value("--events")?),
            "--quiet" => args.quiet = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => {
                if args.sweep_file.replace(path.to_string()).is_some() {
                    return Err("at most one sweep file may be given".into());
                }
            }
        }
    }
    Ok(args)
}

/// Prints one line per resolved job plus the summary table.
struct ProgressSink {
    quiet: bool,
}

impl EventSink for ProgressSink {
    fn emit(&self, event: &Event) {
        match event {
            Event::CampaignStarted {
                total_jobs,
                workers,
                ..
            } => {
                eprintln!("campaign: {total_jobs} jobs on {workers} workers");
            }
            Event::JobFinished(result) if !self.quiet => {
                let marker = if result.is_expected() { "ok " } else { "FAIL" };
                let detail = match &result.outcome {
                    Outcome::Completed(v) => v.verdict.label(),
                    other => other.label(),
                };
                eprintln!(
                    "  [{marker}] {:<40} {:>8.2}s  {detail}",
                    result.job.label(),
                    result.duration.as_secs_f64(),
                );
            }
            Event::CampaignSummary(report) => {
                eprint!("{}", report.render());
            }
            _ => {}
        }
    }
}

fn run(argv: Vec<String>) -> Result<bool, String> {
    let args = parse_args(argv)?;

    // Start from the sweep file (if any), then let flags override.
    let mut file = match &args.sweep_file {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            SweepFile::parse(&text).map_err(|e| format!("{path}: {e}"))?
        }
        None => SweepFile {
            sweep: Sweep::new([], []),
            ..SweepFile::default()
        },
    };
    if let Some(sizes) = args.sizes {
        file.sweep.sizes = sizes;
    }
    if let Some(widths) = args.widths {
        file.sweep.widths = widths;
    }
    if let Some(strategies) = args.strategies {
        file.sweep.strategies = strategies;
    }
    if let Some(bugs) = args.bugs {
        file.sweep.bugs = bugs;
    }
    let mut limits = file.sweep.sat_limits;
    if let Some(conflicts) = args.max_conflicts {
        limits.max_conflicts = Some(conflicts);
    }
    if let Some(secs) = args.max_sat_secs {
        limits.max_seconds = Some(secs);
    }
    file.sweep.sat_limits = limits;
    if args.workers.is_some() {
        file.workers = args.workers;
    }
    if let Some(secs) = args.timeout_secs {
        file.timeout = Some(Duration::from_secs_f64(secs));
    }
    if args.retries.is_some() {
        file.retries = args.retries;
    }
    if args.fail_fast {
        file.fail_fast = Some(true);
    }
    if args.check_proofs {
        file.sweep.check_proofs = true;
    }
    if args.audit {
        file.sweep.audit = true;
    }
    if file.sweep.sizes.is_empty() || file.sweep.widths.is_empty() {
        return Err("no jobs: set --sizes and --widths (or pass a sweep file)".into());
    }

    let mut campaign = file.campaign().profile(args.profile);
    if !args.no_memo {
        // One obligation memo store for the whole run, shared across all
        // pool workers; the summary table reports its hit-rate.
        campaign = campaign.memo(rob_verify::memo_handle());
    }
    if campaign.jobs().is_empty() {
        return Err("the sweep expands to zero valid jobs".into());
    }

    let progress = ProgressSink { quiet: args.quiet };
    let all_expected = match &args.events {
        Some(path) => {
            let writer = BufWriter::new(
                File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
            );
            let sink = Tee(JsonlSink::new(writer), progress);
            let outcome = campaign.run(&sink);
            let mut writer = sink.0.into_inner();
            writer
                .flush()
                .map_err(|e| format!("cannot flush {path}: {e}"))?;
            eprintln!("campaign: events written to {path}");
            outcome.all_expected()
        }
        None => campaign.run(&Tee(NullSink, progress)).all_expected(),
    };
    Ok(all_expected)
}
