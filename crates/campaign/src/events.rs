//! Structured campaign telemetry: typed events, a pluggable sink trait,
//! and a JSONL serializer.
//!
//! Every event serializes to one JSON object per line with a stable
//! `event` discriminator — `campaign-started`, `job-started`,
//! `job-retried`, `job-finished`, `campaign-summary` — so downstream
//! tooling can stream-parse the file without buffering. The schema is
//! documented in `DESIGN.md`.

use std::io::Write;
use std::sync::Mutex;
use std::time::Duration;

use crate::codec;
use crate::job::{JobResult, JobSpec, Outcome};
use crate::json::Json;
use crate::report::CampaignReport;

/// A telemetry event.
#[derive(Debug, Clone)]
pub enum Event {
    /// The campaign began.
    CampaignStarted {
        /// Number of jobs queued.
        total_jobs: usize,
        /// Worker threads.
        workers: usize,
        /// Per-job deadline in seconds, if any.
        timeout_secs: Option<f64>,
        /// Retry budget for timed-out jobs.
        retries: u32,
        /// Whether fail-fast is armed.
        fail_fast: bool,
    },
    /// A job attempt began.
    JobStarted {
        /// Job index in the campaign.
        index: usize,
        /// The job.
        job: JobSpec,
        /// Worker running the attempt.
        worker: usize,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// A job attempt timed out and will be retried.
    JobRetried {
        /// Job index in the campaign.
        index: usize,
        /// The job.
        job: JobSpec,
        /// Worker whose attempt timed out.
        worker: usize,
        /// The attempt that timed out.
        attempt: u32,
    },
    /// A job resolved.
    JobFinished(JobResult),
    /// The campaign finished; aggregate report.
    CampaignSummary(CampaignReport),
}

fn secs(d: Duration) -> Json {
    Json::Num(d.as_secs_f64())
}

fn job_fields(job: &JobSpec) -> Vec<(&'static str, Json)> {
    vec![
        ("label", Json::str(job.label())),
        ("rob_size", Json::from(job.config.rob_size())),
        ("issue_width", Json::from(job.config.issue_width())),
        ("strategy", Json::str(job.strategy.to_string())),
        ("bug", job.bug.map(|b| b.to_string()).into()),
    ]
}

impl Event {
    /// Serializes the event to a single-line JSON object.
    pub fn to_json(&self) -> Json {
        match self {
            Event::CampaignStarted {
                total_jobs,
                workers,
                timeout_secs,
                retries,
                fail_fast,
            } => Json::obj([
                ("event", Json::str("campaign-started")),
                ("total_jobs", Json::from(*total_jobs)),
                ("workers", Json::from(*workers)),
                ("timeout_secs", (*timeout_secs).into()),
                ("retries", Json::from(*retries)),
                ("fail_fast", Json::from(*fail_fast)),
            ]),
            Event::JobStarted {
                index,
                job,
                worker,
                attempt,
            } => {
                let mut fields = vec![
                    ("event", Json::str("job-started")),
                    ("index", Json::from(*index)),
                    ("worker", Json::from(*worker)),
                    ("attempt", Json::from(*attempt)),
                ];
                fields.extend(job_fields(job));
                Json::obj(fields)
            }
            Event::JobRetried {
                index,
                job,
                worker,
                attempt,
            } => {
                let mut fields = vec![
                    ("event", Json::str("job-retried")),
                    ("index", Json::from(*index)),
                    ("worker", Json::from(*worker)),
                    ("attempt", Json::from(*attempt)),
                ];
                fields.extend(job_fields(job));
                Json::obj(fields)
            }
            Event::JobFinished(result) => {
                let mut fields = vec![
                    ("event", Json::str("job-finished")),
                    ("index", Json::from(result.index)),
                    ("worker", Json::from(result.worker)),
                    ("attempts", Json::from(result.attempts)),
                    ("outcome", Json::str(result.outcome.label())),
                    ("duration_secs", secs(result.duration)),
                    ("expected", Json::from(result.is_expected())),
                    (
                        "cache",
                        Json::str(if result.cached { "hit" } else { "miss" }),
                    ),
                ];
                fields.extend(job_fields(&result.job));
                if let Some(spans) = &result.spans {
                    let rollup: Vec<Json> = spans
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("phase", Json::str(s.name)),
                                ("count", Json::from(s.count)),
                                ("cumulative_secs", secs(s.cumulative)),
                                ("self_secs", secs(s.self_time)),
                            ])
                        })
                        .collect();
                    fields.push(("spans", Json::Arr(rollup)));
                }
                match &result.outcome {
                    Outcome::Completed(v) => {
                        fields.push(("detail", codec::verdict_detail(&v.verdict)));
                        fields.push(("timings", codec::timings_to_json(&v.timings)));
                        fields.push(("stats", codec::stats_to_json(&v.stats)));
                        if !v.diagnostics.is_empty() {
                            let errors = rob_verify::lint::error_count(&v.diagnostics);
                            let warnings = v
                                .diagnostics
                                .iter()
                                .filter(|d| d.severity == rob_verify::lint::Severity::Warning)
                                .count();
                            fields.push(("lint_errors", Json::from(errors)));
                            fields.push(("lint_warnings", Json::from(warnings)));
                            fields
                                .push(("diagnostics", codec::diagnostics_to_json(&v.diagnostics)));
                        }
                    }
                    Outcome::Error(e) => fields.push(("detail", Json::str(e.to_string()))),
                    Outcome::Crashed { message } => {
                        fields.push(("detail", Json::str(message.clone())));
                    }
                    Outcome::TimedOut { .. } | Outcome::Cancelled => {}
                }
                Json::obj(fields)
            }
            Event::CampaignSummary(report) => {
                let mut fields = vec![("event", Json::str("campaign-summary"))];
                fields.extend(report.json_fields());
                Json::obj(fields)
            }
        }
    }
}

/// Receives campaign events; implementations must be thread-safe, as
/// workers emit from their own threads.
pub trait EventSink: Send + Sync {
    /// Handles one event.
    fn emit(&self, event: &Event);
}

/// Discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// Writes one JSON object per line to the wrapped writer.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// Unwraps, flushing first.
    pub fn into_inner(self) -> W {
        let mut writer = self.writer.into_inner().expect("sink poisoned");
        let _ = writer.flush();
        writer
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn emit(&self, event: &Event) {
        let line = event.to_json().to_string();
        let mut writer = self.writer.lock().expect("sink poisoned");
        let _ = writeln!(writer, "{line}");
        // Summaries end a campaign; make sure they hit the disk even if
        // the process is about to exit.
        if matches!(event, Event::CampaignSummary(_)) {
            let _ = writer.flush();
        }
    }
}

/// Collects events in memory (tests, programmatic consumers).
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots the events received so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("sink poisoned").clone()
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .expect("sink poisoned")
            .push(event.clone());
    }
}

/// Fans events out to two sinks (e.g. a JSONL file plus live progress).
pub struct Tee<A: EventSink, B: EventSink>(pub A, pub B);

impl<A: EventSink, B: EventSink> EventSink for Tee<A, B> {
    fn emit(&self, event: &Event) {
        self.0.emit(event);
        self.1.emit(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use rob_verify::{Config, Strategy};

    #[test]
    fn events_serialize_to_single_parsable_lines() {
        let job = JobSpec::new(Config::new(4, 2).unwrap(), Strategy::default());
        let events = [
            Event::CampaignStarted {
                total_jobs: 3,
                workers: 2,
                timeout_secs: Some(1.5),
                retries: 1,
                fail_fast: true,
            },
            Event::JobStarted {
                index: 0,
                job,
                worker: 1,
                attempt: 1,
            },
            Event::JobRetried {
                index: 0,
                job,
                worker: 1,
                attempt: 1,
            },
            Event::JobFinished(JobResult {
                index: 0,
                job,
                outcome: Outcome::Crashed {
                    message: "a \"panic\"\nwith newline".into(),
                },
                duration: Duration::from_millis(12),
                worker: 1,
                attempts: 2,
                cached: false,
                spans: None,
            }),
        ];
        for event in &events {
            let line = event.to_json().to_string();
            assert!(!line.contains('\n'), "line breaks must be escaped: {line}");
            let parsed = json::parse(&line).expect("line must parse");
            assert!(parsed.get("event").and_then(Json::as_str).is_some());
        }
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let sink = JsonlSink::new(Vec::new());
        sink.emit(&Event::CampaignStarted {
            total_jobs: 1,
            workers: 1,
            timeout_secs: None,
            retries: 0,
            fail_fast: false,
        });
        let buffer = sink.into_inner();
        let text = String::from_utf8(buffer).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(json::parse(text.trim()).is_ok());
    }
}
