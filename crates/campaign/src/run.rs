//! The campaign driver: schedules a job list onto the worker pool, wires
//! scheduling callbacks to the event sink, and aggregates the report.
//!
//! Identical jobs (equal [`JobSpec::key`]) are solved once: only the
//! first occurrence is scheduled, and every duplicate is served from its
//! result, reported in the JSONL stream as a `cache: hit` job-finished
//! event with zero duration.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rob_verify::memo;
use rob_verify::trace::{self, PhaseStat};
use rob_verify::{Verification, VerifyError};

use crate::events::{Event, EventSink};
use crate::job::{JobResult, JobSpec, Outcome, Sweep};
use crate::pool::{self, CancelToken, ExecOutcome, ExecResult, Observer, PoolOptions};
use crate::report::CampaignReport;

/// A pluggable job runner: maps a [`JobSpec`] to a verification result.
/// The runner receives the job's [`CancelToken`] and is expected to poll
/// it so watchdog timeouts and fail-fast aborts reclaim the job thread.
///
/// The default runner is [`JobSpec::run_cancellable`]; tests inject
/// panicking or sleeping runners, and future remote backends can proxy
/// jobs elsewhere.
pub type JobRunner =
    Arc<dyn Fn(&JobSpec, &CancelToken) -> Result<Verification, VerifyError> + Send + Sync>;

/// A configured campaign, ready to run.
#[derive(Debug, Clone)]
pub struct Campaign {
    jobs: Vec<JobSpec>,
    workers: usize,
    timeout: Option<Duration>,
    retries: u32,
    fail_fast: bool,
    profile: bool,
    memo: Option<memo::MemoHandle>,
}

/// Per-job phase profiles, keyed by the job's canonical key. Written by
/// the wrapped runner on the worker thread, read when results are
/// assembled (the pool reports a job finished only after its runner
/// returned, so reads always see the entry).
type ProfileMap = Arc<Mutex<HashMap<String, Vec<PhaseStat>>>>;

/// Everything a finished campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Per-job results, in job order.
    pub results: Vec<JobResult>,
    /// The aggregate report (also emitted as the `campaign-summary`
    /// event).
    pub report: CampaignReport,
}

impl CampaignOutcome {
    /// Whether every job produced its expected outcome.
    pub fn all_expected(&self) -> bool {
        self.report.all_expected()
    }
}

impl Campaign {
    /// A campaign over an explicit job list.
    pub fn new(jobs: Vec<JobSpec>) -> Self {
        Campaign {
            jobs,
            workers: pool::default_workers(),
            timeout: None,
            retries: 0,
            fail_fast: false,
            profile: false,
            memo: None,
        }
    }

    /// A campaign over a declarative sweep.
    pub fn from_sweep(sweep: &Sweep) -> Self {
        Campaign::new(sweep.jobs())
    }

    /// Sets the worker count (clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the per-job wall-clock deadline. The deadline is also pushed
    /// into each job's SAT time limit (when tighter) so abandoned job
    /// threads terminate on their own instead of spinning forever.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Grants timed-out jobs up to `retries` extra attempts.
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Aborts all queued jobs after the first unexpected falsification.
    pub fn fail_fast(mut self, enabled: bool) -> Self {
        self.fail_fast = enabled;
        self
    }

    /// Collects a per-job phase-span rollup (a [`trace`] session wraps
    /// each solve) and attaches it to [`JobResult::spans`] and the
    /// `job-finished` JSONL events.
    pub fn profile(mut self, enabled: bool) -> Self {
        self.profile = enabled;
        self
    }

    /// Shares an obligation memo store across every job in the campaign:
    /// the store is bound (thread-locally) around each job's runner, so
    /// all pool workers read and write the same store, and the summary
    /// reports its end-of-campaign hit-rate.
    ///
    /// Memoization never changes a verdict or a reported statistic —
    /// warm and cold runs are field-for-field identical — so sharing one
    /// store across a whole sweep is always sound.
    pub fn memo(mut self, handle: memo::MemoHandle) -> Self {
        self.memo = Some(handle);
        self
    }

    /// The job list.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Runs the campaign with the default in-process runner.
    pub fn run(&self, sink: &dyn EventSink) -> CampaignOutcome {
        self.run_with(
            sink,
            Arc::new(|job: &JobSpec, cancel: &CancelToken| job.run_cancellable(cancel)),
        )
    }

    /// Runs the campaign with a custom job runner (tests, remote
    /// backends).
    pub fn run_with(&self, sink: &dyn EventSink, runner: JobRunner) -> CampaignOutcome {
        sink.emit(&Event::CampaignStarted {
            total_jobs: self.jobs.len(),
            workers: self.workers,
            timeout_secs: self.timeout.map(|t| t.as_secs_f64()),
            retries: self.retries,
            fail_fast: self.fail_fast,
        });

        let jobs: Vec<JobSpec> = match self.timeout {
            // Give orphaned (timed-out, abandoned) job threads a SAT
            // budget no looser than the deadline so they wind down.
            Some(deadline) => self
                .jobs
                .iter()
                .map(|job| {
                    let mut job = *job;
                    let budget = deadline.as_secs_f64();
                    job.sat_limits.max_seconds =
                        Some(job.sat_limits.max_seconds.map_or(budget, |s| s.min(budget)));
                    job
                })
                .collect(),
            None => self.jobs.clone(),
        };

        // Content-addressed deduplication: only the first job with a given
        // key is scheduled; `first_of[i]` points every job at its
        // canonical occurrence.
        let mut first_of: Vec<usize> = Vec::with_capacity(jobs.len());
        let mut seen: HashMap<String, usize> = HashMap::new();
        for (index, job) in jobs.iter().enumerate() {
            let canon = *seen
                .entry(job.key().canonical().to_owned())
                .or_insert(index);
            first_of.push(canon);
        }
        let unique: Vec<usize> = (0..jobs.len()).filter(|&i| first_of[i] == i).collect();
        let submitted: Vec<JobSpec> = unique.iter().map(|&i| jobs[i]).collect();

        let cancel = CancelToken::new();
        let profiles: Option<ProfileMap> =
            self.profile.then(|| Arc::new(Mutex::new(HashMap::new())));
        let observer = CampaignObserver {
            sink,
            cancel: cancel.clone(),
            fail_fast: self.fail_fast,
            index_map: &unique,
            profiles: profiles.clone(),
        };
        let options = PoolOptions {
            workers: self.workers,
            timeout: self.timeout,
            retries: self.retries,
            ..PoolOptions::default()
        };
        let started = Instant::now();
        let span_maps = profiles.clone();
        let store = self.memo.clone();
        let wrapped = move |job: &JobSpec, cancel: &CancelToken| {
            // The memo binding is thread-local, so it must happen here on
            // the worker thread, once per job attempt.
            let _memo_guard = store.clone().map(memo::bind);
            let Some(map) = &span_maps else {
                return runner(job, cancel);
            };
            let session = trace::session();
            let result = runner(job, cancel);
            let rollup = session.finish().rollup();
            map.lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(job.key().canonical().to_owned(), rollup);
            result
        };
        let (exec_results, pool_stats) =
            pool::execute_collect(submitted, &options, &cancel, Arc::new(wrapped), &observer);
        let wall = started.elapsed();

        let mut slots: Vec<Option<JobResult>> = vec![None; jobs.len()];
        for (pos, exec) in exec_results.into_iter().enumerate() {
            let index = unique[pos];
            slots[index] = Some(job_result(index, jobs[index], exec, profiles.as_ref()));
        }
        for index in 0..jobs.len() {
            if slots[index].is_some() {
                continue;
            }
            // `first_of[index] < index` and canonical slots are all filled,
            // so the clone below cannot fail.
            let canon = slots[first_of[index]].clone().expect("canonical resolved");
            let duplicate = JobResult {
                index,
                job: jobs[index],
                outcome: canon.outcome,
                duration: Duration::ZERO,
                worker: canon.worker,
                attempts: 0,
                cached: true,
                spans: canon.spans,
            };
            sink.emit(&Event::JobFinished(duplicate.clone()));
            slots[index] = Some(duplicate);
        }
        let results: Vec<JobResult> = slots
            .into_iter()
            .map(|slot| slot.expect("every job resolved"))
            .collect();
        let mut report =
            CampaignReport::summarize(&results, wall, self.workers).with_pool_stats(pool_stats);
        if let Some(store) = &self.memo {
            report = report.with_memo_stats(store.stats());
        }
        sink.emit(&Event::CampaignSummary(report.clone()));
        CampaignOutcome { results, report }
    }
}

fn outcome_from_exec(
    exec: &ExecOutcome<Result<Verification, VerifyError>>,
    attempts: u32,
) -> Outcome {
    match exec {
        // A verifier that observed its token mid-phase returns a
        // structured cancelled verification; fold it into the scheduling
        // notion of cancellation.
        ExecOutcome::Done(Ok(verification)) if verification.was_cancelled() => Outcome::Cancelled,
        ExecOutcome::Done(Ok(verification)) => Outcome::Completed(verification.clone()),
        ExecOutcome::Done(Err(error)) => Outcome::Error(error.clone()),
        ExecOutcome::Panicked { message } => Outcome::Crashed {
            message: message.clone(),
        },
        ExecOutcome::TimedOut => Outcome::TimedOut { attempts },
        ExecOutcome::Cancelled => Outcome::Cancelled,
    }
}

fn job_result(
    index: usize,
    job: JobSpec,
    exec: ExecResult<Result<Verification, VerifyError>>,
    profiles: Option<&ProfileMap>,
) -> JobResult {
    let spans = profiles.and_then(|map| {
        map.lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(job.key().canonical())
            .cloned()
    });
    JobResult {
        index,
        job,
        outcome: outcome_from_exec(&exec.outcome, exec.attempts),
        duration: exec.duration,
        worker: exec.worker,
        attempts: exec.attempts,
        cached: false,
        spans,
    }
}

struct CampaignObserver<'a> {
    sink: &'a dyn EventSink,
    cancel: CancelToken,
    fail_fast: bool,
    /// Position in the deduplicated submission list → campaign job index.
    index_map: &'a [usize],
    /// Per-job phase profiles when profiling is enabled.
    profiles: Option<ProfileMap>,
}

impl Observer<JobSpec, Result<Verification, VerifyError>> for CampaignObserver<'_> {
    fn on_start(&self, index: usize, job: &JobSpec, worker: usize, attempt: u32) {
        self.sink.emit(&Event::JobStarted {
            index: self.index_map[index],
            job: *job,
            worker,
            attempt,
        });
    }

    fn on_retry(&self, index: usize, job: &JobSpec, worker: usize, attempt: u32) {
        self.sink.emit(&Event::JobRetried {
            index: self.index_map[index],
            job: *job,
            worker,
            attempt,
        });
    }

    fn on_finish(
        &self,
        index: usize,
        job: &JobSpec,
        result: &ExecResult<Result<Verification, VerifyError>>,
    ) {
        let job_result = job_result(
            self.index_map[index],
            *job,
            result.clone(),
            self.profiles.as_ref(),
        );
        if self.fail_fast {
            if let Outcome::Completed(v) = &job_result.outcome {
                if job.is_unexpected_falsification(&v.verdict) {
                    self.cancel.cancel();
                }
            }
        }
        self.sink.emit(&Event::JobFinished(job_result));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::NullSink;
    use rob_verify::{Config, Strategy};

    #[test]
    fn small_campaign_verifies_everything() {
        let sweep = Sweep::new([2usize, 3], [1usize, 2]);
        let outcome = Campaign::from_sweep(&sweep).workers(2).run(&NullSink);
        assert_eq!(outcome.results.len(), 4);
        assert!(outcome.all_expected(), "{:?}", outcome.report);
        assert_eq!(outcome.report.verified, 4);
        assert!(outcome.report.throughput > 0.0);
    }

    #[test]
    fn identical_jobs_are_deduped_and_reported_as_cache_hits() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let job = JobSpec::new(Config::new(2, 1).unwrap(), Strategy::default());
        let other = JobSpec::new(Config::new(3, 1).unwrap(), Strategy::default());
        let solves = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&solves);
        let sink = crate::events::MemorySink::new();
        let outcome = Campaign::new(vec![job, other, job, job])
            .workers(2)
            .run_with(
                &sink,
                Arc::new(move |job: &JobSpec, _cancel: &CancelToken| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    job.run()
                }),
            );
        assert_eq!(solves.load(Ordering::SeqCst), 2, "only unique jobs solve");
        assert_eq!(outcome.results.len(), 4);
        assert!(outcome.all_expected());
        assert_eq!(outcome.report.verified, 4);
        assert_eq!(outcome.report.cache_hits, 2);
        let cached: Vec<bool> = outcome.results.iter().map(|r| r.cached).collect();
        assert_eq!(cached, [false, false, true, true]);
        for r in &outcome.results[2..] {
            assert_eq!(r.duration, Duration::ZERO);
            assert!(r.outcome.verification().is_some());
        }
        // The JSONL stream carries the hits: two job-finished events with
        // cache=hit, and job indices stay campaign-relative.
        let finished: Vec<JobResult> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::JobFinished(r) => Some(r.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(finished.len(), 4);
        assert_eq!(finished.iter().filter(|r| r.cached).count(), 2);
        let mut indices: Vec<usize> = finished.iter().map(|r| r.index).collect();
        indices.sort_unstable();
        assert_eq!(indices, [0, 1, 2, 3]);
    }

    #[test]
    fn profile_mode_attaches_span_rollups() {
        let job = JobSpec::new(Config::new(2, 1).unwrap(), Strategy::default());
        let other = JobSpec::new(Config::new(3, 1).unwrap(), Strategy::default());
        let sink = crate::events::MemorySink::new();
        let outcome = Campaign::new(vec![job, other, job])
            .workers(2)
            .profile(true)
            .run(&sink);
        assert!(outcome.all_expected());
        for result in &outcome.results {
            let spans = result.spans.as_ref().expect("profile mode records spans");
            let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
            assert!(names.contains(&"verify"), "got {names:?}");
            assert!(names.contains(&"evc.pe"), "got {names:?}");
            assert!(
                names.len() >= 6,
                "expected at least 6 phases, got {names:?}"
            );
        }
        // Duplicates inherit the canonical rollup, and the JSONL stream
        // carries it for every finished job.
        assert!(outcome.results[2].cached);
        assert_eq!(outcome.results[2].spans, outcome.results[0].spans);
        for event in sink.events() {
            if let Event::JobFinished(r) = event {
                let line = Event::JobFinished(r).to_json().to_string();
                assert!(line.contains("\"spans\""), "missing spans: {line}");
                assert!(line.contains("\"phase\""), "missing phase: {line}");
            }
        }
        // Phase percentiles aggregate from per-result timings.
        assert!(outcome.report.phase_p50.total() > Duration::ZERO);
        assert!(outcome.report.phase_p95.total() >= outcome.report.phase_p50.total());
    }

    #[test]
    fn shared_memo_store_reports_hits_and_preserves_results() {
        let store = rob_verify::memo_handle();
        let sweep = Sweep::new([2usize, 3], [1usize]);
        let first = Campaign::from_sweep(&sweep)
            .workers(2)
            .memo(store.clone())
            .run(&NullSink);
        assert!(first.all_expected());
        let after_first = store.stats();
        assert!(after_first.entries > 0, "first pass stored nothing");

        // A second pass over the same sweep replays out of the store.
        let second = Campaign::from_sweep(&sweep)
            .workers(2)
            .memo(store.clone())
            .run(&NullSink);
        assert!(second.all_expected());
        let attached = second.report.memo.expect("memo stats attached");
        assert!(
            attached.hits > after_first.hits,
            "second pass hit nothing: {attached:?}"
        );
        // The summary table and JSONL line both surface the hit-rate.
        assert!(second.report.render().contains("memo rate"));
        assert!(second
            .report
            .json_fields()
            .iter()
            .any(|(name, _)| *name == "memo"));

        // Memoized results are field-for-field identical to an
        // unmemoized baseline.
        let cold = Campaign::from_sweep(&sweep).workers(2).run(&NullSink);
        assert!(cold.report.memo.is_none());
        for (a, b) in cold.results.iter().zip(&second.results) {
            let a = a.outcome.verification().expect("completed");
            let b = b.outcome.verification().expect("completed");
            assert_eq!(a.verdict, b.verdict);
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn unprofiled_campaigns_carry_no_spans() {
        let job = JobSpec::new(Config::new(2, 1).unwrap(), Strategy::default());
        let outcome = Campaign::new(vec![job]).workers(1).run(&NullSink);
        assert!(outcome.results[0].spans.is_none());
    }

    #[test]
    fn explicit_job_list_runs() {
        let job = JobSpec::new(Config::new(2, 1).unwrap(), Strategy::PositiveEqualityOnly);
        let outcome = Campaign::new(vec![job]).workers(1).run(&NullSink);
        assert_eq!(outcome.report.verified, 1);
        let v = outcome.results[0]
            .outcome
            .verification()
            .expect("completed");
        assert!(v.stats.eij_vars > 0, "PE-only keeps e_ij variables");
    }
}
