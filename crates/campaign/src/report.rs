//! End-of-campaign aggregation: outcome counts, latency percentiles,
//! throughput, and the CPU-vs-wall speedup.

use std::time::Duration;

use rob_verify::memo::MemoSnapshot;
use rob_verify::{PhaseTimings, Verdict};

use crate::job::{JobResult, Outcome};
use crate::json::Json;
use crate::pool::PoolStats;

/// Aggregate statistics over a finished campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Jobs in the campaign.
    pub total_jobs: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Jobs whose verdict was `Verified`.
    pub verified: usize,
    /// Jobs falsified with a counterexample.
    pub falsified: usize,
    /// Jobs diagnosed to a slice by the rewriting rules.
    pub diagnosed: usize,
    /// Jobs that hit a verifier resource limit.
    pub resource_limited: usize,
    /// Jobs that returned a driver error.
    pub errored: usize,
    /// Jobs that panicked.
    pub crashed: usize,
    /// Jobs that exceeded their deadline on every attempt.
    pub timed_out: usize,
    /// Jobs cancelled by fail-fast.
    pub cancelled: usize,
    /// Duplicate jobs served from an identical job's result instead of
    /// being re-solved.
    pub cache_hits: usize,
    /// Jobs whose outcome was *not* the expected one.
    pub unexpected: usize,
    /// Campaign wall-clock time.
    pub wall: Duration,
    /// Summed per-job wall time (the serial-equivalent cost).
    pub cpu: Duration,
    /// Resolved jobs per second of wall time.
    pub throughput: f64,
    /// Median job latency (executed jobs only).
    pub p50: Duration,
    /// 95th-percentile job latency (executed jobs only).
    pub p95: Duration,
    /// Worst job latency.
    pub max_latency: Duration,
    /// `cpu / wall` — the effective parallel speedup.
    pub speedup: f64,
    /// Timed-out job threads that observed cancellation and were joined.
    pub threads_reclaimed: u64,
    /// Timed-out job threads that ignored cancellation and were detached.
    pub threads_abandoned: u64,
    /// Interactive submissions shed at the admission bound (service
    /// pools only; always zero for batch campaigns).
    pub shed_interactive: u64,
    /// Bulk submissions shed at the bulk admission ceiling.
    pub shed_bulk: u64,
    /// Median per-phase latency across completed, executed jobs.
    pub phase_p50: PhaseTimings,
    /// 95th-percentile per-phase latency across completed, executed jobs.
    pub phase_p95: PhaseTimings,
    /// Obligation-store traffic for the campaign's shared memo store,
    /// present only when memoization was enabled (see [`Campaign::memo`]).
    ///
    /// [`Campaign::memo`]: crate::Campaign::memo
    pub memo: Option<MemoSnapshot>,
}

impl CampaignReport {
    /// Builds the report from per-job results and the measured wall time.
    pub fn summarize(results: &[JobResult], wall: Duration, workers: usize) -> Self {
        let mut report = CampaignReport {
            total_jobs: results.len(),
            workers,
            verified: 0,
            falsified: 0,
            diagnosed: 0,
            resource_limited: 0,
            errored: 0,
            crashed: 0,
            timed_out: 0,
            cancelled: 0,
            cache_hits: 0,
            unexpected: 0,
            wall,
            cpu: Duration::ZERO,
            throughput: 0.0,
            p50: Duration::ZERO,
            p95: Duration::ZERO,
            max_latency: Duration::ZERO,
            speedup: 0.0,
            threads_reclaimed: 0,
            threads_abandoned: 0,
            shed_interactive: 0,
            shed_bulk: 0,
            phase_p50: PhaseTimings::default(),
            phase_p95: PhaseTimings::default(),
            memo: None,
        };
        let mut latencies: Vec<Duration> = Vec::new();
        let mut phase_latencies: [Vec<Duration>; 5] = Default::default();
        for result in results {
            match &result.outcome {
                Outcome::Completed(v) => match &v.verdict {
                    Verdict::Verified => report.verified += 1,
                    Verdict::Falsified { .. } => report.falsified += 1,
                    Verdict::SliceDiagnosis { .. } => report.diagnosed += 1,
                    Verdict::ResourceLimit(_) => report.resource_limited += 1,
                },
                Outcome::Error(_) => report.errored += 1,
                Outcome::Crashed { .. } => report.crashed += 1,
                Outcome::TimedOut { .. } => report.timed_out += 1,
                Outcome::Cancelled => report.cancelled += 1,
            }
            if result.cached {
                report.cache_hits += 1;
            }
            if !matches!(result.outcome, Outcome::Cancelled) && !result.cached {
                latencies.push(result.duration);
                report.cpu += result.duration;
                if let Outcome::Completed(v) = &result.outcome {
                    for (slot, phase) in phase_latencies.iter_mut().zip([
                        v.timings.generate,
                        v.timings.rewrite,
                        v.timings.translate,
                        v.timings.sat,
                        v.timings.proof_check,
                    ]) {
                        slot.push(phase);
                    }
                }
            }
            if !result.is_expected() {
                report.unexpected += 1;
            }
        }
        latencies.sort_unstable();
        report.p50 = percentile(&latencies, 0.50);
        report.p95 = percentile(&latencies, 0.95);
        report.max_latency = latencies.last().copied().unwrap_or(Duration::ZERO);
        for phases in &mut phase_latencies {
            phases.sort_unstable();
        }
        let phase_quantile = |p: f64| PhaseTimings {
            generate: percentile(&phase_latencies[0], p),
            rewrite: percentile(&phase_latencies[1], p),
            translate: percentile(&phase_latencies[2], p),
            sat: percentile(&phase_latencies[3], p),
            proof_check: percentile(&phase_latencies[4], p),
        };
        report.phase_p50 = phase_quantile(0.50);
        report.phase_p95 = phase_quantile(0.95);
        let wall_secs = wall.as_secs_f64();
        if wall_secs > 0.0 {
            report.throughput = (report.total_jobs - report.cancelled) as f64 / wall_secs;
            report.speedup = report.cpu.as_secs_f64() / wall_secs;
        }
        report
    }

    /// Attaches the pool's thread-accounting totals.
    pub fn with_pool_stats(mut self, stats: PoolStats) -> Self {
        self.threads_reclaimed = stats.reclaimed_threads;
        self.threads_abandoned = stats.abandoned_threads;
        self.shed_interactive = stats.shed_interactive;
        self.shed_bulk = stats.shed_bulk;
        self
    }

    /// Attaches the shared memo store's end-of-campaign traffic counters.
    pub fn with_memo_stats(mut self, stats: MemoSnapshot) -> Self {
        self.memo = Some(stats);
        self
    }

    /// Key/value pairs for the JSONL `campaign-summary` line.
    pub fn json_fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("total_jobs", Json::from(self.total_jobs)),
            ("workers", Json::from(self.workers)),
            ("verified", Json::from(self.verified)),
            ("falsified", Json::from(self.falsified)),
            ("diagnosed", Json::from(self.diagnosed)),
            ("resource_limited", Json::from(self.resource_limited)),
            ("errored", Json::from(self.errored)),
            ("crashed", Json::from(self.crashed)),
            ("timed_out", Json::from(self.timed_out)),
            ("cancelled", Json::from(self.cancelled)),
            ("cache_hits", Json::from(self.cache_hits)),
            ("unexpected", Json::from(self.unexpected)),
            ("wall_secs", Json::Num(self.wall.as_secs_f64())),
            ("cpu_secs", Json::Num(self.cpu.as_secs_f64())),
            ("throughput_jobs_per_sec", Json::Num(self.throughput)),
            ("p50_secs", Json::Num(self.p50.as_secs_f64())),
            ("p95_secs", Json::Num(self.p95.as_secs_f64())),
            (
                "max_latency_secs",
                Json::Num(self.max_latency.as_secs_f64()),
            ),
            ("speedup", Json::Num(self.speedup)),
            ("threads_reclaimed", Json::from(self.threads_reclaimed)),
            ("threads_abandoned", Json::from(self.threads_abandoned)),
            ("shed_interactive", Json::from(self.shed_interactive)),
            ("shed_bulk", Json::from(self.shed_bulk)),
            ("phase_p50", crate::codec::timings_to_json(&self.phase_p50)),
            ("phase_p95", crate::codec::timings_to_json(&self.phase_p95)),
            ("memo", self.memo.as_ref().map_or(Json::Null, memo_to_json)),
        ]
    }

    /// Renders the human-readable summary table printed by the CLI.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "campaign summary");
        let _ = writeln!(out, "  jobs        {:>8}", self.total_jobs);
        let _ = writeln!(out, "  workers     {:>8}", self.workers);
        let _ = writeln!(out, "  verified    {:>8}", self.verified);
        if self.falsified > 0 {
            let _ = writeln!(out, "  falsified   {:>8}", self.falsified);
        }
        if self.diagnosed > 0 {
            let _ = writeln!(out, "  diagnosed   {:>8}", self.diagnosed);
        }
        if self.resource_limited > 0 {
            let _ = writeln!(out, "  over budget {:>8}", self.resource_limited);
        }
        if self.errored > 0 {
            let _ = writeln!(out, "  errored     {:>8}", self.errored);
        }
        if self.crashed > 0 {
            let _ = writeln!(out, "  crashed     {:>8}", self.crashed);
        }
        if self.timed_out > 0 {
            let _ = writeln!(out, "  timed out   {:>8}", self.timed_out);
        }
        if self.cancelled > 0 {
            let _ = writeln!(out, "  cancelled   {:>8}", self.cancelled);
        }
        if self.cache_hits > 0 {
            let _ = writeln!(out, "  cache hits  {:>8}", self.cache_hits);
        }
        if let Some(memo) = &self.memo {
            let kind_rate = |i: usize| {
                let (hits, misses) = memo.by_kind[i];
                if hits + misses == 0 {
                    0.0
                } else {
                    100.0 * hits as f64 / (hits + misses) as f64
                }
            };
            let _ = writeln!(out, "  memo hits   {:>8}", memo.hits);
            let _ = writeln!(out, "  memo misses {:>8}", memo.misses);
            let _ = writeln!(
                out,
                "  memo rate   {:>7.1}%  obligation {:.1}%  classes {:.1}%  solve {:.1}%  rewrite {:.1}%",
                100.0 * memo.hit_rate(),
                kind_rate(0),
                kind_rate(1),
                kind_rate(2),
                kind_rate(3),
            );
        }
        if self.threads_reclaimed > 0 {
            let _ = writeln!(out, "  reclaimed   {:>8}", self.threads_reclaimed);
        }
        if self.shed_interactive + self.shed_bulk > 0 {
            let _ = writeln!(
                out,
                "  shed        {:>8} interactive, {} bulk",
                self.shed_interactive, self.shed_bulk
            );
        }
        if self.threads_abandoned > 0 {
            let _ = writeln!(out, "  abandoned   {:>8}", self.threads_abandoned);
        }
        let _ = writeln!(out, "  unexpected  {:>8}", self.unexpected);
        let _ = writeln!(out, "  wall        {:>11.2}s", self.wall.as_secs_f64());
        let _ = writeln!(out, "  cpu         {:>11.2}s", self.cpu.as_secs_f64());
        let _ = writeln!(out, "  throughput  {:>11.2} jobs/s", self.throughput);
        let _ = writeln!(out, "  p50 latency {:>11.3}s", self.p50.as_secs_f64());
        let _ = writeln!(out, "  p95 latency {:>11.3}s", self.p95.as_secs_f64());
        for (label, t) in [
            ("phase p50", &self.phase_p50),
            ("phase p95", &self.phase_p95),
        ] {
            let _ = writeln!(
                out,
                "  {label}   gen {:.3}s  rewrite {:.3}s  translate {:.3}s  sat {:.3}s",
                t.generate.as_secs_f64(),
                t.rewrite.as_secs_f64(),
                t.translate.as_secs_f64(),
                t.sat.as_secs_f64(),
            );
        }
        let _ = writeln!(out, "  speedup     {:>10.2}x", self.speedup);
        out
    }

    /// Whether every job produced its expected outcome.
    pub fn all_expected(&self) -> bool {
        self.unexpected == 0
    }
}

/// Encodes the memo store's traffic counters for the summary line.
fn memo_to_json(memo: &MemoSnapshot) -> Json {
    let kind = |i: usize| {
        let (hits, misses) = memo.by_kind[i];
        Json::obj([("hits", Json::from(hits)), ("misses", Json::from(misses))])
    };
    Json::obj([
        ("hits", Json::from(memo.hits)),
        ("misses", Json::from(memo.misses)),
        ("entries", Json::from(memo.entries)),
        ("bytes", Json::from(memo.bytes)),
        ("hit_rate", Json::Num(memo.hit_rate())),
        ("obligation", kind(0)),
        ("classes", kind(1)),
        ("solve", kind(2)),
        ("rewrite", kind(3)),
    ])
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use rob_verify::{Config, Strategy, Verdict, Verification};

    fn verified_result(index: usize, millis: u64) -> JobResult {
        JobResult {
            index,
            job: JobSpec::new(Config::new(4, 2).unwrap(), Strategy::default()),
            outcome: Outcome::Completed(Verification {
                verdict: Verdict::Verified,
                timings: Default::default(),
                stats: Default::default(),
                diagnostics: Vec::new(),
                degraded: None,
            }),
            duration: Duration::from_millis(millis),
            worker: 0,
            attempts: 1,
            cached: false,
            spans: None,
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&sorted, 0.50), Duration::from_millis(50));
        assert_eq!(percentile(&sorted, 0.95), Duration::from_millis(95));
        assert_eq!(percentile(&sorted[..1], 0.95), Duration::from_millis(1));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }

    #[test]
    fn summarize_counts_and_speedup() {
        let results = vec![
            verified_result(0, 100),
            verified_result(1, 300),
            JobResult {
                outcome: Outcome::Cancelled,
                ..verified_result(2, 0)
            },
            JobResult {
                outcome: Outcome::Crashed {
                    message: "x".into(),
                },
                ..verified_result(3, 50)
            },
        ];
        let report = CampaignReport::summarize(&results, Duration::from_millis(225), 2);
        assert_eq!(report.verified, 2);
        assert_eq!(report.cancelled, 1);
        assert_eq!(report.crashed, 1);
        assert_eq!(report.unexpected, 2, "cancelled + crashed are unexpected");
        assert_eq!(report.cpu, Duration::from_millis(450));
        assert!((report.speedup - 2.0).abs() < 1e-9);
        assert!(!report.all_expected());
        let rendered = report.render();
        assert!(rendered.contains("crashed"));
        assert!(rendered.contains("speedup"));
    }
}
