//! Jobs, sweeps, and per-job outcomes.

use std::time::Duration;

use rob_verify::trace::PhaseStat;
use rob_verify::{
    BugSpec, CancelToken, Config, JobBudgets, JobKey, Limits, Strategy, Verdict, Verification,
    Verifier, VerifyError,
};

/// One verification job: a processor configuration, the translation
/// strategy, and an optional seeded defect.
///
/// Everything is `Copy`, so jobs move freely across worker threads.
#[derive(Debug, Clone, Copy)]
pub struct JobSpec {
    /// Processor configuration (reorder-buffer size, issue width).
    pub config: Config,
    /// Translation strategy.
    pub strategy: Strategy,
    /// Optional seeded defect (bug-hunting jobs).
    pub bug: Option<BugSpec>,
    /// SAT resource limits applied to the job.
    pub sat_limits: Limits,
    /// Log and independently check DRUP proofs for `Verified` verdicts.
    pub check_proofs: bool,
    /// Run the rob-lint audit battery and stream its diagnostics through
    /// the event sink.
    pub audit: bool,
}

impl JobSpec {
    /// A job with no bug, no SAT limits, and no proof checking or
    /// auditing.
    pub fn new(config: Config, strategy: Strategy) -> Self {
        JobSpec {
            config,
            strategy,
            bug: None,
            sat_limits: Limits::none(),
            check_proofs: false,
            audit: false,
        }
    }

    /// Human/telemetry label, e.g. `rob8xw2/rewrite+pe` or
    /// `rob128xw4/rewrite+pe/forwarding-ignores-valid:72:src2`.
    pub fn label(&self) -> String {
        match &self.bug {
            Some(bug) => format!("{}/{}/{}", self.config, self.strategy, bug),
            None => format!("{}/{}", self.config, self.strategy),
        }
    }

    /// The content-addressed identity of this job: two jobs with equal
    /// keys are guaranteed to produce the same result (the pipeline is
    /// deterministic), so one solve can serve both.
    pub fn key(&self) -> JobKey {
        // JobSpec carries no budget knobs, and `run_cancellable` leaves
        // the verifier's budgets at their defaults — so the default
        // budgets are the truthful key input here.
        JobKey::derive(
            &self.config,
            self.strategy,
            self.bug,
            &self.sat_limits,
            &JobBudgets::default(),
            self.check_proofs,
            self.audit,
        )
    }

    /// Runs the job to completion on the current thread.
    ///
    /// # Errors
    ///
    /// Propagates [`VerifyError`] for configuration or structural
    /// failures; verification verdicts are inside the `Ok` value.
    pub fn run(&self) -> Result<Verification, VerifyError> {
        self.run_cancellable(&CancelToken::new())
    }

    /// Runs the job under a [`CancelToken`]: the verifier polls the token
    /// at its phase boundaries and inner loops, and a tripped token yields
    /// a structured cancelled verification (never a panic).
    ///
    /// # Errors
    ///
    /// Propagates [`VerifyError`] for configuration or structural
    /// failures; verification verdicts are inside the `Ok` value.
    pub fn run_cancellable(&self, cancel: &CancelToken) -> Result<Verification, VerifyError> {
        self.run_with_deadline(cancel, None)
    }

    /// [`JobSpec::run_cancellable`] under an optional remaining wall-time
    /// budget. When a deadline is supplied, half of it is granted to the
    /// rewrite phase as a private budget: a job racing its deadline
    /// degrades to the positive-equality-only translation (reported via
    /// [`Verification::degraded`]) instead of burning the whole budget
    /// rewriting and dying with nothing. The caller is expected to also
    /// carry the full deadline on `cancel` itself (a deadline-bearing
    /// child token), which turns an overall miss into a structured
    /// cancelled verification.
    ///
    /// # Errors
    ///
    /// Propagates [`VerifyError`] for configuration or structural
    /// failures; verification verdicts are inside the `Ok` value.
    pub fn run_with_deadline(
        &self,
        cancel: &CancelToken,
        deadline: Option<Duration>,
    ) -> Result<Verification, VerifyError> {
        let mut verifier = Verifier::new(self.config)
            .strategy(self.strategy)
            .sat_limits(self.sat_limits)
            .proof_checking(self.check_proofs)
            .audit(self.audit)
            .cancel(cancel.clone());
        if let Some(budget) = deadline {
            verifier = verifier.rewrite_deadline(budget / 2);
        }
        if let Some(bug) = self.bug {
            verifier = verifier.bug(bug);
        }
        verifier.run()
    }

    /// Whether a verdict is the one this job is expected to produce:
    /// bug-free jobs must verify, seeded-bug jobs must be falsified or
    /// slice-diagnosed.
    pub fn is_expected(&self, verdict: &Verdict) -> bool {
        match self.bug {
            None => *verdict == Verdict::Verified,
            Some(_) => verdict.is_falsification(),
        }
    }

    /// Whether a verdict is an *unexpected falsification* — a bug-free
    /// job reporting a counterexample or slice diagnosis. This is the
    /// fail-fast trigger: it means the design (or the verifier) is broken
    /// and the rest of the sweep is moot.
    pub fn is_unexpected_falsification(&self, verdict: &Verdict) -> bool {
        self.bug.is_none() && verdict.is_falsification()
    }
}

/// A declarative cartesian sweep: every valid combination of size ×
/// width × strategy × bug becomes one [`JobSpec`].
///
/// Width/size combinations where the width exceeds the size (the paper's
/// dash cells) and bugs that fail
/// [`BugSpec::validate`] for a configuration are skipped silently, so a
/// single sweep can span heterogeneous configurations.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Reorder-buffer sizes `N`.
    pub sizes: Vec<usize>,
    /// Issue/retire widths `k`.
    pub widths: Vec<usize>,
    /// Strategies to run each configuration under.
    pub strategies: Vec<Strategy>,
    /// Bug axis; `None` entries are bug-free runs. Defaults to
    /// `vec![None]` (bug-free only).
    pub bugs: Vec<Option<BugSpec>>,
    /// SAT limits applied to every job.
    pub sat_limits: Limits,
    /// DRUP proof checking for every job.
    pub check_proofs: bool,
    /// rob-lint auditing for every job.
    pub audit: bool,
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep {
            sizes: Vec::new(),
            widths: Vec::new(),
            strategies: vec![Strategy::default()],
            bugs: vec![None],
            sat_limits: Limits::none(),
            check_proofs: false,
            audit: false,
        }
    }
}

impl Sweep {
    /// A sweep over the given sizes and widths with the default strategy.
    pub fn new(sizes: impl Into<Vec<usize>>, widths: impl Into<Vec<usize>>) -> Self {
        Sweep {
            sizes: sizes.into(),
            widths: widths.into(),
            ..Sweep::default()
        }
    }

    /// Replaces the strategy axis.
    pub fn strategies(mut self, strategies: impl Into<Vec<Strategy>>) -> Self {
        self.strategies = strategies.into();
        self
    }

    /// Replaces the bug axis.
    pub fn bugs(mut self, bugs: impl Into<Vec<Option<BugSpec>>>) -> Self {
        self.bugs = bugs.into();
        self
    }

    /// Applies SAT limits to every job.
    pub fn sat_limits(mut self, limits: Limits) -> Self {
        self.sat_limits = limits;
        self
    }

    /// Enables DRUP proof checking for every job.
    pub fn check_proofs(mut self, enabled: bool) -> Self {
        self.check_proofs = enabled;
        self
    }

    /// Enables rob-lint auditing for every job.
    pub fn audit(mut self, enabled: bool) -> Self {
        self.audit = enabled;
        self
    }

    /// Expands the sweep into concrete jobs, in deterministic
    /// size-major order.
    pub fn jobs(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::new();
        for &size in &self.sizes {
            for &width in &self.widths {
                let Ok(config) = Config::new(size, width) else {
                    continue;
                };
                for &strategy in &self.strategies {
                    for &bug in &self.bugs {
                        if let Some(b) = bug {
                            if b.validate(&config).is_err() {
                                continue;
                            }
                        }
                        jobs.push(JobSpec {
                            config,
                            strategy,
                            bug,
                            sat_limits: self.sat_limits,
                            check_proofs: self.check_proofs,
                            audit: self.audit,
                        });
                    }
                }
            }
        }
        jobs
    }
}

/// What happened to one job.
// One Outcome lives per campaign job, pattern-matched everywhere; the
// size skew from the inline Verification is not worth boxing for.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The verifier ran to completion (the verdict may still be a
    /// falsification or a resource limit — see [`Verification::verdict`]).
    Completed(Verification),
    /// The verifier returned a driver error (bad configuration,
    /// structural mismatch).
    Error(VerifyError),
    /// The job panicked; the campaign continued. Carries the panic
    /// payload message.
    Crashed {
        /// Panic payload, if it was a string.
        message: String,
    },
    /// The job exceeded its wall-clock deadline on every attempt.
    TimedOut {
        /// Total attempts made (1 + retries granted).
        attempts: u32,
    },
    /// The job was cancelled before it started (fail-fast abort).
    Cancelled,
}

impl Outcome {
    /// Stable machine-readable label for telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Completed(v) => v.verdict.label(),
            Outcome::Error(_) => "error",
            Outcome::Crashed { .. } => "crashed",
            Outcome::TimedOut { .. } => "timed-out",
            Outcome::Cancelled => "cancelled",
        }
    }

    /// The verification result, when the job completed.
    pub fn verification(&self) -> Option<&Verification> {
        match self {
            Outcome::Completed(v) => Some(v),
            _ => None,
        }
    }

    /// The verdict, when the job completed.
    pub fn verdict(&self) -> Option<&Verdict> {
        self.verification().map(|v| &v.verdict)
    }
}

/// A finished job with its outcome and scheduling metadata.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Index of the job in the campaign's job list.
    pub index: usize,
    /// The job that ran.
    pub job: JobSpec,
    /// What happened.
    pub outcome: Outcome,
    /// Wall-clock duration of the final attempt (zero for cancelled
    /// jobs).
    pub duration: Duration,
    /// Worker that ran the final attempt.
    pub worker: usize,
    /// Number of attempts made.
    pub attempts: u32,
    /// Whether the outcome was copied from an identical job instead of
    /// being solved again (intra-campaign deduplication; see
    /// [`JobSpec::key`]).
    pub cached: bool,
    /// Per-phase span rollup of the run, collected when the campaign ran
    /// with profiling enabled (`Campaign::profile`); `None` otherwise.
    /// Duplicates carry the rollup of their canonical solve.
    pub spans: Option<Vec<PhaseStat>>,
}

impl JobResult {
    /// Whether the outcome is the one the job expects (see
    /// [`JobSpec::is_expected`]). Crashes, timeouts, cancellations, and
    /// driver errors are never expected.
    pub fn is_expected(&self) -> bool {
        match &self.outcome {
            Outcome::Completed(v) => self.job.is_expected(&v.verdict),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_expands_cartesian_and_skips_invalid() {
        let sweep = Sweep::new([2usize, 4], [1usize, 2, 8])
            .strategies([Strategy::PositiveEqualityOnly, Strategy::default()]);
        let jobs = sweep.jobs();
        // width 8 exceeds both sizes; remaining grid is 2 sizes x 2
        // widths x 2 strategies.
        assert_eq!(jobs.len(), 8);
        assert!(jobs
            .iter()
            .all(|j| j.config.issue_width() <= j.config.rob_size()));
    }

    #[test]
    fn sweep_drops_bugs_invalid_for_config() {
        let bug = Some(BugSpec::paper_variant()); // slice 72 needs size >= 72
        let sweep = Sweep::new([4usize, 128], [4usize]).bugs([None, bug]);
        let jobs = sweep.jobs();
        let with_bug: Vec<_> = jobs.iter().filter(|j| j.bug.is_some()).collect();
        assert_eq!(with_bug.len(), 1);
        assert_eq!(with_bug[0].config.rob_size(), 128);
        assert_eq!(jobs.iter().filter(|j| j.bug.is_none()).count(), 2);
    }

    #[test]
    fn expectations() {
        let ok = JobSpec::new(Config::new(4, 2).unwrap(), Strategy::default());
        assert!(ok.is_expected(&Verdict::Verified));
        assert!(!ok.is_expected(&Verdict::ResourceLimit("x".into())));
        let falsified = Verdict::Falsified { true_vars: vec![] };
        assert!(ok.is_unexpected_falsification(&falsified));
        let buggy = JobSpec {
            bug: Some(BugSpec::RetireOutOfOrder { slice: 2 }),
            ..ok
        };
        assert!(buggy.is_expected(&falsified));
        assert!(!buggy.is_unexpected_falsification(&falsified));
        assert!(!buggy.is_expected(&Verdict::Verified));
    }

    #[test]
    fn labels_are_stable() {
        let job = JobSpec::new(Config::new(8, 2).unwrap(), Strategy::default());
        assert_eq!(job.label(), "rob8xw2/rewrite+pe");
        let buggy = JobSpec {
            bug: Some(BugSpec::paper_variant()),
            ..job
        };
        assert_eq!(
            buggy.label(),
            "rob8xw2/rewrite+pe/forwarding-ignores-valid:72:src2"
        );
    }
}
