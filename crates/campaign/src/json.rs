//! A tiny self-contained JSON value type: compact serialization for the
//! JSONL event stream and a strict parser used by the tests and consumers
//! to validate emitted lines.
//!
//! No external dependencies are available in the build environment, so
//! this deliberately implements only what the telemetry needs: the
//! standard value types, compact (single-line) output, and full string
//! escaping.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (serialized via `f64`; integers print without a dot).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keyed by a sorted map so output is deterministic, which
    /// keeps the event stream diffable across runs.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses a complete JSON document. Strict: rejects trailing input.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == token {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", token as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so the
                // boundaries are valid by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| "empty string tail".to_owned())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_compact_values() {
        let value = Json::obj([
            ("b", Json::Bool(true)),
            ("n", Json::Num(1.5)),
            ("i", Json::from(42usize)),
            ("s", Json::str("a \"quoted\"\nline")),
            ("a", Json::Arr(vec![Json::Null, Json::Num(2.0)])),
            ("o", Json::obj([("k", Json::str("v"))])),
        ]);
        let text = value.to_string();
        assert!(!text.contains('\n'), "must serialize to one line: {text}");
        assert_eq!(parse(&text).unwrap(), value);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(7usize).to_string(), "7");
        assert_eq!(Json::Num(0.25).to_string(), "0.25");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"abc").is_err());
    }
}
