//! Parallel verification-campaign orchestration.
//!
//! The paper's experimental tables are sweeps: dozens of processor
//! configurations, each verified under several translation strategies,
//! some with seeded defects. This crate runs such sweeps as *campaigns*:
//!
//! - [`Sweep`] declares the cartesian job grid (ROB sizes × issue
//!   widths × strategies × optional bugs); [`JobSpec`] is one cell.
//! - [`Campaign`] schedules jobs onto a bounded work-stealing pool of
//!   OS threads, with per-job wall-clock deadlines, bounded retries for
//!   timeouts, panic isolation (a crashing job becomes
//!   [`Outcome::Crashed`]; the campaign survives), and cooperative
//!   fail-fast cancellation on the first unexpected falsification.
//! - Every scheduling transition is emitted to an [`EventSink`]; the
//!   bundled [`JsonlSink`] writes one JSON object per line for
//!   downstream tooling, and [`CampaignReport`] aggregates throughput,
//!   latency percentiles, and the CPU-vs-wall speedup at the end.
//!
//! ```
//! use campaign::{Campaign, MemorySink, Sweep};
//!
//! let sweep = Sweep::new([2usize, 3], [1usize]);
//! let sink = MemorySink::new();
//! let outcome = Campaign::from_sweep(&sweep).workers(2).run(&sink);
//! assert!(outcome.all_expected());
//! assert_eq!(outcome.report.verified, 2);
//! ```

pub mod codec;
pub mod events;
pub mod job;
pub mod json;
pub mod pool;
pub mod report;
pub mod run;
pub mod sweepfile;

pub use events::{Event, EventSink, JsonlSink, MemorySink, NullSink, Tee};
pub use job::{JobResult, JobSpec, Outcome, Sweep};
pub use pool::{default_workers, CancelToken, PoolOptions, Priority, ServicePool, SubmitError};
pub use report::CampaignReport;
pub use run::{Campaign, CampaignOutcome, JobRunner};
pub use sweepfile::SweepFile;
