//! A bounded work-stealing worker pool with panic isolation, per-job
//! watchdog timeouts, bounded retry, and cooperative cancellation.
//!
//! The pool is generic over the job and result types so it can schedule
//! anything — the campaign layer feeds it verification jobs, the bench
//! harness feeds it table cells. Scheduling:
//!
//! - Jobs are distributed round-robin across per-worker deques up front.
//! - A worker pops from the **front** of its own deque and, when empty,
//!   steals from the **back** of a sibling's — the classic split that
//!   keeps owner and thief off the same end.
//! - With a timeout configured, the worker doubles as a watchdog: the job
//!   runs on a dedicated thread and the worker waits on a channel with a
//!   deadline. A timed-out job thread is abandoned (it cannot be killed
//!   safely); callers bound the damage by also passing SAT time limits to
//!   the job itself so the orphan exits on its own.
//! - Panics are contained with [`std::panic::catch_unwind`]; a panicking
//!   job becomes [`ExecOutcome::Panicked`] and the campaign continues.
//! - Cancellation is cooperative: a tripped [`CancelToken`] makes every
//!   not-yet-started job resolve to [`ExecOutcome::Cancelled`].
//!
//! For long-running services, [`ServicePool`] keeps the same workers
//! resident: jobs are submitted one at a time through a **bounded
//! admission queue** (submissions beyond the bound are rejected with
//! [`SubmitError::Overloaded`] instead of queuing unboundedly), each
//! submission gets a reply channel, and shutdown drains — queued and
//! in-flight jobs finish, new submissions are refused.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduling parameters for [`execute`].
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Worker count; clamped to at least 1.
    pub workers: usize,
    /// Per-attempt wall-clock deadline. `None` disables the watchdog and
    /// runs jobs inline on the workers.
    pub timeout: Option<Duration>,
    /// Extra attempts granted to a job whose attempt timed out. Panics
    /// are not retried — they are deterministic.
    pub retries: u32,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            workers: default_workers(),
            timeout: None,
            retries: 0,
        }
    }
}

/// The machine's available parallelism (1 when unknown).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// A shared flag that aborts all not-yet-started jobs when tripped.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token. Running jobs finish; queued jobs are cancelled.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Scheduling-level outcome of one job.
#[derive(Debug, Clone)]
pub enum ExecOutcome<R> {
    /// The job ran to completion.
    Done(R),
    /// The job panicked. Carries the payload message.
    Panicked {
        /// Panic payload, if it was a string.
        message: String,
    },
    /// Every attempt exceeded the deadline.
    TimedOut,
    /// The job was cancelled before starting.
    Cancelled,
}

/// A job's final outcome plus scheduling metadata.
#[derive(Debug, Clone)]
pub struct ExecResult<R> {
    /// The outcome.
    pub outcome: ExecOutcome<R>,
    /// Wall time of the final attempt (zero for cancelled jobs).
    pub duration: Duration,
    /// Worker that resolved the job.
    pub worker: usize,
    /// Attempts made (0 for cancelled jobs).
    pub attempts: u32,
}

/// Scheduling callbacks, invoked from worker threads.
pub trait Observer<T, R>: Sync {
    /// A job attempt is about to run.
    fn on_start(&self, _index: usize, _job: &T, _worker: usize, _attempt: u32) {}
    /// A job attempt timed out and will be retried.
    fn on_retry(&self, _index: usize, _job: &T, _worker: usize, _attempt: u32) {}
    /// A job resolved (this is the final attempt).
    fn on_finish(&self, _index: usize, _job: &T, _result: &ExecResult<R>) {}
}

/// The no-op observer.
impl<T, R> Observer<T, R> for () {}

struct Task<T> {
    index: usize,
    job: T,
    attempt: u32,
}

/// Runs `jobs` through the pool and returns one [`ExecResult`] per job,
/// in input order.
///
/// `run` executes on worker (or watchdogged job) threads, so it must be
/// `Send + Sync + 'static`; it receives each job by reference. Jobs must
/// be `Clone` because a timed-out attempt may be retried from a fresh
/// copy.
pub fn execute<T, R, F, O>(
    jobs: Vec<T>,
    options: &PoolOptions,
    cancel: &CancelToken,
    run: Arc<F>,
    observer: &O,
) -> Vec<ExecResult<R>>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(&T) -> R + Send + Sync + 'static,
    O: Observer<T, R>,
{
    let total = jobs.len();
    let workers = options.workers.max(1).min(total.max(1));
    let queues: Vec<Mutex<VecDeque<Task<T>>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (index, job) in jobs.into_iter().enumerate() {
        queues[index % workers]
            .lock()
            .expect("queue poisoned")
            .push_back(Task {
                index,
                job,
                attempt: 1,
            });
    }
    let pending = AtomicUsize::new(total);
    let results: Vec<Mutex<Option<ExecResult<R>>>> = (0..total).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let results = &results;
            let pending = &pending;
            let run = Arc::clone(&run);
            let cancel = cancel.clone();
            scope.spawn(move || {
                worker_loop(
                    me, queues, results, pending, options, &cancel, run, observer,
                );
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result poisoned")
                .expect("job unresolved")
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<T, R, F, O>(
    me: usize,
    queues: &[Mutex<VecDeque<Task<T>>>],
    results: &[Mutex<Option<ExecResult<R>>>],
    pending: &AtomicUsize,
    options: &PoolOptions,
    cancel: &CancelToken,
    run: Arc<F>,
    observer: &O,
) where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(&T) -> R + Send + Sync + 'static,
    O: Observer<T, R>,
{
    while pending.load(Ordering::SeqCst) > 0 {
        let Some(mut task) = next_task(me, queues) else {
            // All queues look empty but jobs are still pending (another
            // worker is running one, or a retry is about to be queued).
            std::thread::sleep(Duration::from_micros(200));
            continue;
        };

        if cancel.is_cancelled() {
            let result = ExecResult {
                outcome: ExecOutcome::Cancelled,
                duration: Duration::ZERO,
                worker: me,
                attempts: 0,
            };
            observer.on_finish(task.index, &task.job, &result);
            resolve(results, pending, task.index, result);
            continue;
        }

        observer.on_start(task.index, &task.job, me, task.attempt);
        let started = Instant::now();
        let outcome = run_attempt(&task.job, options.timeout, &run);
        let duration = started.elapsed();

        if matches!(outcome, ExecOutcome::TimedOut) && task.attempt <= options.retries {
            observer.on_retry(task.index, &task.job, me, task.attempt);
            task.attempt += 1;
            queues[me].lock().expect("queue poisoned").push_back(task);
            continue;
        }

        let result = ExecResult {
            outcome,
            duration,
            worker: me,
            attempts: task.attempt,
        };
        observer.on_finish(task.index, &task.job, &result);
        resolve(results, pending, task.index, result);
    }
}

/// Pops from the worker's own queue front, else steals from a sibling's
/// back.
fn next_task<T>(me: usize, queues: &[Mutex<VecDeque<Task<T>>>]) -> Option<Task<T>> {
    if let Some(task) = queues[me].lock().expect("queue poisoned").pop_front() {
        return Some(task);
    }
    let n = queues.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        if let Some(task) = queues[victim].lock().expect("queue poisoned").pop_back() {
            return Some(task);
        }
    }
    None
}

fn resolve<R>(
    results: &[Mutex<Option<ExecResult<R>>>],
    pending: &AtomicUsize,
    index: usize,
    result: ExecResult<R>,
) {
    *results[index].lock().expect("result poisoned") = Some(result);
    pending.fetch_sub(1, Ordering::SeqCst);
}

fn run_attempt<T, R, F>(job: &T, timeout: Option<Duration>, run: &Arc<F>) -> ExecOutcome<R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(&T) -> R + Send + Sync + 'static,
{
    match timeout {
        None => match catch_unwind(AssertUnwindSafe(|| run(job))) {
            Ok(value) => ExecOutcome::Done(value),
            Err(payload) => ExecOutcome::Panicked {
                message: panic_message(payload.as_ref()),
            },
        },
        Some(deadline) => {
            let (tx, rx) = mpsc::channel();
            let job = job.clone();
            let run = Arc::clone(run);
            // The job thread is deliberately detached: if it outlives the
            // deadline there is no safe way to kill it, so the watchdog
            // abandons it and reports a timeout. `tx.send` failing just
            // means the watchdog already gave up listening.
            std::thread::Builder::new()
                .name("campaign-job".to_owned())
                .spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| run(&job)));
                    let _ = tx.send(result);
                })
                .expect("spawn job thread");
            match rx.recv_timeout(deadline) {
                Ok(Ok(value)) => ExecOutcome::Done(value),
                Ok(Err(payload)) => ExecOutcome::Panicked {
                    message: panic_message(payload.as_ref()),
                },
                Err(RecvTimeoutError::Timeout) => ExecOutcome::TimedOut,
                Err(RecvTimeoutError::Disconnected) => ExecOutcome::Panicked {
                    message: "job thread vanished without reporting".to_owned(),
                },
            }
        }
    }
}

/// Why a [`ServicePool`] submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is full; the caller should shed the request
    /// (the serving layer answers `overloaded`) rather than block.
    Overloaded {
        /// Jobs waiting in the queue when the submission arrived.
        depth: usize,
        /// The configured queue bound.
        limit: usize,
    },
    /// The pool is draining and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { depth, limit } => {
                write!(f, "admission queue full ({depth} waiting, limit {limit})")
            }
            SubmitError::ShuttingDown => f.write_str("pool is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct ServiceTask<T, R> {
    job: T,
    reply: Sender<ExecResult<R>>,
}

struct ServiceShared<T, R> {
    queue: Mutex<VecDeque<ServiceTask<T, R>>>,
    available: Condvar,
    queue_limit: usize,
    shutdown: AtomicBool,
    active: AtomicUsize,
}

/// A resident worker pool for serving workloads: jobs are submitted
/// individually, results come back on per-submission channels, and the
/// admission queue is bounded.
///
/// Execution semantics match [`execute`]: per-attempt watchdog deadlines
/// with bounded retry, and `catch_unwind` panic isolation (a panicking
/// job resolves to [`ExecOutcome::Panicked`]; the worker survives).
pub struct ServicePool<T: Send + 'static, R: Send + 'static> {
    shared: Arc<ServiceShared<T, R>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    timeout: Option<Duration>,
    retries: u32,
}

impl<T, R> ServicePool<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    /// Starts `options.workers` resident workers running `run`, with an
    /// admission queue bounded at `queue_limit` waiting jobs.
    pub fn start<F>(options: &PoolOptions, queue_limit: usize, run: Arc<F>) -> Self
    where
        F: Fn(&T) -> R + Send + Sync + 'static,
    {
        let shared = Arc::new(ServiceShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            queue_limit,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
        });
        let timeout = options.timeout;
        let retries = options.retries;
        let workers = (0..options.workers.max(1))
            .map(|me| {
                let shared = Arc::clone(&shared);
                let run = Arc::clone(&run);
                std::thread::Builder::new()
                    .name(format!("service-worker-{me}"))
                    .spawn(move || service_worker(me, &shared, timeout, retries, &run))
                    .expect("spawn service worker")
            })
            .collect();
        ServicePool {
            shared,
            workers: Mutex::new(workers),
            timeout,
            retries,
        }
    }

    /// Submits one job; the result arrives on the returned channel.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the admission queue is at its
    /// bound, [`SubmitError::ShuttingDown`] once [`ServicePool::shutdown`]
    /// has begun.
    pub fn submit(&self, job: T) -> Result<Receiver<ExecResult<R>>, SubmitError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let (reply, receiver) = mpsc::channel();
        let mut queue = self.shared.queue.lock().expect("queue poisoned");
        if queue.len() >= self.shared.queue_limit {
            return Err(SubmitError::Overloaded {
                depth: queue.len(),
                limit: self.shared.queue_limit,
            });
        }
        queue.push_back(ServiceTask { job, reply });
        drop(queue);
        self.shared.available.notify_one();
        Ok(receiver)
    }

    /// Jobs waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("queue poisoned").len()
    }

    /// Jobs currently executing on workers.
    pub fn active_jobs(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// The per-attempt deadline workers apply.
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// The retry budget for timed-out attempts.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Drains the pool: refuses new submissions, lets queued and
    /// in-flight jobs finish, and joins every worker. Idempotent — the
    /// serving layer can call it from any thread holding an `Arc` to the
    /// pool.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("workers poisoned"));
        for worker in workers {
            let _ = worker.join();
        }
    }
}

fn service_worker<T, R, F>(
    me: usize,
    shared: &ServiceShared<T, R>,
    timeout: Option<Duration>,
    retries: u32,
    run: &Arc<F>,
) where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(&T) -> R + Send + Sync + 'static,
{
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(task) = queue.pop_front() {
                    break Some(task);
                }
                // Drain semantics: the queue is empty; exit only now that
                // shutdown is flagged, so queued jobs always finish.
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.available.wait(queue).expect("queue poisoned");
            }
        };
        let Some(task) = task else {
            return;
        };
        shared.active.fetch_add(1, Ordering::SeqCst);
        let mut attempt = 1u32;
        loop {
            let started = Instant::now();
            let outcome = run_attempt(&task.job, timeout, run);
            let duration = started.elapsed();
            if matches!(outcome, ExecOutcome::TimedOut) && attempt <= retries {
                attempt += 1;
                continue;
            }
            // A dropped receiver (client went away) is not an error for
            // the pool; the job's effects (e.g. a cache insert done by the
            // `run` closure's caller) are delivered elsewhere.
            let _ = task.reply.send(ExecResult {
                outcome,
                duration,
                worker: me,
                attempts: attempt,
            });
            break;
        }
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Extracts the conventional `&str` / `String` payload from a panic.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_square(jobs: Vec<u64>, options: &PoolOptions) -> Vec<ExecResult<u64>> {
        execute(
            jobs,
            options,
            &CancelToken::new(),
            Arc::new(|n: &u64| n * n),
            &(),
        )
    }

    #[test]
    fn preserves_input_order_across_workers() {
        let jobs: Vec<u64> = (0..50).collect();
        for workers in [1, 3, 8] {
            let results = run_square(
                jobs.clone(),
                &PoolOptions {
                    workers,
                    ..PoolOptions::default()
                },
            );
            let values: Vec<u64> = results
                .iter()
                .map(|r| match r.outcome {
                    ExecOutcome::Done(v) => v,
                    ref other => panic!("unexpected outcome {other:?}"),
                })
                .collect();
            assert_eq!(values, jobs.iter().map(|n| n * n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn panics_are_isolated() {
        let jobs: Vec<u64> = (0..10).collect();
        let results = execute(
            jobs,
            &PoolOptions {
                workers: 4,
                ..PoolOptions::default()
            },
            &CancelToken::new(),
            Arc::new(|n: &u64| {
                if *n == 3 {
                    panic!("boom on {n}");
                }
                *n
            }),
            &(),
        );
        assert_eq!(results.len(), 10);
        for (i, r) in results.iter().enumerate() {
            match (&r.outcome, i) {
                (ExecOutcome::Panicked { message }, 3) => {
                    assert!(message.contains("boom on 3"), "{message}");
                }
                (ExecOutcome::Done(v), _) => assert_eq!(*v, i as u64),
                (other, _) => panic!("job {i}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn timeouts_are_reported_and_retried() {
        struct CountRetries(AtomicUsize);
        impl Observer<u64, u64> for CountRetries {
            fn on_retry(&self, _i: usize, _j: &u64, _w: usize, _a: u32) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let observer = CountRetries(AtomicUsize::new(0));
        let results = execute(
            vec![1u64, 0, 2],
            &PoolOptions {
                workers: 2,
                timeout: Some(Duration::from_millis(40)),
                retries: 1,
            },
            &CancelToken::new(),
            Arc::new(|n: &u64| {
                if *n == 0 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                *n
            }),
            &observer,
        );
        assert!(matches!(results[0].outcome, ExecOutcome::Done(1)));
        assert!(
            matches!(results[1].outcome, ExecOutcome::TimedOut),
            "{:?}",
            results[1]
        );
        assert_eq!(results[1].attempts, 2, "retry must be honored");
        assert!(matches!(results[2].outcome, ExecOutcome::Done(2)));
        assert_eq!(observer.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn service_pool_delivers_results_per_submission() {
        let pool: ServicePool<u64, u64> = ServicePool::start(
            &PoolOptions {
                workers: 3,
                ..PoolOptions::default()
            },
            64,
            Arc::new(|n: &u64| n * n),
        );
        let receivers: Vec<_> = (0..20u64).map(|n| pool.submit(n).unwrap()).collect();
        for (n, rx) in receivers.into_iter().enumerate() {
            let result = rx.recv().expect("result delivered");
            match result.outcome {
                ExecOutcome::Done(v) => assert_eq!(v, (n * n) as u64),
                other => panic!("job {n}: unexpected {other:?}"),
            }
        }
        pool.shutdown();
    }

    #[test]
    fn service_pool_sheds_load_beyond_queue_limit() {
        let gate = Arc::new(AtomicBool::new(false));
        let hold = Arc::clone(&gate);
        let pool: ServicePool<u64, u64> = ServicePool::start(
            &PoolOptions {
                workers: 1,
                ..PoolOptions::default()
            },
            1,
            Arc::new(move |n: &u64| {
                while !hold.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                *n
            }),
        );
        // First job occupies the worker; second sits in the queue; the
        // third must be shed.
        let first = pool.submit(1).unwrap();
        while pool.active_jobs() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let second = pool.submit(2).unwrap();
        let shed = pool.submit(3);
        assert_eq!(
            shed.unwrap_err(),
            SubmitError::Overloaded { depth: 1, limit: 1 }
        );
        gate.store(true, Ordering::SeqCst);
        assert!(matches!(
            first.recv().unwrap().outcome,
            ExecOutcome::Done(1)
        ));
        assert!(matches!(
            second.recv().unwrap().outcome,
            ExecOutcome::Done(2)
        ));
        pool.shutdown();
    }

    #[test]
    fn service_pool_shutdown_drains_queued_jobs() {
        let pool: ServicePool<u64, u64> = ServicePool::start(
            &PoolOptions {
                workers: 1,
                ..PoolOptions::default()
            },
            64,
            Arc::new(|n: &u64| {
                std::thread::sleep(Duration::from_millis(2));
                *n + 100
            }),
        );
        let receivers: Vec<_> = (0..10u64).map(|n| pool.submit(n).unwrap()).collect();
        pool.shutdown();
        for (n, rx) in receivers.into_iter().enumerate() {
            let result = rx.recv().expect("queued job drained, not dropped");
            assert!(matches!(result.outcome, ExecOutcome::Done(v) if v == n as u64 + 100));
        }
    }

    #[test]
    fn service_pool_refuses_after_shutdown_and_survives_panics() {
        let pool: ServicePool<u64, u64> = ServicePool::start(
            &PoolOptions {
                workers: 2,
                ..PoolOptions::default()
            },
            8,
            Arc::new(|n: &u64| {
                if *n == 7 {
                    panic!("unlucky {n}");
                }
                *n
            }),
        );
        let bad = pool.submit(7).unwrap();
        match bad.recv().unwrap().outcome {
            ExecOutcome::Panicked { message } => assert!(message.contains("unlucky 7")),
            other => panic!("unexpected {other:?}"),
        }
        // The worker that caught the panic still serves.
        let good = pool.submit(5).unwrap();
        assert!(matches!(good.recv().unwrap().outcome, ExecOutcome::Done(5)));
        pool.shutdown();
        assert_eq!(pool.submit(9).unwrap_err(), SubmitError::ShuttingDown);
        // Idempotent: a second drain is a no-op.
        pool.shutdown();
    }

    #[test]
    fn cancellation_skips_queued_jobs() {
        let cancel = CancelToken::new();
        let trip = cancel.clone();
        let results = execute(
            (0..40).collect::<Vec<u64>>(),
            &PoolOptions {
                workers: 1,
                ..PoolOptions::default()
            },
            &cancel,
            Arc::new(move |n: &u64| {
                if *n == 0 {
                    trip.cancel();
                }
                *n
            }),
            &(),
        );
        assert!(matches!(results[0].outcome, ExecOutcome::Done(0)));
        let cancelled = results
            .iter()
            .filter(|r| matches!(r.outcome, ExecOutcome::Cancelled))
            .count();
        assert_eq!(cancelled, 39, "all queued jobs must be cancelled");
    }
}
