//! A bounded work-stealing worker pool with panic isolation, per-job
//! watchdog timeouts, bounded retry, and cooperative cancellation.
//!
//! The pool is generic over the job and result types so it can schedule
//! anything — the campaign layer feeds it verification jobs, the bench
//! harness feeds it table cells. Scheduling:
//!
//! - Jobs are distributed round-robin across per-worker deques up front.
//! - A worker pops from the **front** of its own deque and, when empty,
//!   steals from the **back** of a sibling's — the classic split that
//!   keeps owner and thief off the same end.
//! - With a timeout configured, the worker doubles as a watchdog: the job
//!   runs on a dedicated thread holding a deadline-bearing child
//!   [`CancelToken`], and the worker waits on a channel. When the deadline
//!   passes, the watchdog trips the child token and grants the job a short
//!   grace window ([`PoolOptions::cancel_grace`]) to observe it; a job
//!   that exits in time has its thread joined (*reclaimed*), one that does
//!   not is abandoned — it cannot be killed safely — and counted in
//!   [`PoolStats::abandoned_threads`].
//! - Panics are contained with [`std::panic::catch_unwind`]; a panicking
//!   job becomes [`ExecOutcome::Panicked`] and the campaign continues.
//! - Cancellation is cooperative: every job closure receives a
//!   [`CancelToken`] it is expected to poll, and a tripped token makes
//!   every not-yet-started job resolve to [`ExecOutcome::Cancelled`].
//!
//! For long-running services, [`ServicePool`] keeps the same workers
//! resident: jobs are submitted one at a time through a **bounded
//! admission queue** (submissions beyond the bound are rejected with
//! [`SubmitError::Overloaded`] instead of queuing unboundedly), each
//! submission gets a reply channel plus a per-job cancel handle, and
//! shutdown either drains ([`ServicePool::shutdown`]) or trips every
//! outstanding token first ([`ServicePool::shutdown_now`]).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub use rob_verify::CancelToken;

/// Scheduling parameters for [`execute`].
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Worker count; clamped to at least 1.
    pub workers: usize,
    /// Per-attempt wall-clock deadline. `None` disables the watchdog and
    /// runs jobs inline on the workers.
    pub timeout: Option<Duration>,
    /// Extra attempts granted to a job whose attempt timed out. Panics
    /// are not retried — they are deterministic.
    pub retries: u32,
    /// How long the watchdog waits, after tripping a timed-out job's
    /// cancel token, for the job thread to exit before abandoning it.
    pub cancel_grace: Duration,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            workers: default_workers(),
            timeout: None,
            retries: 0,
            cancel_grace: Duration::from_millis(100),
        }
    }
}

/// The machine's available parallelism (1 when unknown).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Admission lane for a [`ServicePool`] submission. Interactive traffic
/// is admitted up to the full queue bound and dispatched first; bulk
/// traffic is admitted only while total occupancy stays under the bulk
/// ceiling, so overload sheds bulk strictly before interactive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic: full admission bound, dispatched first.
    #[default]
    Interactive,
    /// Throughput traffic: shed first under overload.
    Bulk,
}

impl Priority {
    /// Stable lowercase name used on the wire and in metrics labels.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Bulk => "bulk",
        }
    }

    /// Parses the wire name back into a lane.
    pub fn from_label(label: &str) -> Option<Priority> {
        match label {
            "interactive" => Some(Priority::Interactive),
            "bulk" => Some(Priority::Bulk),
            _ => None,
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Thread-accounting totals for a pool run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Timed-out job threads that observed their cancel token within the
    /// grace window and were joined.
    pub reclaimed_threads: u64,
    /// Timed-out job threads that ignored cancellation past the grace
    /// window and were detached.
    pub abandoned_threads: u64,
    /// Interactive submissions refused because the queue was at its bound.
    pub shed_interactive: u64,
    /// Bulk submissions refused at the bulk admission ceiling.
    pub shed_bulk: u64,
}

#[derive(Default)]
struct Counters {
    reclaimed: AtomicU64,
    abandoned: AtomicU64,
    shed_interactive: AtomicU64,
    shed_bulk: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> PoolStats {
        PoolStats {
            reclaimed_threads: self.reclaimed.load(Ordering::SeqCst),
            abandoned_threads: self.abandoned.load(Ordering::SeqCst),
            shed_interactive: self.shed_interactive.load(Ordering::SeqCst),
            shed_bulk: self.shed_bulk.load(Ordering::SeqCst),
        }
    }
}

/// Scheduling-level outcome of one job.
#[derive(Debug, Clone)]
pub enum ExecOutcome<R> {
    /// The job ran to completion.
    Done(R),
    /// The job panicked. Carries the payload message.
    Panicked {
        /// Panic payload, if it was a string.
        message: String,
    },
    /// Every attempt exceeded the deadline.
    TimedOut,
    /// The job was cancelled before starting.
    Cancelled,
}

/// A job's final outcome plus scheduling metadata.
#[derive(Debug, Clone)]
pub struct ExecResult<R> {
    /// The outcome.
    pub outcome: ExecOutcome<R>,
    /// Wall time of the final attempt (zero for cancelled jobs).
    pub duration: Duration,
    /// Worker that resolved the job.
    pub worker: usize,
    /// Attempts made (0 for cancelled jobs).
    pub attempts: u32,
}

/// Scheduling callbacks, invoked from worker threads.
pub trait Observer<T, R>: Sync {
    /// A job attempt is about to run.
    fn on_start(&self, _index: usize, _job: &T, _worker: usize, _attempt: u32) {}
    /// A job attempt timed out and will be retried.
    fn on_retry(&self, _index: usize, _job: &T, _worker: usize, _attempt: u32) {}
    /// A job resolved (this is the final attempt).
    fn on_finish(&self, _index: usize, _job: &T, _result: &ExecResult<R>) {}
}

/// The no-op observer.
impl<T, R> Observer<T, R> for () {}

struct Task<T> {
    index: usize,
    job: T,
    attempt: u32,
}

/// Runs `jobs` through the pool and returns one [`ExecResult`] per job,
/// in input order. See [`execute_collect`] for the variant that also
/// reports thread-accounting totals.
///
/// `run` executes on worker (or watchdogged job) threads, so it must be
/// `Send + Sync + 'static`; it receives each job by reference together
/// with a [`CancelToken`] it should poll at its own loop heads. Jobs must
/// be `Clone` because a timed-out attempt may be retried from a fresh
/// copy.
pub fn execute<T, R, F, O>(
    jobs: Vec<T>,
    options: &PoolOptions,
    cancel: &CancelToken,
    run: Arc<F>,
    observer: &O,
) -> Vec<ExecResult<R>>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(&T, &CancelToken) -> R + Send + Sync + 'static,
    O: Observer<T, R>,
{
    execute_collect(jobs, options, cancel, run, observer).0
}

/// [`execute`] plus the run's [`PoolStats`].
pub fn execute_collect<T, R, F, O>(
    jobs: Vec<T>,
    options: &PoolOptions,
    cancel: &CancelToken,
    run: Arc<F>,
    observer: &O,
) -> (Vec<ExecResult<R>>, PoolStats)
where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(&T, &CancelToken) -> R + Send + Sync + 'static,
    O: Observer<T, R>,
{
    let total = jobs.len();
    let workers = options.workers.max(1).min(total.max(1));
    let queues: Vec<Mutex<VecDeque<Task<T>>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (index, job) in jobs.into_iter().enumerate() {
        queues[index % workers]
            .lock()
            .expect("queue poisoned")
            .push_back(Task {
                index,
                job,
                attempt: 1,
            });
    }
    let pending = AtomicUsize::new(total);
    let results: Vec<Mutex<Option<ExecResult<R>>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let counters = Counters::default();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let results = &results;
            let pending = &pending;
            let counters = &counters;
            let run = Arc::clone(&run);
            let cancel = cancel.clone();
            scope.spawn(move || {
                worker_loop(
                    me, queues, results, pending, counters, options, &cancel, run, observer,
                );
            });
        }
    });

    let results = results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result poisoned")
                .expect("job unresolved")
        })
        .collect();
    (results, counters.snapshot())
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<T, R, F, O>(
    me: usize,
    queues: &[Mutex<VecDeque<Task<T>>>],
    results: &[Mutex<Option<ExecResult<R>>>],
    pending: &AtomicUsize,
    counters: &Counters,
    options: &PoolOptions,
    cancel: &CancelToken,
    run: Arc<F>,
    observer: &O,
) where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(&T, &CancelToken) -> R + Send + Sync + 'static,
    O: Observer<T, R>,
{
    while pending.load(Ordering::SeqCst) > 0 {
        let Some(mut task) = next_task(me, queues) else {
            // All queues look empty but jobs are still pending (another
            // worker is running one, or a retry is about to be queued).
            std::thread::sleep(Duration::from_micros(200));
            continue;
        };

        if cancel.is_cancelled() {
            let result = ExecResult {
                outcome: ExecOutcome::Cancelled,
                duration: Duration::ZERO,
                worker: me,
                attempts: 0,
            };
            observer.on_finish(task.index, &task.job, &result);
            resolve(results, pending, task.index, result);
            continue;
        }

        observer.on_start(task.index, &task.job, me, task.attempt);
        let started = Instant::now();
        let outcome = run_attempt(
            &task.job,
            cancel,
            options.timeout,
            options.cancel_grace,
            counters,
            &run,
        );
        let duration = started.elapsed();

        if matches!(outcome, ExecOutcome::TimedOut) && task.attempt <= options.retries {
            observer.on_retry(task.index, &task.job, me, task.attempt);
            task.attempt += 1;
            queues[me].lock().expect("queue poisoned").push_back(task);
            continue;
        }

        let result = ExecResult {
            outcome,
            duration,
            worker: me,
            attempts: task.attempt,
        };
        observer.on_finish(task.index, &task.job, &result);
        resolve(results, pending, task.index, result);
    }
}

/// Pops from the worker's own queue front, else steals from a sibling's
/// back.
fn next_task<T>(me: usize, queues: &[Mutex<VecDeque<Task<T>>>]) -> Option<Task<T>> {
    if let Some(task) = queues[me].lock().expect("queue poisoned").pop_front() {
        return Some(task);
    }
    let n = queues.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        if let Some(task) = queues[victim].lock().expect("queue poisoned").pop_back() {
            return Some(task);
        }
    }
    None
}

fn resolve<R>(
    results: &[Mutex<Option<ExecResult<R>>>],
    pending: &AtomicUsize,
    index: usize,
    result: ExecResult<R>,
) {
    *results[index].lock().expect("result poisoned") = Some(result);
    pending.fetch_sub(1, Ordering::SeqCst);
}

fn run_attempt<T, R, F>(
    job: &T,
    cancel: &CancelToken,
    timeout: Option<Duration>,
    grace: Duration,
    counters: &Counters,
    run: &Arc<F>,
) -> ExecOutcome<R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(&T, &CancelToken) -> R + Send + Sync + 'static,
{
    match timeout {
        None => {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                chaos::hit("campaign.pool.attempt");
                run(job, cancel)
            }));
            match caught {
                Ok(value) => ExecOutcome::Done(value),
                Err(payload) => ExecOutcome::Panicked {
                    message: panic_message(payload.as_ref()),
                },
            }
        }
        Some(deadline) => {
            let (tx, rx) = mpsc::channel();
            let job = job.clone();
            let run = Arc::clone(run);
            // The job thread gets a child token carrying the deadline, so
            // even a job the watchdog later abandons self-cancels at its
            // next poll.
            let token = cancel.child_with_deadline(deadline);
            let job_token = token.clone();
            let handle = std::thread::Builder::new()
                .name("campaign-job".to_owned())
                .spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        chaos::hit("campaign.pool.attempt");
                        run(&job, &job_token)
                    }));
                    // A send failure just means the watchdog already gave
                    // up listening.
                    let _ = tx.send(result);
                })
                .expect("spawn job thread");
            match rx.recv_timeout(deadline) {
                Ok(Ok(value)) => {
                    let _ = handle.join();
                    ExecOutcome::Done(value)
                }
                Ok(Err(payload)) => {
                    let _ = handle.join();
                    ExecOutcome::Panicked {
                        message: panic_message(payload.as_ref()),
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Trip the job's token and give it a grace window to
                    // notice. A cooperative job exits and is joined; a
                    // stuck one cannot be killed safely, so it is
                    // abandoned and counted.
                    token.cancel();
                    match rx.recv_timeout(grace) {
                        Ok(_) => {
                            let _ = handle.join();
                            counters.reclaimed.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(_) => {
                            counters.abandoned.fetch_add(1, Ordering::SeqCst);
                            drop(handle);
                        }
                    }
                    ExecOutcome::TimedOut
                }
                Err(RecvTimeoutError::Disconnected) => {
                    let _ = handle.join();
                    ExecOutcome::Panicked {
                        message: "job thread vanished without reporting".to_owned(),
                    }
                }
            }
        }
    }
}

/// Why a [`ServicePool`] submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is full; the caller should shed the request
    /// (the serving layer answers `overloaded`) rather than block.
    Overloaded {
        /// Jobs waiting in the queue when the submission arrived.
        depth: usize,
        /// The admission bound that refused this lane (the bulk ceiling
        /// for bulk traffic, the full queue bound for interactive).
        limit: usize,
        /// The lane the refused submission targeted.
        lane: Priority,
    },
    /// The pool is draining and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { depth, limit, lane } => {
                write!(
                    f,
                    "admission queue full for {lane} lane ({depth} waiting, limit {limit})"
                )
            }
            SubmitError::ShuttingDown => f.write_str("pool is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A ticket for one [`ServicePool::submit`]: the reply channel plus the
/// job's cancel handle. Tripping `cancel` makes a still-queued job
/// resolve to [`ExecOutcome::Cancelled`] and tells a running cooperative
/// job to wind down.
#[derive(Debug)]
pub struct Submission<R> {
    /// Delivers the job's [`ExecResult`].
    pub results: Receiver<ExecResult<R>>,
    /// Per-job cancel handle (a child of the pool's token).
    pub cancel: CancelToken,
}

struct ServiceTask<T, R> {
    job: T,
    cancel: CancelToken,
    reply: Sender<ExecResult<R>>,
}

/// The two admission lanes. Workers drain interactive before bulk, and
/// admission rules differ per lane (see [`Priority`]).
struct Lanes<T, R> {
    interactive: VecDeque<ServiceTask<T, R>>,
    bulk: VecDeque<ServiceTask<T, R>>,
}

impl<T, R> Lanes<T, R> {
    fn new() -> Self {
        Lanes {
            interactive: VecDeque::new(),
            bulk: VecDeque::new(),
        }
    }

    fn len(&self) -> usize {
        self.interactive.len() + self.bulk.len()
    }

    fn pop(&mut self) -> Option<ServiceTask<T, R>> {
        self.interactive
            .pop_front()
            .or_else(|| self.bulk.pop_front())
    }
}

struct ServiceShared<T, R> {
    queue: Mutex<Lanes<T, R>>,
    available: Condvar,
    queue_limit: usize,
    bulk_limit: usize,
    shutdown: AtomicBool,
    active: AtomicUsize,
    pool_token: CancelToken,
    counters: Counters,
    cancel_grace: Duration,
}

/// A resident worker pool for serving workloads: jobs are submitted
/// individually, results come back on per-submission channels, and the
/// admission queue is bounded.
///
/// Execution semantics match [`execute`]: per-attempt watchdog deadlines
/// with bounded retry, cooperative per-job [`CancelToken`]s, and
/// `catch_unwind` panic isolation (a panicking job resolves to
/// [`ExecOutcome::Panicked`]; the worker survives).
pub struct ServicePool<T: Send + 'static, R: Send + 'static> {
    shared: Arc<ServiceShared<T, R>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    timeout: Option<Duration>,
    retries: u32,
}

impl<T, R> ServicePool<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    /// Starts `options.workers` resident workers running `run`, with an
    /// admission queue bounded at `queue_limit` waiting jobs. Both lanes
    /// share the full bound (no bulk ceiling); see
    /// [`ServicePool::start_with_lanes`] to shed bulk earlier.
    pub fn start<F>(options: &PoolOptions, queue_limit: usize, run: Arc<F>) -> Self
    where
        F: Fn(&T, &CancelToken) -> R + Send + Sync + 'static,
    {
        Self::start_with_lanes(options, queue_limit, queue_limit, run)
    }

    /// [`ServicePool::start`] with a distinct bulk admission ceiling:
    /// bulk submissions are refused once **total** queue occupancy
    /// reaches `bulk_limit`, while interactive submissions are admitted
    /// up to `queue_limit`. With `bulk_limit < queue_limit`, overload
    /// sheds bulk strictly before any interactive request is refused.
    pub fn start_with_lanes<F>(
        options: &PoolOptions,
        queue_limit: usize,
        bulk_limit: usize,
        run: Arc<F>,
    ) -> Self
    where
        F: Fn(&T, &CancelToken) -> R + Send + Sync + 'static,
    {
        let shared = Arc::new(ServiceShared {
            queue: Mutex::new(Lanes::new()),
            available: Condvar::new(),
            queue_limit,
            bulk_limit: bulk_limit.min(queue_limit),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            pool_token: CancelToken::new(),
            counters: Counters::default(),
            cancel_grace: options.cancel_grace,
        });
        let timeout = options.timeout;
        let retries = options.retries;
        let workers = (0..options.workers.max(1))
            .map(|me| {
                let shared = Arc::clone(&shared);
                let run = Arc::clone(&run);
                std::thread::Builder::new()
                    .name(format!("service-worker-{me}"))
                    .spawn(move || service_worker(me, &shared, timeout, retries, &run))
                    .expect("spawn service worker")
            })
            .collect();
        ServicePool {
            shared,
            workers: Mutex::new(workers),
            timeout,
            retries,
        }
    }

    /// Submits one job; the result arrives on the returned submission's
    /// channel, and its `cancel` handle cancels just this job.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the admission queue is at its
    /// bound, [`SubmitError::ShuttingDown`] once [`ServicePool::shutdown`]
    /// has begun.
    pub fn submit(&self, job: T) -> Result<Submission<R>, SubmitError> {
        self.submit_with(job, Priority::Interactive)
    }

    /// [`ServicePool::submit`] targeting an explicit admission lane.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the lane's admission bound is
    /// reached (the bulk ceiling for bulk traffic, the full queue bound
    /// for interactive), [`SubmitError::ShuttingDown`] once draining.
    pub fn submit_with(&self, job: T, priority: Priority) -> Result<Submission<R>, SubmitError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let (reply, receiver) = mpsc::channel();
        let cancel = self.shared.pool_token.child();
        let mut queue = self.shared.queue.lock().expect("queue poisoned");
        let limit = match priority {
            Priority::Interactive => self.shared.queue_limit,
            Priority::Bulk => self.shared.bulk_limit,
        };
        if queue.len() >= limit {
            let shed = match priority {
                Priority::Interactive => &self.shared.counters.shed_interactive,
                Priority::Bulk => &self.shared.counters.shed_bulk,
            };
            shed.fetch_add(1, Ordering::SeqCst);
            return Err(SubmitError::Overloaded {
                depth: queue.len(),
                limit,
                lane: priority,
            });
        }
        let task = ServiceTask {
            job,
            cancel: cancel.clone(),
            reply,
        };
        match priority {
            Priority::Interactive => queue.interactive.push_back(task),
            Priority::Bulk => queue.bulk.push_back(task),
        }
        drop(queue);
        self.shared.available.notify_one();
        Ok(Submission {
            results: receiver,
            cancel,
        })
    }

    /// Jobs waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("queue poisoned").len()
    }

    /// Waiting jobs per lane, `(interactive, bulk)`.
    pub fn lane_depths(&self) -> (usize, usize) {
        let queue = self.shared.queue.lock().expect("queue poisoned");
        (queue.interactive.len(), queue.bulk.len())
    }

    /// The configured admission bound (interactive ceiling).
    pub fn queue_limit(&self) -> usize {
        self.shared.queue_limit
    }

    /// The bulk admission ceiling on total queue occupancy.
    pub fn bulk_limit(&self) -> usize {
        self.shared.bulk_limit
    }

    /// Jobs currently executing on workers.
    pub fn active_jobs(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// The per-attempt deadline workers apply.
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// The retry budget for timed-out attempts.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Thread-accounting totals since the pool started.
    pub fn pool_stats(&self) -> PoolStats {
        self.shared.counters.snapshot()
    }

    /// Drains the pool: refuses new submissions, lets queued and
    /// in-flight jobs finish, and joins every worker. Idempotent — the
    /// serving layer can call it from any thread holding an `Arc` to the
    /// pool.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("workers poisoned"));
        for worker in workers {
            let _ = worker.join();
        }
    }

    /// Cancelling drain: trips the pool token — queued jobs resolve to
    /// [`ExecOutcome::Cancelled`], running cooperative jobs wind down —
    /// then drains and joins like [`ServicePool::shutdown`].
    pub fn shutdown_now(&self) {
        self.shared.pool_token.cancel();
        self.shutdown();
    }
}

fn service_worker<T, R, F>(
    me: usize,
    shared: &ServiceShared<T, R>,
    timeout: Option<Duration>,
    retries: u32,
    run: &Arc<F>,
) where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(&T, &CancelToken) -> R + Send + Sync + 'static,
{
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(task) = queue.pop() {
                    break Some(task);
                }
                // Drain semantics: the queue is empty; exit only now that
                // shutdown is flagged, so queued jobs always finish.
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.available.wait(queue).expect("queue poisoned");
            }
        };
        let Some(task) = task else {
            return;
        };
        if task.cancel.is_cancelled() {
            // Cancelled while queued: report without running.
            let _ = task.reply.send(ExecResult {
                outcome: ExecOutcome::Cancelled,
                duration: Duration::ZERO,
                worker: me,
                attempts: 0,
            });
            continue;
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        let mut attempt = 1u32;
        loop {
            let started = Instant::now();
            let outcome = run_attempt(
                &task.job,
                &task.cancel,
                timeout,
                shared.cancel_grace,
                &shared.counters,
                run,
            );
            let duration = started.elapsed();
            if matches!(outcome, ExecOutcome::TimedOut)
                && attempt <= retries
                && !task.cancel.is_cancelled()
            {
                attempt += 1;
                continue;
            }
            // A dropped receiver (client went away) is not an error for
            // the pool; the job's effects (e.g. a cache insert done by the
            // `run` closure's caller) are delivered elsewhere.
            let _ = task.reply.send(ExecResult {
                outcome,
                duration,
                worker: me,
                attempts: attempt,
            });
            break;
        }
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Extracts the conventional `&str` / `String` payload from a panic.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_square(jobs: Vec<u64>, options: &PoolOptions) -> Vec<ExecResult<u64>> {
        execute(
            jobs,
            options,
            &CancelToken::new(),
            Arc::new(|n: &u64, _cancel: &CancelToken| n * n),
            &(),
        )
    }

    #[test]
    fn preserves_input_order_across_workers() {
        let jobs: Vec<u64> = (0..50).collect();
        for workers in [1, 3, 8] {
            let results = run_square(
                jobs.clone(),
                &PoolOptions {
                    workers,
                    ..PoolOptions::default()
                },
            );
            let values: Vec<u64> = results
                .iter()
                .map(|r| match r.outcome {
                    ExecOutcome::Done(v) => v,
                    ref other => panic!("unexpected outcome {other:?}"),
                })
                .collect();
            assert_eq!(values, jobs.iter().map(|n| n * n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn panics_are_isolated() {
        let jobs: Vec<u64> = (0..10).collect();
        let results = execute(
            jobs,
            &PoolOptions {
                workers: 4,
                ..PoolOptions::default()
            },
            &CancelToken::new(),
            Arc::new(|n: &u64, _cancel: &CancelToken| {
                if *n == 3 {
                    panic!("boom on {n}");
                }
                *n
            }),
            &(),
        );
        assert_eq!(results.len(), 10);
        for (i, r) in results.iter().enumerate() {
            match (&r.outcome, i) {
                (ExecOutcome::Panicked { message }, 3) => {
                    assert!(message.contains("boom on 3"), "{message}");
                }
                (ExecOutcome::Done(v), _) => assert_eq!(*v, i as u64),
                (other, _) => panic!("job {i}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn timeouts_are_reported_and_retried() {
        struct CountRetries(AtomicUsize);
        impl Observer<u64, u64> for CountRetries {
            fn on_retry(&self, _i: usize, _j: &u64, _w: usize, _a: u32) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let observer = CountRetries(AtomicUsize::new(0));
        let results = execute(
            vec![1u64, 0, 2],
            &PoolOptions {
                workers: 2,
                timeout: Some(Duration::from_millis(40)),
                retries: 1,
                ..PoolOptions::default()
            },
            &CancelToken::new(),
            Arc::new(|n: &u64, _cancel: &CancelToken| {
                if *n == 0 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                *n
            }),
            &observer,
        );
        assert!(matches!(results[0].outcome, ExecOutcome::Done(1)));
        assert!(
            matches!(results[1].outcome, ExecOutcome::TimedOut),
            "{:?}",
            results[1]
        );
        assert_eq!(results[1].attempts, 2, "retry must be honored");
        assert!(matches!(results[2].outcome, ExecOutcome::Done(2)));
        assert_eq!(observer.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn cooperative_timeouts_reclaim_job_threads() {
        let (results, stats) = execute_collect(
            vec![0u64],
            &PoolOptions {
                workers: 1,
                timeout: Some(Duration::from_millis(20)),
                retries: 0,
                // Generous grace: the job exits within ~1 ms of the
                // token tripping, but a loaded test machine can delay
                // the thread's wakeup far past a tight window and turn
                // the expected reclaim into a spurious abandonment.
                cancel_grace: Duration::from_secs(10),
            },
            &CancelToken::new(),
            Arc::new(|_n: &u64, cancel: &CancelToken| {
                // A cooperative job: poll the token, exit when tripped.
                while !cancel.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                // Linger so the watchdog's own deadline provably fires
                // first: the job token latches its deadline at creation,
                // slightly *before* the watchdog starts waiting, so a
                // prompt self-cancelled result could win that race and
                // read as Done instead of TimedOut.
                std::thread::sleep(Duration::from_millis(100));
                0
            }),
            &(),
        );
        assert!(matches!(results[0].outcome, ExecOutcome::TimedOut));
        assert_eq!(
            stats,
            PoolStats {
                reclaimed_threads: 1,
                ..PoolStats::default()
            }
        );
    }

    #[test]
    fn stuck_jobs_are_abandoned_and_counted() {
        let gate = Arc::new(AtomicBool::new(false));
        let hold = Arc::clone(&gate);
        let (results, stats) = execute_collect(
            vec![0u64],
            &PoolOptions {
                workers: 1,
                timeout: Some(Duration::from_millis(10)),
                retries: 0,
                cancel_grace: Duration::from_millis(10),
            },
            &CancelToken::new(),
            Arc::new(move |_n: &u64, _cancel: &CancelToken| {
                // Ignores cancellation until the test releases it.
                while !hold.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                0
            }),
            &(),
        );
        assert!(matches!(results[0].outcome, ExecOutcome::TimedOut));
        assert_eq!(
            stats,
            PoolStats {
                abandoned_threads: 1,
                ..PoolStats::default()
            }
        );
        // Release the orphan so it does not outlive the test process.
        gate.store(true, Ordering::SeqCst);
    }

    #[test]
    fn service_pool_delivers_results_per_submission() {
        let pool: ServicePool<u64, u64> = ServicePool::start(
            &PoolOptions {
                workers: 3,
                ..PoolOptions::default()
            },
            64,
            Arc::new(|n: &u64, _cancel: &CancelToken| n * n),
        );
        let receivers: Vec<_> = (0..20u64)
            .map(|n| pool.submit(n).unwrap().results)
            .collect();
        for (n, rx) in receivers.into_iter().enumerate() {
            let result = rx.recv().expect("result delivered");
            match result.outcome {
                ExecOutcome::Done(v) => assert_eq!(v, (n * n) as u64),
                other => panic!("job {n}: unexpected {other:?}"),
            }
        }
        pool.shutdown();
    }

    #[test]
    fn service_pool_sheds_load_beyond_queue_limit() {
        let gate = Arc::new(AtomicBool::new(false));
        let hold = Arc::clone(&gate);
        let pool: ServicePool<u64, u64> = ServicePool::start(
            &PoolOptions {
                workers: 1,
                ..PoolOptions::default()
            },
            1,
            Arc::new(move |n: &u64, _cancel: &CancelToken| {
                while !hold.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                *n
            }),
        );
        // First job occupies the worker; second sits in the queue; the
        // third must be shed.
        let first = pool.submit(1).unwrap().results;
        while pool.active_jobs() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let second = pool.submit(2).unwrap().results;
        let shed = pool.submit(3);
        assert_eq!(
            shed.unwrap_err(),
            SubmitError::Overloaded {
                depth: 1,
                limit: 1,
                lane: Priority::Interactive
            }
        );
        assert_eq!(pool.pool_stats().shed_interactive, 1);
        gate.store(true, Ordering::SeqCst);
        assert!(matches!(
            first.recv().unwrap().outcome,
            ExecOutcome::Done(1)
        ));
        assert!(matches!(
            second.recv().unwrap().outcome,
            ExecOutcome::Done(2)
        ));
        pool.shutdown();
    }

    #[test]
    fn service_pool_shutdown_drains_queued_jobs() {
        let pool: ServicePool<u64, u64> = ServicePool::start(
            &PoolOptions {
                workers: 1,
                ..PoolOptions::default()
            },
            64,
            Arc::new(|n: &u64, _cancel: &CancelToken| {
                std::thread::sleep(Duration::from_millis(2));
                *n + 100
            }),
        );
        let receivers: Vec<_> = (0..10u64)
            .map(|n| pool.submit(n).unwrap().results)
            .collect();
        pool.shutdown();
        for (n, rx) in receivers.into_iter().enumerate() {
            let result = rx.recv().expect("queued job drained, not dropped");
            assert!(matches!(result.outcome, ExecOutcome::Done(v) if v == n as u64 + 100));
        }
    }

    #[test]
    fn service_pool_refuses_after_shutdown_and_survives_panics() {
        let pool: ServicePool<u64, u64> = ServicePool::start(
            &PoolOptions {
                workers: 2,
                ..PoolOptions::default()
            },
            8,
            Arc::new(|n: &u64, _cancel: &CancelToken| {
                if *n == 7 {
                    panic!("unlucky {n}");
                }
                *n
            }),
        );
        let bad = pool.submit(7).unwrap().results;
        match bad.recv().unwrap().outcome {
            ExecOutcome::Panicked { message } => assert!(message.contains("unlucky 7")),
            other => panic!("unexpected {other:?}"),
        }
        // The worker that caught the panic still serves.
        let good = pool.submit(5).unwrap().results;
        assert!(matches!(good.recv().unwrap().outcome, ExecOutcome::Done(5)));
        pool.shutdown();
        assert_eq!(pool.submit(9).unwrap_err(), SubmitError::ShuttingDown);
        // Idempotent: a second drain is a no-op.
        pool.shutdown();
    }

    #[test]
    fn cancelling_a_queued_submission_skips_it() {
        let gate = Arc::new(AtomicBool::new(false));
        let hold = Arc::clone(&gate);
        let pool: ServicePool<u64, u64> = ServicePool::start(
            &PoolOptions {
                workers: 1,
                ..PoolOptions::default()
            },
            8,
            Arc::new(move |n: &u64, _cancel: &CancelToken| {
                while !hold.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                *n
            }),
        );
        let first = pool.submit(1).unwrap();
        while pool.active_jobs() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let queued = pool.submit(2).unwrap();
        queued.cancel.cancel();
        gate.store(true, Ordering::SeqCst);
        assert!(matches!(
            first.results.recv().unwrap().outcome,
            ExecOutcome::Done(1)
        ));
        let result = queued.results.recv().unwrap();
        assert!(matches!(result.outcome, ExecOutcome::Cancelled));
        assert_eq!(result.attempts, 0);
        pool.shutdown();
    }

    /// A pool whose single worker blocks until the gate opens; used to
    /// fill the admission queue deterministically.
    fn gated_pool(
        queue_limit: usize,
        bulk_limit: usize,
    ) -> (ServicePool<u64, u64>, Arc<AtomicBool>) {
        let gate = Arc::new(AtomicBool::new(false));
        let hold = Arc::clone(&gate);
        let pool = ServicePool::start_with_lanes(
            &PoolOptions {
                workers: 1,
                ..PoolOptions::default()
            },
            queue_limit,
            bulk_limit,
            Arc::new(move |n: &u64, _cancel: &CancelToken| {
                while !hold.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                *n
            }),
        );
        (pool, gate)
    }

    #[test]
    fn bulk_is_shed_strictly_before_interactive() {
        let (pool, gate) = gated_pool(4, 2);
        // Occupy the worker so submissions stay queued.
        let blocker = pool.submit(0).unwrap().results;
        while pool.active_jobs() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Two bulk jobs fill the bulk ceiling (total occupancy 2).
        let b1 = pool.submit_with(1, Priority::Bulk).unwrap().results;
        let b2 = pool.submit_with(2, Priority::Bulk).unwrap().results;
        // The third bulk submission is shed at the ceiling...
        let shed = pool.submit_with(3, Priority::Bulk).unwrap_err();
        assert_eq!(
            shed,
            SubmitError::Overloaded {
                depth: 2,
                limit: 2,
                lane: Priority::Bulk
            }
        );
        // ...while interactive traffic is still admitted up to the full
        // bound, even though the queue already holds bulk jobs.
        let i1 = pool.submit_with(10, Priority::Interactive).unwrap().results;
        let i2 = pool.submit_with(11, Priority::Interactive).unwrap().results;
        let shed_i = pool.submit_with(12, Priority::Interactive).unwrap_err();
        assert_eq!(
            shed_i,
            SubmitError::Overloaded {
                depth: 4,
                limit: 4,
                lane: Priority::Interactive
            }
        );
        assert_eq!(pool.lane_depths(), (2, 2));
        let stats = pool.pool_stats();
        assert_eq!((stats.shed_interactive, stats.shed_bulk), (1, 1));
        gate.store(true, Ordering::SeqCst);
        for rx in [blocker, b1, b2, i1, i2] {
            assert!(matches!(rx.recv().unwrap().outcome, ExecOutcome::Done(_)));
        }
        pool.shutdown();
    }

    #[test]
    fn interactive_lane_is_dispatched_before_queued_bulk() {
        let gate = Arc::new(AtomicBool::new(false));
        let hold = Arc::clone(&gate);
        let order = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&order);
        let pool: ServicePool<u64, u64> = ServicePool::start_with_lanes(
            &PoolOptions {
                workers: 1,
                ..PoolOptions::default()
            },
            8,
            8,
            Arc::new(move |n: &u64, _cancel: &CancelToken| {
                while !hold.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                log.lock().unwrap().push(*n);
                *n
            }),
        );
        let blocker = pool.submit(0).unwrap();
        while pool.active_jobs() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Bulk enters the queue first, interactive second; the single
        // worker must still run the interactive job first.
        let bulk = pool.submit_with(1, Priority::Bulk).unwrap().results;
        let interactive = pool.submit_with(2, Priority::Interactive).unwrap().results;
        gate.store(true, Ordering::SeqCst);
        let _ = blocker.results.recv().unwrap();
        let _ = interactive.recv_timeout(Duration::from_secs(5)).unwrap();
        let _ = bulk.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(*order.lock().unwrap(), vec![0, 2, 1]);
        pool.shutdown();
    }

    #[test]
    fn priority_labels_roundtrip() {
        for lane in [Priority::Interactive, Priority::Bulk] {
            assert_eq!(Priority::from_label(lane.label()), Some(lane));
        }
        assert_eq!(Priority::from_label("best-effort"), None);
    }

    #[test]
    fn cancellation_skips_queued_jobs() {
        let cancel = CancelToken::new();
        let trip = cancel.clone();
        let results = execute(
            (0..40).collect::<Vec<u64>>(),
            &PoolOptions {
                workers: 1,
                ..PoolOptions::default()
            },
            &cancel,
            Arc::new(move |n: &u64, _cancel: &CancelToken| {
                if *n == 0 {
                    trip.cancel();
                }
                *n
            }),
            &(),
        );
        assert!(matches!(results[0].outcome, ExecOutcome::Done(0)));
        let cancelled = results
            .iter()
            .filter(|r| matches!(r.outcome, ExecOutcome::Cancelled))
            .count();
        assert_eq!(cancelled, 39, "all queued jobs must be cancelled");
    }
}
