//! Property-based coverage for the lint passes.
//!
//! Two directions, per the audit contract:
//!
//! - **no false alarms** — random well-formed formulas pass every pass
//!   with zero Error diagnostics, standalone and through the fully
//!   audited `evc` pipeline;
//! - **no missed corruption** — targeted mutations (sort swap, dangled
//!   id, forged p-term classification, dropped `e_ij` variable) each
//!   trigger the expected stable code on top of arbitrary formulas.

use proptest::prelude::*;

use eufm::{Context, ExprId, Node, Sort};
use evc::check::UfScheme;
use evc::pe::Classification;
use lint::{wf, Code, Diagnostics};

// ---------------------------------------------------------------------------
// Random formula generation (stack-machine recipes)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum FormulaOp {
    PropVar(u8),
    EqVars(u8, u8),
    EqUf(u8, u8),
    Not,
    And,
    Or,
    Ite,
}

fn formula_ops() -> impl Strategy<Value = Vec<FormulaOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..4).prop_map(FormulaOp::PropVar),
            (0u8..4, 0u8..4).prop_map(|(a, b)| FormulaOp::EqVars(a, b)),
            (0u8..4, 0u8..4).prop_map(|(a, b)| FormulaOp::EqUf(a, b)),
            Just(FormulaOp::Not),
            Just(FormulaOp::And),
            Just(FormulaOp::Or),
            Just(FormulaOp::Ite),
        ],
        1..40,
    )
}

fn build_formula(ctx: &mut Context, ops: &[FormulaOp]) -> ExprId {
    let tvars: Vec<ExprId> = (0..4).map(|i| ctx.tvar(&format!("t{i}"))).collect();
    let mut stack: Vec<ExprId> = Vec::new();
    for op in ops {
        match op {
            FormulaOp::PropVar(i) => stack.push(ctx.pvar(&format!("p{i}"))),
            FormulaOp::EqVars(a, b) => {
                let e = ctx.eq(tvars[*a as usize], tvars[*b as usize]);
                stack.push(e);
            }
            FormulaOp::EqUf(a, b) => {
                let fa = ctx.uf("f", vec![tvars[*a as usize]]);
                let fb = ctx.uf("f", vec![tvars[*b as usize]]);
                let e = ctx.eq(fa, fb);
                stack.push(e);
            }
            FormulaOp::Not => {
                if let Some(x) = stack.pop() {
                    let n = ctx.not(x);
                    stack.push(n);
                }
            }
            FormulaOp::And => {
                if stack.len() >= 2 {
                    let b = stack.pop().expect("len checked");
                    let a = stack.pop().expect("len checked");
                    let r = ctx.and2(a, b);
                    stack.push(r);
                }
            }
            FormulaOp::Or => {
                if stack.len() >= 2 {
                    let b = stack.pop().expect("len checked");
                    let a = stack.pop().expect("len checked");
                    let r = ctx.or2(a, b);
                    stack.push(r);
                }
            }
            FormulaOp::Ite => {
                if stack.len() >= 3 {
                    let e = stack.pop().expect("len checked");
                    let t = stack.pop().expect("len checked");
                    let c = stack.pop().expect("len checked");
                    let r = ctx.ite(c, t, e);
                    stack.push(r);
                }
            }
        }
    }
    let fallback = ctx.pvar("p0");
    stack.pop().unwrap_or(fallback)
}

fn error_codes(diags: &[lint::Diagnostic]) -> Vec<Code> {
    diags
        .iter()
        .filter(|d| d.severity == lint::Severity::Error)
        .map(|d| d.code)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random well-formed formulas pass the well-formedness battery.
    #[test]
    fn wf_has_no_false_alarms(ops in formula_ops()) {
        let mut ctx = Context::new();
        let f = build_formula(&mut ctx, &ops);
        let mut diags = Diagnostics::new();
        wf::check(&ctx, &[f], &mut diags);
        let done = diags.finish();
        prop_assert_eq!(
            lint::error_count(&done), 0,
            "{}", lint::render_all(&done)
        );
    }

    /// The fully audited pipeline (well-formedness + PE cross-check +
    /// phase invariants) is Error-free on random formulas, under both UF
    /// elimination schemes.
    #[test]
    fn audited_pipeline_has_no_false_alarms(ops in formula_ops()) {
        for scheme in [UfScheme::NestedIte, UfScheme::Ackermann] {
            let mut ctx = Context::new();
            let f = build_formula(&mut ctx, &ops);
            let options = evc::CheckOptions {
                audit: true,
                uf_scheme: scheme,
                ..evc::CheckOptions::default()
            };
            let report = evc::check_validity(&mut ctx, f, &options);
            prop_assert_eq!(
                lint::error_count(&report.diagnostics), 0,
                "scheme {:?}:\n{}", scheme, lint::render_all(&report.diagnostics)
            );
        }
    }

    /// Grafting a node with an out-of-arena child onto any formula is
    /// caught, and only referential-integrity codes fire.
    #[test]
    fn dangled_id_is_always_caught(ops in formula_ops(), offset in 1usize..32) {
        let mut ctx = Context::new();
        let f = build_formula(&mut ctx, &ops);
        let ghost = ExprId::from_index(ctx.len() + offset);
        let bad = ctx.insert_unchecked(Node::And(&[f, ghost]), Sort::Bool);
        let mut diags = Diagnostics::new();
        wf::check(&ctx, &[bad], &mut diags);
        let codes = error_codes(&diags.finish());
        prop_assert!(codes.contains(&Code::DanglingExprId));
        prop_assert!(
            codes.iter().all(|c| matches!(
                c, Code::DanglingExprId | Code::ForwardReference
            )),
            "unexpected codes: {codes:?}"
        );
    }

    /// Swapping a node's recorded sort (the hash-consing tables lie) is
    /// caught as exactly a sort-discipline violation.
    #[test]
    fn sort_swap_is_always_caught(ops in formula_ops()) {
        let mut ctx = Context::new();
        let f = build_formula(&mut ctx, &ops);
        // record the (Boolean) root with a Term sort
        let lied = ctx.insert_unchecked(Node::Not(f), Sort::Term);
        let mut diags = Diagnostics::new();
        wf::check(&ctx, &[lied], &mut diags);
        let codes = error_codes(&diags.finish());
        prop_assert!(codes.contains(&Code::SortTableMismatch), "{codes:?}");
        prop_assert!(
            codes.iter().all(|c| matches!(
                c, Code::SortTableMismatch | Code::HashConsViolation
            )),
            "unexpected codes: {codes:?}"
        );
    }

    /// Forging the polarity classification — claiming every variable is a
    /// p-term — is caught whenever the formula genuinely needs g-terms.
    #[test]
    fn forged_pterm_is_always_caught(ops in formula_ops()) {
        let mut ctx = Context::new();
        let f = build_formula(&mut ctx, &ops);
        let goal = ctx.not(f); // force negative polarity onto f's equations
        let elim = evc::uf_elim::eliminate(&mut ctx, goal);
        let root = elim.root;
        // An honest audit of the honest classification must be clean; if
        // it requires no g-vars there is nothing to forge — skip.
        let mut honest = Diagnostics::new();
        let required = {
            let classes = honest_classification(&ctx, goal, &elim);
            let encoding = evc::pe::encode(&mut ctx, root, &classes, 0)
                .expect("encode");
            lint::pe::check(&ctx, &lint::PeAuditInput {
                pre_elim: goal,
                scheme: lint::ElimScheme::NestedIte,
                encoded: root,
                fresh_vars: &elim.fresh_vars,
                gvars: &classes.gvars,
                eij: &encoding.eij,
            }, &mut honest);
            classes.gvars
        };
        let honest = honest.finish();
        prop_assert_eq!(
            lint::error_count(&honest), 0,
            "{}", lint::render_all(&honest)
        );
        if required.is_empty() {
            return Ok(());
        }
        // Forge: claim every variable is a p-term.
        let forged = Classification::default();
        let encoding = evc::pe::encode(&mut ctx, root, &forged, 0).expect("encode");
        let mut diags = Diagnostics::new();
        lint::pe::check(&ctx, &lint::PeAuditInput {
            pre_elim: goal,
            scheme: lint::ElimScheme::NestedIte,
            encoded: root,
            fresh_vars: &elim.fresh_vars,
            gvars: &forged.gvars,
            eij: &encoding.eij,
        }, &mut diags);
        let codes = error_codes(&diags.finish());
        prop_assert!(codes.contains(&Code::ForgedPTerm), "{codes:?}");
    }

    /// Dropping the encoder's `e_ij` variables is caught whenever any
    /// were required.
    #[test]
    fn dropped_eij_is_always_caught(ops in formula_ops()) {
        let mut ctx = Context::new();
        let f = build_formula(&mut ctx, &ops);
        let goal = ctx.not(f);
        let elim = evc::uf_elim::eliminate(&mut ctx, goal);
        let root = elim.root;
        let classes = honest_classification(&ctx, goal, &elim);
        let encoding = evc::pe::encode(&mut ctx, root, &classes, 0).expect("encode");
        if encoding.eij.is_empty() {
            return Ok(()); // nothing to drop
        }
        let mut diags = Diagnostics::new();
        lint::pe::check(&ctx, &lint::PeAuditInput {
            pre_elim: goal,
            scheme: lint::ElimScheme::NestedIte,
            encoded: root,
            fresh_vars: &elim.fresh_vars,
            gvars: &classes.gvars,
            eij: &[], // dropped
        }, &mut diags);
        let codes = error_codes(&diags.finish());
        prop_assert!(codes.contains(&Code::MissingEij), "{codes:?}");
    }
}

/// Rebuilds the driver's classification for a NestedIte elimination: the
/// general vars of the pre-elimination formula, plus every fresh variable
/// standing for an application of a general function symbol.
fn honest_classification(
    ctx: &Context,
    pre_elim: ExprId,
    elim: &evc::uf_elim::Elimination,
) -> Classification {
    let analysis = eufm::polarity::analyze(ctx, &[pre_elim]);
    let mut gvars = analysis.gvars.clone();
    let mut gsymbols: std::collections::HashSet<eufm::Symbol> = std::collections::HashSet::new();
    for &gt in &analysis.gterms {
        if let Node::Uf(sym, _, _) = ctx.node(gt) {
            gsymbols.insert(sym);
        }
    }
    for (&var, sym) in &elim.fresh_vars {
        if gsymbols.contains(sym) {
            gvars.insert(var);
        }
    }
    Classification { gvars }
}
