//! `insert_unchecked` × arena interplay: the L0001-family well-formedness
//! passes must keep firing on malformed DAGs now that nodes live in a flat
//! arena.
//!
//! `Context::insert_unchecked` deliberately bypasses both the smart
//! constructors and the intern table — it is the supported way to
//! manufacture corrupted DAGs for testing the analyzers. These tests pin
//! the contract the arena must uphold for that to work: unchecked records
//! are reachable (`node`/`children` serve them like any other id), they
//! never enter the intern table (so L0007 can observe real duplicates),
//! and out-of-arena child ids are reported rather than dereferenced.

use eufm::{Context, ExprId, Node, Sort};
use lint::{wf, Code, Diagnostics};

fn run(ctx: &Context, roots: &[ExprId]) -> Vec<lint::Diagnostic> {
    let mut diags = Diagnostics::new();
    wf::check(ctx, roots, &mut diags);
    diags.finish()
}

fn codes(diags: &[lint::Diagnostic]) -> Vec<Code> {
    diags.iter().map(|d| d.code).collect()
}

/// L0001: a term-sorted ITE control, injected straight into the arena.
#[test]
fn l0001_ite_mismatch_fires_on_unchecked_arena_node() {
    let mut ctx = Context::new();
    let t = ctx.tvar("t");
    let x = ctx.tvar("x");
    let y = ctx.tvar("y");
    let bad = ctx.insert_unchecked(Node::Ite(t, x, y), Sort::Term);
    assert!(codes(&run(&ctx, &[bad])).contains(&Code::IteSortMismatch));
}

/// L0002: an equation between a formula and a term.
#[test]
fn l0002_eq_mismatch_fires_on_unchecked_arena_node() {
    let mut ctx = Context::new();
    let p = ctx.pvar("p");
    let x = ctx.tvar("x");
    let bad = ctx.insert_unchecked(Node::Eq(p, x), Sort::Bool);
    assert!(codes(&run(&ctx, &[bad])).contains(&Code::EqSortMismatch));
}

/// L0003: `read` applied to a non-memory.
#[test]
fn l0003_mem_mismatch_fires_on_unchecked_arena_node() {
    let mut ctx = Context::new();
    let x = ctx.tvar("x");
    let y = ctx.tvar("y");
    let bad = ctx.insert_unchecked(Node::Read(x, y), Sort::Term);
    assert!(codes(&run(&ctx, &[bad])).contains(&Code::MemSortMismatch));
}

/// L0004: an `and` over term-sorted operands — the operands land in the
/// child slab, and the checker must read them back through `children`.
#[test]
fn l0004_bool_mismatch_fires_on_unchecked_slab_children() {
    let mut ctx = Context::new();
    let x = ctx.tvar("x");
    let y = ctx.tvar("y");
    let z = ctx.tvar("z");
    let bad = ctx.insert_unchecked(Node::And(&[x, y, z]), Sort::Bool);
    let diags = run(&ctx, &[bad]);
    let found = codes(&diags)
        .iter()
        .filter(|&&c| c == Code::BoolSortMismatch)
        .count();
    assert_eq!(found, 3, "one finding per slab operand: {diags:?}");
}

/// L0005: child ids pointing past the end of the arena are reported, not
/// dereferenced — on both the record path (`Not`) and the slab path
/// (`Or`).
#[test]
fn l0005_dangling_fires_for_record_and_slab_children() {
    let mut ctx = Context::new();
    let p = ctx.pvar("p");
    let beyond = ExprId::from_index(ctx.len() + 7);
    let bad_not = ctx.insert_unchecked(Node::Not(beyond), Sort::Bool);
    let bad_or = ctx.insert_unchecked(Node::Or(&[p, beyond]), Sort::Bool);
    for root in [bad_not, bad_or] {
        assert!(
            codes(&run(&ctx, &[root])).contains(&Code::DanglingExprId),
            "root {} must report its dangling child",
            root.index()
        );
    }
}

/// L0007: a duplicate built through `insert_unchecked` is flagged, which
/// requires the unchecked record to have stayed *out* of the intern table
/// (otherwise the duplicate could never exist) while staying *in* the
/// reachable arena.
#[test]
fn l0007_hash_cons_violation_fires_on_unchecked_duplicate() {
    let mut ctx = Context::new();
    let a = ctx.tvar("a");
    let b = ctx.tvar("b");
    let eq = ctx.eq(a, b);
    let dup = ctx.insert_unchecked(Node::Eq(a, b), Sort::Bool);
    assert_ne!(eq, dup);
    // interning afterwards still finds the original, not the forgery
    assert_eq!(ctx.eq(a, b), eq);
    let root = ctx.insert_unchecked(Node::And(&[eq, dup]), Sort::Bool);
    assert!(codes(&run(&ctx, &[root])).contains(&Code::HashConsViolation));
}

/// L0008: `insert_unchecked` records the caller's sort in the sort table;
/// when that lies about the node's structural sort the mismatch is
/// reported.
#[test]
fn l0008_sort_table_mismatch_fires_on_unchecked_lie() {
    let mut ctx = Context::new();
    let p = ctx.pvar("p");
    let bad = ctx.insert_unchecked(Node::Not(p), Sort::Term);
    assert!(codes(&run(&ctx, &[bad])).contains(&Code::SortTableMismatch));
}

/// A context carrying unchecked garbage stays navigable: the checker walks
/// a mixed well-formed/malformed DAG without panicking and reports only
/// the malformed region.
#[test]
fn mixed_dag_reports_only_the_malformed_region() {
    let mut ctx = Context::new();
    // a perfectly fine sub-formula
    let a = ctx.tvar("a");
    let b = ctx.tvar("b");
    let fine = ctx.eq(a, b);
    // a malformed sibling
    let t = ctx.tvar("t");
    let bad = ctx.insert_unchecked(Node::Not(t), Sort::Bool);
    let root = ctx.insert_unchecked(Node::And(&[fine, bad]), Sort::Bool);
    let diags = run(&ctx, &[root]);
    assert!(codes(&diags).contains(&Code::BoolSortMismatch));
    assert!(
        !codes(&diags).contains(&Code::EqSortMismatch),
        "the well-formed equation must not be flagged: {diags:?}"
    );
    // and the well-formed sub-DAG alone is clean
    assert_eq!(lint::error_count(&run(&ctx, &[fine])), 0);
}
