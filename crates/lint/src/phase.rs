//! Phase-transition invariants of the translation pipeline.
//!
//! Each pipeline phase promises to eliminate a syntactic class entirely;
//! these passes check the promise on the phase's output:
//!
//! - after memory elimination, no `read`/`write` node remains — and under
//!   the exact (forwarding) model no memory-sorted node at all (`L0020`);
//! - after UF elimination, no uninterpreted application remains (`L0021`);
//! - after Tseitin translation, every CNF variable is accounted for by
//!   exactly one origin: an input variable, a gate definition, or the
//!   constant variable (`L0022` unmapped, `L0023` doubly mapped).

use eufm::{Context, ExprId, Node, Sort};
use sat::Translation;

use crate::diag::{Code, Diagnostics};

/// What memory elimination promised to remove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemDiscipline {
    /// The forwarding (exact) model: no memory-sorted node of any kind may
    /// survive.
    Exact,
    /// The conservative abstraction: `read`/`write` nodes must be gone,
    /// but memory-sorted variables and uninterpreted memory transformers
    /// legitimately remain.
    Conservative,
}

/// Checks the post-memory-elimination invariant on `root`.
pub fn check_memory_free(
    ctx: &Context,
    root: ExprId,
    discipline: MemDiscipline,
    diags: &mut Diagnostics,
) {
    for id in ctx.reachable(&[root]) {
        match ctx.try_node(id) {
            Some(node @ (Node::Read(..) | Node::Write(..))) => {
                diags.emit_at(
                    Code::ResidualMemory,
                    id,
                    format!(
                        "`{}` node {} survives memory elimination",
                        node.kind_name(),
                        id.index()
                    ),
                );
            }
            Some(node)
                if discipline == MemDiscipline::Exact && ctx.try_sort(id) == Some(Sort::Mem) =>
            {
                diags.emit_at(
                    Code::ResidualMemory,
                    id,
                    format!(
                        "memory-sorted `{}` node {} survives exact memory elimination",
                        node.kind_name(),
                        id.index()
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Checks the post-UF-elimination invariant on `root`.
pub fn check_uf_free(ctx: &Context, root: ExprId, diags: &mut Diagnostics) {
    for id in ctx.reachable(&[root]) {
        if let Some(Node::Uf(sym, _, _)) = ctx.try_node(id) {
            diags.emit_at(
                Code::ResidualUf,
                id,
                format!("application of `{}` survives UF elimination", ctx.name(sym)),
            );
        }
    }
}

/// Checks Tseitin variable accounting: every CNF variable must trace back
/// to exactly one origin — a primary input (`var_map`), a gate definition
/// (`gate_map`), or the constant variable.
pub fn check_cnf_accounting(translation: &Translation, diags: &mut Diagnostics) {
    let mut origins = vec![0usize; translation.cnf.num_vars()];
    let mut count = |index: usize| {
        if index < origins.len() {
            origins[index] += 1;
        }
    };
    for &v in translation.var_map.values() {
        count(v.index());
    }
    for &v in translation.gate_map.keys() {
        count(v.index());
    }
    if let Some(v) = translation.const_var {
        count(v.index());
    }
    for (index, &n) in origins.iter().enumerate() {
        if n == 0 {
            diags.emit(
                Code::UnmappedCnfVar,
                format!("CNF variable x{index} maps back to no formula node"),
            );
        } else if n > 1 {
            diags.emit(
                Code::DoublyMappedCnfVar,
                format!("CNF variable x{index} has {n} origins"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::error_count;

    #[test]
    fn residual_memory_and_uf_are_flagged() {
        let mut ctx = Context::new();
        let m = ctx.mvar("m");
        let a = ctx.tvar("a");
        let r = ctx.read(m, a);
        let fa = ctx.uf("f", vec![a]);
        let root = ctx.eq(r, fa);
        let mut diags = Diagnostics::new();
        check_memory_free(&ctx, root, MemDiscipline::Exact, &mut diags);
        check_uf_free(&ctx, root, &mut diags);
        let done = diags.finish();
        assert!(done.iter().any(|d| d.code == Code::ResidualMemory));
        assert!(done.iter().any(|d| d.code == Code::ResidualUf));
    }

    #[test]
    fn conservative_discipline_tolerates_mem_sorted_nodes() {
        let mut ctx = Context::new();
        let m = ctx.mvar("m");
        let a = ctx.tvar("a");
        let rd = ctx.apply("rd!", vec![m, a], Sort::Term);
        let b = ctx.tvar("b");
        let root = ctx.eq(rd, b);
        let mut diags = Diagnostics::new();
        check_memory_free(&ctx, root, MemDiscipline::Conservative, &mut diags);
        assert_eq!(error_count(&diags.clone().finish()), 0);
        // but the exact discipline rejects the memory variable
        let mut diags = Diagnostics::new();
        check_memory_free(&ctx, root, MemDiscipline::Exact, &mut diags);
        assert!(diags.items().iter().any(|d| d.code == Code::ResidualMemory));
    }

    #[test]
    fn cnf_accounting_catches_unmapped_vars() {
        let mut ctx = Context::new();
        let x = ctx.pvar("x");
        let y = ctx.pvar("y");
        let root = ctx.and2(x, y);
        let mut tr = sat::tseitin::translate(&ctx, root, sat::Mode::Full, sat::Phase::Both)
            .expect("translate");
        let mut diags = Diagnostics::new();
        check_cnf_accounting(&tr, &mut diags);
        assert_eq!(error_count(&diags.clone().finish()), 0);
        // forge an orphan variable
        tr.cnf.new_var();
        let mut diags = Diagnostics::new();
        check_cnf_accounting(&tr, &mut diags);
        assert!(diags.items().iter().any(|d| d.code == Code::UnmappedCnfVar));
        // forge a duplicate origin
        let stolen = *tr.var_map.values().next().expect("has inputs");
        tr.gate_map.insert(stolen, root);
        let mut diags = Diagnostics::new();
        check_cnf_accounting(&tr, &mut diags);
        assert!(diags
            .items()
            .iter()
            .any(|d| d.code == Code::DoublyMappedCnfVar));
    }
}
