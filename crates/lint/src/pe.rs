//! Positive-Equality soundness audit (N-version checking).
//!
//! The encoder's soundness rests on the Bryant–German–Velev classification:
//! a term variable may be treated as a *p-term* (interpreted as maximally
//! diverse, cross-comparisons folded to `false`) only if it never reaches a
//! negative or dual-polarity equation. This pass re-derives the
//! classification **independently** from the pre-elimination formula —
//! deliberately not sharing code with `eufm::polarity` — and diffs it
//! against the classification the encoder actually used:
//!
//! - a variable the auditor requires to be a g-term but the encoder treated
//!   as a p-term is a soundness hole (`L0010`);
//! - a variable the encoder conservatively promoted to g-term that the
//!   auditor finds positive-only costs completeness, not soundness
//!   (`L0012`);
//! - every distinct pair of g-term variables meeting in a reachable
//!   equation must be covered by an `e_ij` encoding variable (`L0011`).
//!
//! The auditor mirrors the *driver's* classification spec: the polarity
//! analysis runs on the formula **before** UF elimination, and fresh
//! variables introduced by nested-ITE elimination inherit g-ness from their
//! originating function symbol. Re-analyzing the post-elimination formula
//! instead would be wrong — elimination guards place argument equations in
//! ITE controls (dual polarity), yet treating the eliminated p-variables as
//! maximally diverse remains sound.

use std::collections::{HashMap, HashSet};

use eufm::{Context, ExprId, Node, Sort, Symbol};

use crate::diag::{Code, Diagnostics};

/// Which UF-elimination scheme produced the encoded formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElimScheme {
    /// Nested-ITE elimination: fresh variables guarded by argument
    /// equations in ITE controls.
    NestedIte,
    /// Ackermann expansion: fresh variables plus explicit functional
    /// consistency constraints.
    Ackermann,
}

/// Everything the audit needs about one encoder run.
#[derive(Debug, Clone, Copy)]
pub struct PeAuditInput<'a> {
    /// The formula after memory elimination, before UF elimination — the
    /// input the classification is derived from.
    pub pre_elim: ExprId,
    /// The UF-elimination scheme used.
    pub scheme: ElimScheme,
    /// The formula after UF elimination — the encoder's actual input.
    pub encoded: ExprId,
    /// Fresh variables introduced by UF elimination, keyed by the function
    /// symbol they replaced.
    pub fresh_vars: &'a HashMap<ExprId, Symbol>,
    /// The classification the encoder used (its g-term variable set).
    pub gvars: &'a HashSet<ExprId>,
    /// The `e_ij` table the encoder produced: `(smaller, larger, eij)`
    /// triples over canonical variable pairs.
    pub eij: &'a [(ExprId, ExprId, ExprId)],
}

/// Runs the Positive-Equality audit.
pub fn check(ctx: &Context, input: &PeAuditInput<'_>, diags: &mut Diagnostics) {
    let auditor = classify(ctx, input.pre_elim);
    let mut required: HashSet<ExprId> = auditor.gvars.clone();
    match input.scheme {
        ElimScheme::NestedIte => {
            for (&fresh, sym) in input.fresh_vars {
                if auditor.gsymbols.contains(sym) {
                    required.insert(fresh);
                }
            }
        }
        ElimScheme::Ackermann => {
            let re = classify(ctx, input.encoded);
            required.extend(re.gvars);
        }
    }

    for &v in required.iter() {
        if !input.gvars.contains(&v) {
            diags.emit_at(
                Code::ForgedPTerm,
                v,
                format!(
                    "`{}` reaches a general equation but the encoder treats it as a p-term",
                    var_name(ctx, v)
                ),
            );
        }
    }
    for &v in input.gvars.iter() {
        if !required.contains(&v) {
            diags.emit_at(
                Code::ConservativeGVar,
                v,
                format!(
                    "encoder treats `{}` as a g-term but the auditor finds it positive-only",
                    var_name(ctx, v)
                ),
            );
        }
    }

    check_eij_coverage(ctx, input, diags);

    diags.emit(
        Code::PeSummary,
        format!(
            "PE audit: {} g-term vars required, {} used by encoder, {} e_ij vars",
            required.len(),
            input.gvars.len(),
            input.eij.len()
        ),
    );
}

fn var_name(ctx: &Context, v: ExprId) -> String {
    match ctx.try_node(v) {
        Some(Node::Var(sym, _)) => ctx.name(sym).to_owned(),
        Some(other) => format!("non-var `{}` node {}", other.kind_name(), v.index()),
        None => format!("dangling node {}", v.index()),
    }
}

// ---------------------------------------------------------------------
// Independent classification
// ---------------------------------------------------------------------

const POS: u8 = 0b01;
const NEG: u8 = 0b10;

struct Classified {
    /// Term and memory variables that reach a general equation.
    gvars: HashSet<ExprId>,
    /// Function symbols whose applications reach a general equation.
    gsymbols: HashSet<Symbol>,
}

/// Re-derives the g-term classification of `root` from scratch.
///
/// Phase 1 computes, for every equation node, the cumulative polarity mask
/// under which it is observed (negation flips, ITE controls and UF
/// arguments force both polarities, equations propagate their own
/// cumulative mask into their operands). Phase 2 collects the ITE-branch
/// value leaves of every *general* equation (mask includes the negative
/// bit): term and memory variables become g-vars, function applications
/// contribute their symbol.
fn classify(ctx: &Context, root: ExprId) -> Classified {
    let mut seen: HashMap<ExprId, u8> = HashMap::new();
    let mut eq_mask: HashMap<ExprId, u8> = HashMap::new();
    let mut work: Vec<(ExprId, u8)> = vec![(root, POS)];
    while let Some((id, pol)) = work.pop() {
        let entry = seen.entry(id).or_insert(0);
        if *entry & pol == pol {
            continue;
        }
        *entry |= pol;
        let node = match ctx.try_node(id) {
            Some(n) => n,
            None => continue, // the WF pass reports dangling ids
        };
        let flip = ((pol & POS) << 1) | ((pol & NEG) >> 1);
        match node {
            Node::True | Node::False | Node::Var(..) => {}
            Node::Not(a) => work.push((a, flip)),
            Node::And(xs) | Node::Or(xs) => {
                for &x in xs.iter() {
                    work.push((x, pol));
                }
            }
            Node::Ite(c, t, e) => {
                work.push((c, POS | NEG));
                work.push((t, pol));
                work.push((e, pol));
            }
            Node::Uf(_, args, _) => {
                for &a in args.iter() {
                    work.push((a, POS | NEG));
                }
            }
            Node::Eq(a, b) => {
                let m = eq_mask.entry(id).or_insert(0);
                *m |= pol;
                let m = *m;
                work.push((a, m));
                work.push((b, m));
            }
            Node::Read(m, a) => {
                work.push((m, pol));
                work.push((a, POS | NEG));
            }
            Node::Write(m, a, d) => {
                work.push((m, pol));
                work.push((a, POS | NEG));
                work.push((d, pol));
            }
        }
    }

    let mut out = Classified {
        gvars: HashSet::new(),
        gsymbols: HashSet::new(),
    };
    for (&eq, &mask) in &eq_mask {
        if mask & NEG == 0 {
            continue; // positive-only equation
        }
        if let Some(Node::Eq(a, b)) = ctx.try_node(eq) {
            for leaf in value_leaves(ctx, a).into_iter().chain(value_leaves(ctx, b)) {
                match ctx.try_node(leaf) {
                    Some(Node::Var(_, Sort::Term)) | Some(Node::Var(_, Sort::Mem)) => {
                        out.gvars.insert(leaf);
                    }
                    Some(Node::Uf(sym, _, _)) => {
                        out.gsymbols.insert(sym);
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

/// The value leaves of a term: descend only through ITE branches.
fn value_leaves(ctx: &Context, root: ExprId) -> Vec<ExprId> {
    let mut out = Vec::new();
    let mut seen: HashSet<ExprId> = HashSet::new();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        match ctx.try_node(id) {
            Some(Node::Ite(_, t, e)) => {
                stack.push(t);
                stack.push(e);
            }
            Some(_) => out.push(id),
            None => {}
        }
    }
    out
}

// ---------------------------------------------------------------------
// e_ij coverage
// ---------------------------------------------------------------------

/// Checks that every distinct g-var pair the encoder's `eq` recursion can
/// reach is covered by an `e_ij` variable.
///
/// The recursion is mirrored exactly — including the `a == b` early exit —
/// because a naive leaves(a) × leaves(b) cross-product over-approximates
/// the visited pairs and would report spurious gaps. Coverage is checked
/// one-directionally: transitivity fill edges legitimately allocate extra
/// `e_ij` variables that never appear in a formula equation.
fn check_eij_coverage(ctx: &Context, input: &PeAuditInput<'_>, diags: &mut Diagnostics) {
    let covered: HashSet<(ExprId, ExprId)> = input.eij.iter().map(|&(a, b, _)| (a, b)).collect();
    let mut visited: HashSet<(ExprId, ExprId)> = HashSet::new();
    let mut reported: HashSet<(ExprId, ExprId)> = HashSet::new();
    for eq in ctx.reachable(&[input.encoded]) {
        let (a, b) = match ctx.try_node(eq) {
            Some(Node::Eq(a, b)) => (a, b),
            _ => continue,
        };
        let mut stack = vec![(a, b)];
        while let Some((a, b)) = stack.pop() {
            if a == b {
                continue;
            }
            let key = if a <= b { (a, b) } else { (b, a) };
            if !visited.insert(key) {
                continue;
            }
            match (ctx.try_node(a), ctx.try_node(b)) {
                (Some(Node::Ite(_, t, e)), _) => {
                    stack.push((t, b));
                    stack.push((e, b));
                }
                (_, Some(Node::Ite(_, t, e))) => {
                    stack.push((a, t));
                    stack.push((a, e));
                }
                (Some(Node::Var(..)), Some(Node::Var(..)))
                    if input.gvars.contains(&key.0)
                        && input.gvars.contains(&key.1)
                        && !covered.contains(&key)
                        && reported.insert(key) =>
                {
                    diags.emit_at(
                        Code::MissingEij,
                        eq,
                        format!(
                            "g-term pair (`{}`, `{}`) has no e_ij variable",
                            var_name(ctx, key.0),
                            var_name(ctx, key.1)
                        ),
                    );
                }
                // Non-variable leaves (residual UFs, memories) are the
                // phase passes' findings, not coverage gaps.
                _ => {}
            }
        }
    }
}
