//! Structured diagnostics: stable codes, severities, renderers.
//!
//! Every finding the analyzer can report has a *stable code* (`L0001`,
//! `L0002`, …) so that tests, CI gates, and downstream log processing can
//! match on the code rather than on message text. Codes are grouped by pass
//! family:
//!
//! - `L000x` — well-formedness of the expression DAG ([`crate::wf`])
//! - `L001x` — Positive-Equality soundness audit ([`crate::pe`])
//! - `L002x` — phase-transition invariants ([`crate::phase`])
//! - `L003x` — rewrite-certificate replay ([`crate::rewrite`])

use std::collections::BTreeMap;

use eufm::ExprId;

/// How serious a diagnostic is.
///
/// `Error` means a soundness invariant is violated and any `Verified`
/// verdict derived from the audited artifact is suspect. `Warning` marks a
/// conservative (sound but imprecise) discrepancy. `Note` carries summary
/// information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A soundness invariant is violated.
    Error,
    /// Sound but suspicious or imprecise.
    Warning,
    /// Informational summary.
    Note,
}

impl Severity {
    /// The lowercase label used by the renderers (`error`, `warning`,
    /// `note`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

macro_rules! codes {
    ($($variant:ident = ($code:literal, $sev:ident, $title:literal),)*) => {
        /// A stable diagnostic code.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum Code {
            $(#[doc = $title] $variant,)*
        }

        impl Code {
            /// The stable `L....` identifier.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Code::$variant => $code,)*
                }
            }

            /// The default severity of this code.
            pub fn severity(self) -> Severity {
                match self {
                    $(Code::$variant => Severity::$sev,)*
                }
            }

            /// A one-line description of what the code means.
            pub fn title(self) -> &'static str {
                match self {
                    $(Code::$variant => $title,)*
                }
            }

            /// All defined codes, in order.
            pub fn all() -> &'static [Code] {
                &[$(Code::$variant,)*]
            }
        }
    };
}

codes! {
    // -- well-formedness (L000x) ----------------------------------------
    IteSortMismatch = ("L0001", Error,
        "ITE control is not a formula or branch sorts disagree"),
    EqSortMismatch = ("L0002", Error,
        "equation operands are Boolean or of differing sorts"),
    MemSortMismatch = ("L0003", Error,
        "read/write operand is not (memory, term[, term])"),
    BoolSortMismatch = ("L0004", Error,
        "not/and/or operand is not a formula"),
    DanglingExprId = ("L0005", Error,
        "expression id points outside the context arena"),
    ForwardReference = ("L0006", Error,
        "child id is not smaller than its parent (cycle risk)"),
    HashConsViolation = ("L0007", Error,
        "two live nodes are structurally identical"),
    SortTableMismatch = ("L0008", Error,
        "recorded sort contradicts the node's structural sort"),
    SignatureMismatch = ("L0009", Error,
        "uninterpreted application contradicts the recorded signature"),
    // -- Positive-Equality audit (L001x) --------------------------------
    ForgedPTerm = ("L0010", Error,
        "encoder treats a variable as a p-term that reaches a general equation"),
    MissingEij = ("L0011", Error,
        "a g-term variable pair in a reachable equation has no e_ij variable"),
    ConservativeGVar = ("L0012", Warning,
        "encoder treats a variable as a g-term the auditor finds positive-only"),
    PeSummary = ("L0013", Note,
        "Positive-Equality classification summary"),
    // -- phase-transition invariants (L002x) ----------------------------
    ResidualMemory = ("L0020", Error,
        "memory operation or memory-sorted node survives memory elimination"),
    ResidualUf = ("L0021", Error,
        "uninterpreted application survives UF elimination"),
    UnmappedCnfVar = ("L0022", Error,
        "CNF variable maps back to no formula node"),
    DoublyMappedCnfVar = ("L0023", Error,
        "CNF variable maps back to more than one formula node"),
    // -- rewrite-certificate replay (L003x) -----------------------------
    MissingCertificate = ("L0030", Error,
        "a rewritten slice has no justification certificate"),
    RefutedObligation = ("L0031", Error,
        "replay refuted a rewrite obligation"),
    UndecidedObligation = ("L0032", Warning,
        "replay could not decide a rewrite obligation"),
    RewriteAborted = ("L0033", Error,
        "the rewriting engine aborted with a slice diagnosis"),
    RewriteSummary = ("L0034", Note,
        "rewrite-certificate replay summary"),
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A single finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Severity (normally [`Code::severity`], but summary/suppression
    /// notes may downgrade).
    pub severity: Severity,
    /// Human-readable details.
    pub message: String,
    /// The offending expression node, when the finding is anchored to one.
    pub node: Option<ExprId>,
}

impl Diagnostic {
    /// Renders the diagnostic in the rustc-like one-line form, e.g.
    /// `error[L0005]: child id 99 of node 7 is dangling @ node 7`.
    pub fn render(&self) -> String {
        match self.node {
            Some(id) => format!(
                "{}[{}]: {} @ node {}",
                self.severity.as_str(),
                self.code,
                self.message,
                id.index()
            ),
            None => format!(
                "{}[{}]: {}",
                self.severity.as_str(),
                self.code,
                self.message
            ),
        }
    }

    /// Renders the diagnostic as a single JSON object (one JSONL line).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":\"{}\"", self.code));
        out.push_str(&format!(",\"severity\":\"{}\"", self.severity.as_str()));
        out.push_str(",\"message\":\"");
        out.push_str(&escape_json(&self.message));
        out.push('"');
        if let Some(id) = self.node {
            out.push_str(&format!(",\"node\":{}", id.index()));
        }
        out.push('}');
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// How many diagnostics of each code are kept verbatim before further
/// occurrences are summarized into a single note.
pub const PER_CODE_CAP: usize = 10;

/// A diagnostic collector with per-code output caps.
///
/// Passes emit into a `Diagnostics`; [`Diagnostics::finish`] returns the
/// final list, appending one note per code whose emissions exceeded
/// [`PER_CODE_CAP`] (a corrupted DAG can otherwise produce one error per
/// node).
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
    counts: BTreeMap<Code, usize>,
}

impl Diagnostics {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emits a diagnostic with no node anchor.
    pub fn emit(&mut self, code: Code, message: String) {
        self.emit_inner(code, message, None);
    }

    /// Emits a diagnostic anchored to an expression node.
    pub fn emit_at(&mut self, code: Code, node: ExprId, message: String) {
        self.emit_inner(code, message, Some(node));
    }

    fn emit_inner(&mut self, code: Code, message: String, node: Option<ExprId>) {
        let n = self.counts.entry(code).or_insert(0);
        *n += 1;
        if *n <= PER_CODE_CAP {
            self.items.push(Diagnostic {
                code,
                severity: code.severity(),
                message,
                node,
            });
        }
    }

    /// The number of Error-severity diagnostics emitted so far (including
    /// capped ones).
    pub fn error_count(&self) -> usize {
        self.counts
            .iter()
            .filter(|(c, _)| c.severity() == Severity::Error)
            .map(|(_, n)| n)
            .sum()
    }

    /// The diagnostics collected so far (capped view).
    pub fn items(&self) -> &[Diagnostic] {
        &self.items
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Finalizes the collection, appending suppression notes for codes that
    /// exceeded the per-code cap.
    pub fn finish(mut self) -> Vec<Diagnostic> {
        for (&code, &n) in &self.counts {
            if n > PER_CODE_CAP {
                self.items.push(Diagnostic {
                    code,
                    severity: Severity::Note,
                    message: format!(
                        "{} further {} diagnostics suppressed (cap {})",
                        n - PER_CODE_CAP,
                        code,
                        PER_CODE_CAP
                    ),
                    node: None,
                });
            }
        }
        self.items
    }
}

/// Counts the Error-severity entries in a finished diagnostic list.
pub fn error_count(diags: &[Diagnostic]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count()
}

/// Renders a finished diagnostic list one per line.
pub fn render_all(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_and_stable() {
        let all = Code::all();
        assert!(all.len() >= 10, "ISSUE requires >= 10 stable codes");
        let mut strs: Vec<&str> = all.iter().map(|c| c.as_str()).collect();
        strs.sort_unstable();
        strs.dedup();
        assert_eq!(strs.len(), all.len(), "codes must be unique");
        assert_eq!(Code::DanglingExprId.as_str(), "L0005");
        assert_eq!(Code::ForgedPTerm.severity(), Severity::Error);
        assert_eq!(Code::ConservativeGVar.severity(), Severity::Warning);
    }

    #[test]
    fn per_code_cap_suppresses_with_note() {
        let mut diags = Diagnostics::new();
        for i in 0..(PER_CODE_CAP + 5) {
            diags.emit(Code::DanglingExprId, format!("bad {i}"));
        }
        assert_eq!(diags.error_count(), PER_CODE_CAP + 5);
        let done = diags.finish();
        assert_eq!(done.len(), PER_CODE_CAP + 1);
        let last = done.last().expect("suppression note");
        assert_eq!(last.severity, Severity::Note);
        assert!(last.message.contains("5 further"));
        assert_eq!(error_count(&done), PER_CODE_CAP);
    }

    #[test]
    fn json_escapes_and_renders() {
        let d = Diagnostic {
            code: Code::HashConsViolation,
            severity: Severity::Error,
            message: "dup \"eq\"\nnode".to_owned(),
            node: Some(ExprId::from_index(7)),
        };
        let json = d.to_json();
        assert!(json.contains("\"code\":\"L0007\""));
        assert!(json.contains("\\\"eq\\\"\\n"));
        assert!(json.contains("\"node\":7"));
        assert!(d.render().starts_with("error[L0007]:"));
        assert!(d.render().ends_with("@ node 7"));
    }
}
