//! rob-lint: static analysis and invariant audits for the EUFM→SAT
//! translation pipeline.
//!
//! Every `Verified` verdict produced by this workspace rests on a chain of
//! formula transformations — memory elimination, polarity classification,
//! UF elimination, Positive-Equality encoding, Tseitin translation — each
//! sound only under side conditions that the pipeline's own code is
//! trusted to maintain. This crate turns that trust into machine-checked
//! evidence: a battery of independent analysis passes audits each phase's
//! output and reports structured diagnostics with stable codes.
//!
//! The four pass families:
//!
//! 1. **Well-formedness** ([`wf`]) — sort discipline, dangling-id
//!    detection, acyclicity, hash-consing integrity, UF signatures.
//! 2. **Positive-Equality soundness** ([`pe`]) — an independent
//!    re-implementation of the p-term/g-term classification cross-checks
//!    the encoder's (N-version checking), and every g-term pair reachable
//!    in an equation must have `e_ij` coverage.
//! 3. **Phase-transition invariants** ([`phase`]) — memory and UF
//!    elimination must leave no residue; Tseitin variable accounting maps
//!    every CNF variable back to exactly one origin.
//! 4. **Rewrite audit** ([`rewrite`]) — the rewriting engine's deleted
//!    update pairs are justified by certificates, replayed here with
//!    independent machinery.
//!
//! The pipeline wires these in behind `evc::CheckOptions::audit` (on under
//! `debug_assertions`); the `lint` CLI binary in the `rob-verify` crate
//! runs the battery over any `(N, k, strategy, bug)` configuration.
//!
//! # Example
//!
//! ```
//! use eufm::Context;
//! use lint::{wf, Diagnostics};
//!
//! let mut ctx = Context::new();
//! let a = ctx.tvar("a");
//! let b = ctx.tvar("b");
//! let eq = ctx.eq(a, b);
//! let mut diags = Diagnostics::new();
//! wf::check(&ctx, &[eq], &mut diags);
//! assert_eq!(lint::error_count(&diags.finish()), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod pe;
pub mod phase;
pub mod rewrite;
pub mod wf;

pub use diag::{error_count, render_all, Code, Diagnostic, Diagnostics, Severity};
pub use pe::{ElimScheme, PeAuditInput};
pub use phase::MemDiscipline;
pub use rewrite::{Certificate, Obligation, RewriteCertificate};
