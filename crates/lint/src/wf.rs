//! Well-formedness pass over the expression DAG.
//!
//! Checks, for every node reachable from the audited roots:
//!
//! - **sorts** — ITE controls are formulas and branch sorts agree
//!   (`L0001`), equation operands are same-sorted non-Boolean (`L0002`),
//!   `read`/`write` operands are (memory, term\[, term\]) (`L0003`),
//!   Boolean connectives take formulas (`L0004`), and the context's sort
//!   table agrees with each node's structural sort (`L0008`);
//! - **referential integrity** — no child id points outside the arena
//!   (`L0005`) and every child id is strictly smaller than its parent,
//!   which is how the append-only arena encodes acyclicity (`L0006`);
//! - **hash-consing** — no two live nodes are structurally identical
//!   (`L0007`);
//! - **signatures** — every uninterpreted application matches the
//!   signature recorded for its symbol (`L0009`).
//!
//! The pass never panics on corrupted DAGs: dangling children are reported
//! and skipped rather than dereferenced.

use std::collections::HashMap;

use eufm::{Context, ExprId, Node, Sort};

use crate::diag::{Code, Diagnostics};

/// Runs the well-formedness battery over the sub-DAG of `roots`.
pub fn check(ctx: &Context, roots: &[ExprId], diags: &mut Diagnostics) {
    let mut live: HashMap<Node, ExprId> = HashMap::new();
    for id in ctx.reachable(roots) {
        let node = match ctx.try_node(id) {
            Some(node) => node,
            None => {
                diags.emit_at(
                    Code::DanglingExprId,
                    id,
                    format!(
                        "expression id {} exceeds the arena (len {})",
                        id.index(),
                        ctx.len()
                    ),
                );
                continue;
            }
        };
        // referential integrity
        let mut children = Vec::new();
        node.for_each_child(|c| children.push(c));
        let mut dangling_child = false;
        for &c in &children {
            if ctx.try_node(c).is_none() {
                diags.emit_at(
                    Code::DanglingExprId,
                    id,
                    format!(
                        "child id {} of `{}` node {} is dangling",
                        c.index(),
                        node.kind_name(),
                        id.index()
                    ),
                );
                dangling_child = true;
            } else if c.index() >= id.index() {
                diags.emit_at(
                    Code::ForwardReference,
                    id,
                    format!(
                        "child id {} of `{}` node {} is not strictly smaller",
                        c.index(),
                        node.kind_name(),
                        id.index()
                    ),
                );
            }
        }
        // hash-consing integrity
        if let Some(&prev) = live.get(&node) {
            diags.emit_at(
                Code::HashConsViolation,
                id,
                format!(
                    "node {} duplicates node {} (`{}`)",
                    id.index(),
                    prev.index(),
                    node.kind_name()
                ),
            );
        } else {
            live.insert(node, id);
        }
        if !dangling_child {
            check_sorts(ctx, id, &node, diags);
        }
    }
}

/// Per-node sort discipline. All children are known to be in bounds.
fn check_sorts(ctx: &Context, id: ExprId, node: &Node, diags: &mut Diagnostics) {
    let recorded = match ctx.try_sort(id) {
        Some(s) => s,
        None => return, // already reported as dangling
    };
    let child = |c: ExprId| ctx.try_sort(c).expect("child in bounds");
    let mut structural: Option<Sort> = None;
    match node {
        Node::True | Node::False => structural = Some(Sort::Bool),
        Node::Var(_, s) => structural = Some(*s),
        Node::Not(a) => {
            if child(*a) != Sort::Bool {
                diags.emit_at(
                    Code::BoolSortMismatch,
                    id,
                    format!("`not` operand {} has sort {:?}", a.index(), child(*a)),
                );
            }
            structural = Some(Sort::Bool);
        }
        Node::And(xs) | Node::Or(xs) => {
            for &x in xs.iter() {
                if child(x) != Sort::Bool {
                    diags.emit_at(
                        Code::BoolSortMismatch,
                        id,
                        format!(
                            "`{}` operand {} has sort {:?}",
                            node.kind_name(),
                            x.index(),
                            child(x)
                        ),
                    );
                }
            }
            structural = Some(Sort::Bool);
        }
        Node::Ite(c, t, e) => {
            if child(*c) != Sort::Bool {
                diags.emit_at(
                    Code::IteSortMismatch,
                    id,
                    format!("ITE control {} has sort {:?}", c.index(), child(*c)),
                );
            }
            if child(*t) != child(*e) {
                diags.emit_at(
                    Code::IteSortMismatch,
                    id,
                    format!("ITE branches disagree: {:?} vs {:?}", child(*t), child(*e)),
                );
            } else {
                structural = Some(child(*t));
            }
        }
        Node::Eq(a, b) => {
            if child(*a) != child(*b) || child(*a) == Sort::Bool {
                diags.emit_at(
                    Code::EqSortMismatch,
                    id,
                    format!("equation over sorts {:?} and {:?}", child(*a), child(*b)),
                );
            }
            structural = Some(Sort::Bool);
        }
        Node::Read(m, a) => {
            if child(*m) != Sort::Mem || child(*a) != Sort::Term {
                diags.emit_at(
                    Code::MemSortMismatch,
                    id,
                    format!("`read` over sorts ({:?}, {:?})", child(*m), child(*a)),
                );
            }
            structural = Some(Sort::Term);
        }
        Node::Write(m, a, d) => {
            if child(*m) != Sort::Mem || child(*a) != Sort::Term || child(*d) != Sort::Term {
                diags.emit_at(
                    Code::MemSortMismatch,
                    id,
                    format!(
                        "`write` over sorts ({:?}, {:?}, {:?})",
                        child(*m),
                        child(*a),
                        child(*d)
                    ),
                );
            }
            structural = Some(Sort::Mem);
        }
        Node::Uf(sym, args, result) => {
            structural = Some(*result);
            match ctx.signature(*sym) {
                Some((sig_args, sig_res)) => {
                    let arg_sorts: Vec<Sort> = args.iter().map(|&a| child(a)).collect();
                    if sig_args != arg_sorts.as_slice() || sig_res != *result {
                        diags.emit_at(
                            Code::SignatureMismatch,
                            id,
                            format!(
                                "application of `{}` has signature {:?} -> {:?}, recorded {:?} -> {:?}",
                                ctx.name(*sym),
                                arg_sorts,
                                result,
                                sig_args,
                                sig_res
                            ),
                        );
                    }
                }
                None => {
                    diags.emit_at(
                        Code::SignatureMismatch,
                        id,
                        format!("`{}` has no recorded signature", ctx.name(*sym)),
                    );
                }
            }
        }
    }
    if let Some(s) = structural {
        if s != recorded {
            diags.emit_at(
                Code::SortTableMismatch,
                id,
                format!(
                    "`{}` node {} is structurally {:?} but recorded as {:?}",
                    node.kind_name(),
                    id.index(),
                    s,
                    recorded
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::error_count;

    fn run(ctx: &Context, roots: &[ExprId]) -> Vec<crate::Diagnostic> {
        let mut diags = Diagnostics::new();
        check(ctx, roots, &mut diags);
        diags.finish()
    }

    #[test]
    fn well_formed_formula_is_clean() {
        let mut ctx = Context::new();
        let m = ctx.mvar("m");
        let a = ctx.tvar("a");
        let d = ctx.tvar("d");
        let w = ctx.write(m, a, d);
        let r = ctx.read(w, a);
        let fa = ctx.uf("f", vec![a]);
        let eq = ctx.eq(r, fa);
        let p = ctx.pvar("p");
        let root = ctx.ite(p, eq, Context::TRUE);
        let diags = run(&ctx, &[root]);
        assert_eq!(error_count(&diags), 0, "{}", crate::render_all(&diags));
    }

    #[test]
    fn dangling_id_is_flagged() {
        let mut ctx = Context::new();
        let dangling = ExprId::from_index(ctx.len() + 3);
        let bad = ctx.insert_unchecked(Node::Not(dangling), Sort::Bool);
        let diags = run(&ctx, &[bad]);
        assert!(diags.iter().any(|d| d.code == Code::DanglingExprId));
        // the dangling id itself is reported once more as a yielded node
        assert!(error_count(&diags) >= 1);
    }

    #[test]
    fn sort_swap_is_flagged_as_ite_mismatch() {
        let mut ctx = Context::new();
        let t = ctx.tvar("t");
        let x = ctx.tvar("x");
        let y = ctx.tvar("y");
        // term-sorted control: ill-formed ITE
        let bad = ctx.insert_unchecked(Node::Ite(t, x, y), Sort::Term);
        let diags = run(&ctx, &[bad]);
        assert!(diags.iter().any(|d| d.code == Code::IteSortMismatch));
        assert!(!diags.iter().any(|d| d.code == Code::EqSortMismatch));
    }

    #[test]
    fn duplicate_node_is_a_hash_cons_violation() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let eq = ctx.eq(a, b);
        let dup = ctx.insert_unchecked(Node::Eq(a, b), Sort::Bool);
        let both = ctx.insert_unchecked(Node::And(&[eq, dup]), Sort::Bool);
        let diags = run(&ctx, &[both]);
        assert!(diags.iter().any(|d| d.code == Code::HashConsViolation));
    }

    #[test]
    fn sort_table_lies_are_flagged() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let bad = ctx.insert_unchecked(Node::Not(Context::TRUE), Sort::Term);
        let root = ctx.insert_unchecked(Node::And(&[bad]), Sort::Bool);
        let _ = a;
        let diags = run(&ctx, &[root]);
        assert!(diags.iter().any(|d| d.code == Code::SortTableMismatch));
        // the `and` sees a Term-sorted operand
        assert!(diags.iter().any(|d| d.code == Code::BoolSortMismatch));
    }
}
