//! Rewrite justification certificates and their replay.
//!
//! Velev's rewriting rules delete update pairs from the implementation's
//! register-file chain when the engine proves them equal to the
//! specification's. Each such proof step is recorded as a [`Certificate`]
//! carrying the discharged [`Obligation`]; this module replays the
//! certificates with independent machinery (a fresh SAT check for
//! propositional obligations, the sampling oracle for EUFM obligations)
//! and reports:
//!
//! - `L0030` — a rewritten slice carries no certificate at all;
//! - `L0031` — replay *refuted* an obligation (a concrete counterexample
//!   or a SAT model exists);
//! - `L0032` — replay could not run an obligation's check;
//! - `L0034` — a summary note.
//!
//! Replay refutes only on definite evidence, so a sound engine can never
//! be false-flagged: the sampling oracle reports invalid only on a
//! concrete counterexample, and the SAT check is complete for the
//! propositional obligations.

use eufm::{oracle, Context, ExprId};
use sat::solver::Solver;
use sat::{Mode, Phase};

use crate::diag::{Code, Diagnostics};

/// Samples used per EUFM obligation during replay.
const REPLAY_SAMPLES: u64 = 512;
/// Domain size for sampled term interpretations during replay.
const REPLAY_DOMAIN: u64 = 8;

/// A single proof obligation discharged by the rewriting engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Obligation {
    /// The propositional formula is valid.
    PropValid(ExprId),
    /// The two propositional formulas are never simultaneously true.
    PropDisjoint(ExprId, ExprId),
    /// The two expressions are the same hash-consed node.
    Identical(ExprId, ExprId),
    /// The EUFM formula is valid.
    EufmValid(ExprId),
}

/// One justification step: which slice, which rewriting rule, what was
/// being established, and the obligation that established it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// 1-based slice index; 0 for cross-slice (global) obligations.
    pub slice: usize,
    /// The rewriting rule that generated the obligation (`"R1"`–`"R5"`).
    pub rule: &'static str,
    /// What the obligation establishes, in engine terms.
    pub what: String,
    /// The recorded obligation.
    pub obligation: Obligation,
}

/// The full justification record of one rewrite run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RewriteCertificate {
    /// Number of update slices in the implementation chain.
    pub slices: usize,
    /// Number of update pairs the rewrite deleted (retirement pairs).
    pub deleted_pairs: usize,
    /// Every obligation the engine discharged, in discharge order.
    ///
    /// Obligations are recorded *before* they are checked, so a failed run
    /// still certifies which obligation it died on.
    pub certificates: Vec<Certificate>,
}

static RULE_R1: trace::Counter = trace::Counter::new("evc.rewrite.rule.r1");
static RULE_R2: trace::Counter = trace::Counter::new("evc.rewrite.rule.r2");
static RULE_R3: trace::Counter = trace::Counter::new("evc.rewrite.rule.r3");
static RULE_R4: trace::Counter = trace::Counter::new("evc.rewrite.rule.r4");
static RULE_R5: trace::Counter = trace::Counter::new("evc.rewrite.rule.r5");

impl RewriteCertificate {
    /// Records an obligation.
    pub fn record(&mut self, slice: usize, rule: &'static str, what: String, ob: Obligation) {
        match rule {
            "R1" => RULE_R1.inc(),
            "R2" => RULE_R2.inc(),
            "R3" => RULE_R3.inc(),
            "R4" => RULE_R4.inc(),
            "R5" => RULE_R5.inc(),
            _ => {}
        }
        self.certificates.push(Certificate {
            slice,
            rule,
            what,
            obligation: ob,
        });
    }
}

/// Replays every certificate and checks per-slice coverage.
///
/// Takes `&mut Context` because disjointness obligations rebuild the
/// conjunction to refute; all constructed nodes are garbage outside the
/// audited formula.
pub fn replay(ctx: &mut Context, cert: &RewriteCertificate, diags: &mut Diagnostics) {
    for slice in 1..=cert.slices {
        if !cert.certificates.iter().any(|c| c.slice == slice) {
            diags.emit(
                Code::MissingCertificate,
                format!(
                    "slice {slice} of {} has no justification certificate",
                    cert.slices
                ),
            );
        }
    }

    let mut refuted = 0usize;
    for c in &cert.certificates {
        let verdict = replay_one(ctx, &c.obligation);
        match verdict {
            Replay::Holds => {}
            Replay::Refuted(why) => {
                refuted += 1;
                diags.emit(
                    Code::RefutedObligation,
                    format!("slice {} rule {}: {} — {}", c.slice, c.rule, c.what, why),
                );
            }
            Replay::Undecided(why) => {
                diags.emit(
                    Code::UndecidedObligation,
                    format!("slice {} rule {}: {} — {}", c.slice, c.rule, c.what, why),
                );
            }
        }
    }

    diags.emit(
        Code::RewriteSummary,
        format!(
            "rewrite audit: {} slices, {} deleted pairs, {} obligations replayed, {} refuted",
            cert.slices,
            cert.deleted_pairs,
            cert.certificates.len(),
            refuted
        ),
    );
}

enum Replay {
    Holds,
    Refuted(String),
    Undecided(String),
}

fn replay_one(ctx: &mut Context, ob: &Obligation) -> Replay {
    match *ob {
        Obligation::Identical(a, b) => {
            if a == b {
                Replay::Holds
            } else {
                Replay::Refuted(format!(
                    "nodes {} and {} are not identical",
                    a.index(),
                    b.index()
                ))
            }
        }
        Obligation::PropValid(goal) => prop_valid(ctx, goal),
        Obligation::PropDisjoint(a, b) => {
            let conj = ctx.and2(a, b);
            let goal = ctx.not(conj);
            prop_valid(ctx, goal)
        }
        Obligation::EufmValid(goal) => {
            if oracle::check_sampled_with_domain(ctx, goal, REPLAY_SAMPLES, REPLAY_DOMAIN)
                .is_invalid()
            {
                Replay::Refuted("sampling oracle found a counterexample".to_owned())
            } else {
                Replay::Holds
            }
        }
    }
}

fn prop_valid(ctx: &Context, goal: ExprId) -> Replay {
    match sat::tseitin::translate(ctx, goal, Mode::Full, Phase::Negative) {
        Ok(mut tr) => {
            tr.assert_negated_root();
            let mut solver = Solver::from_cnf(&tr.cnf);
            if solver.solve().is_unsat() {
                Replay::Holds
            } else {
                Replay::Refuted("negation is satisfiable".to_owned())
            }
        }
        Err(e) => Replay::Undecided(format!("not propositional: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::error_count;

    fn run(ctx: &mut Context, cert: &RewriteCertificate) -> Vec<crate::Diagnostic> {
        let mut diags = Diagnostics::new();
        replay(ctx, cert, &mut diags);
        diags.finish()
    }

    #[test]
    fn sound_certificates_replay_clean() {
        let mut ctx = Context::new();
        let x = ctx.pvar("x");
        let nx = ctx.not(x);
        let taut = ctx.or2(x, nx);
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let prem = ctx.eq(a, b);
        let fa = ctx.uf("f", vec![a]);
        let fb = ctx.uf("f", vec![b]);
        let concl = ctx.eq(fa, fb);
        let fc = ctx.implies(prem, concl);
        let mut cert = RewriteCertificate {
            slices: 2,
            deleted_pairs: 1,
            certificates: Vec::new(),
        };
        cert.record(1, "R2", "taut".into(), Obligation::PropValid(taut));
        cert.record(1, "R1", "disjoint".into(), Obligation::PropDisjoint(x, nx));
        cert.record(2, "R3", "same".into(), Obligation::Identical(fa, fa));
        cert.record(
            2,
            "R5",
            "func-consistency".into(),
            Obligation::EufmValid(fc),
        );
        let diags = run(&mut ctx, &cert);
        assert_eq!(error_count(&diags), 0, "{}", crate::render_all(&diags));
        assert!(diags.iter().any(|d| d.code == Code::RewriteSummary));
    }

    #[test]
    fn refuted_and_missing_certificates_are_flagged() {
        let mut ctx = Context::new();
        let x = ctx.pvar("x");
        let y = ctx.pvar("y");
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let not_valid = ctx.or2(x, y);
        let eq = ctx.eq(a, b);
        let mut cert = RewriteCertificate {
            slices: 3,
            deleted_pairs: 0,
            certificates: Vec::new(),
        };
        cert.record(
            1,
            "R2",
            "contingent".into(),
            Obligation::PropValid(not_valid),
        );
        cert.record(1, "R1", "overlap".into(), Obligation::PropDisjoint(x, x));
        cert.record(2, "R3", "different".into(), Obligation::Identical(a, b));
        cert.record(2, "R4", "not equal".into(), Obligation::EufmValid(eq));
        // slice 3 left uncovered
        let diags = run(&mut ctx, &cert);
        let refuted = diags
            .iter()
            .filter(|d| d.code == Code::RefutedObligation)
            .count();
        assert_eq!(refuted, 4);
        assert!(diags.iter().any(|d| d.code == Code::MissingCertificate));
    }
}
