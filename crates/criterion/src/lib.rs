//! Minimal, dependency-free shim of the [criterion] benchmarking API
//! surface this workspace uses.
//!
//! The build environment has no access to a crate registry, so the real
//! `criterion` cannot be vendored. This shim keeps the `benches/` targets
//! compiling and running: each `b.iter(..)` samples the closure a fixed
//! number of times and prints min/mean wall-clock per iteration. There is
//! no statistical analysis, warm-up, or HTML report.
//!
//! [criterion]: https://docs.rs/criterion

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Batch-size hint for [`Bencher::iter_batched`] (ignored by the shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Times closures; handed to the callbacks of
/// [`BenchmarkGroup::bench_function`] and
/// [`BenchmarkGroup::bench_with_input`].
pub struct Bencher {
    samples: usize,
    min: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            self.min = self.min.min(elapsed);
            self.total += elapsed;
            self.iters += 1;
        }
    }

    /// Runs `routine` over fresh inputs from `setup`, timing only the
    /// routine.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            self.min = self.min.min(elapsed);
            self.total += elapsed;
            self.iters += 1;
        }
    }
}

/// A named group of benchmarks sharing a sample count.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets how many samples each benchmark takes (min 1).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            samples: self.samples,
            min: Duration::MAX,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        if bencher.iters == 0 {
            println!("{}/{id}: no iterations recorded", self.name);
            return;
        }
        let mean = bencher.total / u32::try_from(bencher.iters).unwrap_or(u32::MAX);
        println!(
            "{}/{id}: mean {:?}, min {:?} over {} iterations",
            self.name, mean, bencher.min, bencher.iters
        );
    }

    /// Benchmarks a closure.
    pub fn bench_function<D, F>(&mut self, id: D, f: F) -> &mut Self
    where
        D: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), f);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<D, I, F>(&mut self, id: D, input: &I, mut f: F) -> &mut Self
    where
        D: std::fmt::Display,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group (default 10 samples per benchmark).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
        }
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
        let mut with_input = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter("p"), &5usize, |b, &n| {
            b.iter(|| with_input += n)
        });
        assert_eq!(with_input, 15);
        group.finish();
    }
}
