//! The hash-consing expression context.

use std::collections::HashMap;

use crate::intern::InternTable;
use crate::node::{ExprId, Node, NodeRecord, Sort, Tag};
use crate::symbol::{Interner, Symbol};

/// Nodes freshly interned into some context arena.
static NODES_INTERNED: trace::Counter = trace::Counter::new("eufm.nodes.interned");
/// Node constructions answered from the hash-consing table.
static NODES_CACHE_HITS: trace::Counter = trace::Counter::new("eufm.nodes.cache_hits");

/// An arena of hash-consed EUFM expressions.
///
/// All expressions live inside a context and are referred to by [`ExprId`].
/// Structural sharing is maximal: building the same node twice returns the
/// same id, so id equality *is* structural equality. Smart constructors
/// perform light normalization (constant folding, flattening and canonical
/// ordering of `and`/`or`, canonical orientation of equations, `ITE`
/// collapses), which both shrinks formulas and makes the syntactic checks of
/// the rewriting-rule engine reliable.
///
/// # Example
///
/// ```
/// use eufm::Context;
///
/// let mut ctx = Context::new();
/// let x = ctx.pvar("x");
/// let not_not_x = {
///     let nx = ctx.not(x);
///     ctx.not(nx)
/// };
/// assert_eq!(x, not_not_x); // hash-consing + simplification
/// ```
#[derive(Debug, Clone)]
pub struct Context {
    /// Fixed-size POD node records, dense by id.
    records: Vec<NodeRecord>,
    /// All child ids, stored contiguously; each record owns a window.
    child_slab: Vec<ExprId>,
    /// The recorded expression sort of each node, dense by id. Agrees with
    /// the record for checked inserts; [`Context::insert_unchecked`] may
    /// make them contradict, which lint detects.
    sorts: Vec<Sort>,
    /// Structural hash of each node, dense by id. Doubles as the intern
    /// table's stored-hash side table so growth never recomputes hashes.
    hashes: Vec<u64>,
    /// Hash-consing index: ids keyed by structural hash, compared against
    /// the arena. Holds no node data — see [`crate::intern`].
    table: InternTable,
    symbols: Interner,
    signatures: HashMap<Symbol, (Vec<Sort>, Sort)>,
    fresh_counter: u64,
}

impl Default for Context {
    fn default() -> Self {
        Self::new()
    }
}

impl Context {
    /// Creates an empty context containing only the constants `true` and
    /// `false`.
    pub fn new() -> Self {
        let mut ctx = Context {
            records: Vec::new(),
            child_slab: Vec::new(),
            sorts: Vec::new(),
            hashes: Vec::new(),
            table: InternTable::new(),
            symbols: Interner::new(),
            signatures: HashMap::new(),
            fresh_counter: 0,
        };
        let t = ctx.intern_node(Tag::True, Sort::Bool, Symbol(0), &[], Sort::Bool);
        let f = ctx.intern_node(Tag::False, Sort::Bool, Symbol(0), &[], Sort::Bool);
        debug_assert_eq!(t, Context::TRUE);
        debug_assert_eq!(f, Context::FALSE);
        ctx
    }

    /// The id of the constant `true`.
    pub const TRUE: ExprId = ExprId(0);
    /// The id of the constant `false`.
    pub const FALSE: ExprId = ExprId(1);

    /// Looks up an already-interned node by its record key.
    fn find_interned(
        &self,
        hash: u64,
        tag: Tag,
        node_sort: Sort,
        symbol: Symbol,
        children: &[ExprId],
    ) -> Option<ExprId> {
        let records = &self.records;
        let slab = &self.child_slab;
        let hashes = &self.hashes;
        self.table
            .find(hash, |cand| {
                let r = &records[cand as usize];
                hashes[cand as usize] == hash
                    && r.tag == tag
                    && r.node_sort == node_sort
                    && r.symbol == symbol
                    && &slab[r.child_off as usize..(r.child_off + r.child_len) as usize] == children
            })
            .map(ExprId)
    }

    /// Interns a node described by its record key, returning the existing id
    /// on a structural match and appending a fresh record otherwise.
    ///
    /// `node_sort` is the structural sort (a variable's sort, a `Uf`'s
    /// result sort); `sort` is the expression sort recorded for the id. The
    /// two agree on every checked insert.
    fn intern_node(
        &mut self,
        tag: Tag,
        node_sort: Sort,
        symbol: Symbol,
        children: &[ExprId],
        sort: Sort,
    ) -> ExprId {
        let hash = record_hash(tag, node_sort, symbol, children);
        if let Some(id) = self.find_interned(hash, tag, node_sort, symbol, children) {
            NODES_CACHE_HITS.inc();
            return id;
        }
        NODES_INTERNED.inc();
        let id = self.push_record(tag, node_sort, symbol, children, sort, hash);
        let hashes = &self.hashes;
        self.table
            .insert_unique(hash, id.0, |cand| hashes[cand as usize]);
        id
    }

    /// Appends a record (and its children) to the arena without touching the
    /// intern table.
    fn push_record(
        &mut self,
        tag: Tag,
        node_sort: Sort,
        symbol: Symbol,
        children: &[ExprId],
        sort: Sort,
        hash: u64,
    ) -> ExprId {
        let id = ExprId(u32::try_from(self.records.len()).expect("context node overflow"));
        let child_off = u32::try_from(self.child_slab.len()).expect("child slab overflow");
        let child_len = u32::try_from(children.len()).expect("child slab overflow");
        self.child_slab.extend_from_slice(children);
        self.records.push(NodeRecord {
            tag,
            node_sort,
            symbol,
            child_off,
            child_len,
        });
        self.sorts.push(sort);
        self.hashes.push(hash);
        id
    }

    /// Inserts a node *without* hash-consing or sort checking.
    ///
    /// The node is appended to the arena but **not** registered in the
    /// hash-consing table, so a structurally identical node may already
    /// exist and the recorded sort may contradict the node's structure.
    /// This deliberately breaks the context's invariants; it exists so
    /// that lint tests can manufacture ill-formed DAGs and check that the
    /// analyzer flags them. Never use it to build real formulas.
    pub fn insert_unchecked(&mut self, node: Node<'_>, sort: Sort) -> ExprId {
        let mut buf = [ExprId(0); 3];
        let (tag, node_sort, symbol, children) = decompose(node, &mut buf);
        // Only the symbol-bearing kinds carry a structural sort; for the
        // rest, cache the recorded sort (which unchecked callers may set to
        // contradict the structure — that is the point).
        let node_sort = if matches!(tag, Tag::Var | Tag::Uf) {
            node_sort
        } else {
            sort
        };
        let hash = record_hash(tag, node_sort, symbol, children);
        // Children may borrow this context's slab, so copy them out before
        // taking `&mut self` storage paths.
        let children = children.to_vec();
        self.push_record(tag, node_sort, symbol, &children, sort, hash)
    }

    /// The node stored at `id`, reconstructed as a borrowed view.
    #[inline]
    pub fn node(&self, id: ExprId) -> Node<'_> {
        self.view(&self.records[id.index()])
    }

    #[inline]
    fn view(&self, r: &NodeRecord) -> Node<'_> {
        let kids = &self.child_slab[r.child_off as usize..(r.child_off + r.child_len) as usize];
        match r.tag {
            Tag::True => Node::True,
            Tag::False => Node::False,
            Tag::Var => Node::Var(r.symbol, r.node_sort),
            Tag::Uf => Node::Uf(r.symbol, kids, r.node_sort),
            Tag::Ite => Node::Ite(kids[0], kids[1], kids[2]),
            Tag::Eq => Node::Eq(kids[0], kids[1]),
            Tag::Not => Node::Not(kids[0]),
            Tag::And => Node::And(kids),
            Tag::Or => Node::Or(kids),
            Tag::Read => Node::Read(kids[0], kids[1]),
            Tag::Write => Node::Write(kids[0], kids[1], kids[2]),
        }
    }

    /// The sort of the expression `id`.
    #[inline]
    pub fn sort(&self, id: ExprId) -> Sort {
        self.sorts[id.index()]
    }

    /// The node stored at `id`, or `None` if `id` is out of bounds.
    ///
    /// The panicking [`Context::node`] is right for ids known to be live;
    /// this checked variant lets analysis passes probe possibly-dangling
    /// ids without crashing.
    #[inline]
    pub fn try_node(&self, id: ExprId) -> Option<Node<'_>> {
        self.records.get(id.index()).map(|r| self.view(r))
    }

    /// The sort of `id`, or `None` if `id` is out of bounds.
    #[inline]
    pub fn try_sort(&self, id: ExprId) -> Option<Sort> {
        self.sorts.get(id.index()).copied()
    }

    /// The number of distinct nodes allocated in this context.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the context holds only the two Boolean constants.
    pub fn is_empty(&self) -> bool {
        self.records.len() <= 2
    }

    /// Resolves an interned symbol back to its name.
    pub fn name(&self, sym: Symbol) -> &str {
        self.symbols.resolve(sym)
    }

    /// Interns a name, returning its symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.symbols.intern(name)
    }

    /// The number of interned symbols.
    pub fn symbol_count(&self) -> usize {
        self.symbols.len()
    }

    /// Returns the Boolean constant for `value`.
    #[inline]
    pub fn bool_const(&self, value: bool) -> ExprId {
        if value {
            Context::TRUE
        } else {
            Context::FALSE
        }
    }

    /// Whether `id` is the constant `true`.
    #[inline]
    pub fn is_true(&self, id: ExprId) -> bool {
        id == Context::TRUE
    }

    /// Whether `id` is the constant `false`.
    #[inline]
    pub fn is_false(&self, id: ExprId) -> bool {
        id == Context::FALSE
    }

    // ----- variables -------------------------------------------------------

    /// Creates (or retrieves) a variable of the given sort.
    pub fn var(&mut self, name: &str, sort: Sort) -> ExprId {
        let sym = self.symbols.intern(name);
        self.intern_node(Tag::Var, sort, sym, &[], sort)
    }

    /// Creates (or retrieves) a propositional variable.
    pub fn pvar(&mut self, name: &str) -> ExprId {
        self.var(name, Sort::Bool)
    }

    /// Creates (or retrieves) a term variable.
    pub fn tvar(&mut self, name: &str) -> ExprId {
        self.var(name, Sort::Term)
    }

    /// Creates (or retrieves) a memory-state variable.
    pub fn mvar(&mut self, name: &str) -> ExprId {
        self.var(name, Sort::Mem)
    }

    /// Creates a fresh variable whose name starts with `prefix` and is
    /// guaranteed not to collide with any existing variable.
    pub fn fresh_var(&mut self, prefix: &str, sort: Sort) -> ExprId {
        loop {
            let name = format!("{prefix}!{}", self.fresh_counter);
            self.fresh_counter += 1;
            let sym = self.symbols.intern(&name);
            let hash = record_hash(Tag::Var, sort, sym, &[]);
            if self.find_interned(hash, Tag::Var, sort, sym, &[]).is_none() {
                return self.intern_node(Tag::Var, sort, sym, &[], sort);
            }
        }
    }

    // ----- uninterpreted functions and predicates --------------------------

    /// Applies the uninterpreted function `name` to `args`, producing a term.
    ///
    /// The signature (argument sorts and result sort) is recorded on first
    /// use and must match on every later application.
    ///
    /// # Panics
    ///
    /// Panics if `name` was previously applied with a different signature.
    pub fn uf(&mut self, name: &str, args: Vec<ExprId>) -> ExprId {
        self.apply(name, args, Sort::Term)
    }

    /// Applies the uninterpreted predicate `name` to `args`, producing a
    /// formula.
    ///
    /// # Panics
    ///
    /// Panics if `name` was previously applied with a different signature.
    pub fn up(&mut self, name: &str, args: Vec<ExprId>) -> ExprId {
        self.apply(name, args, Sort::Bool)
    }

    /// Applies an uninterpreted symbol with an explicit result sort.
    ///
    /// This generalizes [`Context::uf`]/[`Context::up`] to memory-sorted
    /// results, which the conservative memory abstraction uses to replace
    /// `write` with a fresh uninterpreted "memory transformer".
    ///
    /// # Panics
    ///
    /// Panics if `name` was previously applied with a different signature.
    pub fn apply(&mut self, name: &str, args: Vec<ExprId>, result: Sort) -> ExprId {
        let sym = self.symbols.intern(name);
        let arg_sorts: Vec<Sort> = args.iter().map(|&a| self.sort(a)).collect();
        match self.signatures.get(&sym) {
            Some((sig_args, sig_res)) => {
                assert!(
                    *sig_args == arg_sorts && *sig_res == result,
                    "inconsistent signature for uninterpreted symbol `{name}`"
                );
            }
            None => {
                self.signatures.insert(sym, (arg_sorts, result));
            }
        }
        self.intern_node(Tag::Uf, result, sym, &args, result)
    }

    /// The recorded signature of an uninterpreted symbol, if it has been
    /// applied.
    pub fn signature(&self, sym: Symbol) -> Option<(&[Sort], Sort)> {
        self.signatures.get(&sym).map(|(a, r)| (a.as_slice(), *r))
    }

    /// Applies an already-interned uninterpreted symbol.
    ///
    /// Equivalent to [`Context::apply`] but avoids resolving the name; used
    /// by rebuilding passes (substitution, elimination).
    ///
    /// # Panics
    ///
    /// Panics if `sym` was previously applied with a different signature.
    pub fn apply_sym(&mut self, sym: Symbol, args: Vec<ExprId>, result: Sort) -> ExprId {
        let arg_sorts: Vec<Sort> = args.iter().map(|&a| self.sort(a)).collect();
        match self.signatures.get(&sym) {
            Some((sig_args, sig_res)) => {
                assert!(
                    *sig_args == arg_sorts && *sig_res == result,
                    "inconsistent signature for uninterpreted symbol `{}`",
                    self.symbols.resolve(sym)
                );
            }
            None => {
                self.signatures.insert(sym, (arg_sorts, result));
            }
        }
        self.intern_node(Tag::Uf, result, sym, &args, result)
    }

    // ----- Boolean connectives ---------------------------------------------

    /// Logical negation with constant folding and double-negation collapse.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not a formula.
    pub fn not(&mut self, a: ExprId) -> ExprId {
        assert_eq!(self.sort(a), Sort::Bool, "not: operand must be a formula");
        if a == Context::TRUE {
            return Context::FALSE;
        }
        if a == Context::FALSE {
            return Context::TRUE;
        }
        if let Node::Not(inner) = self.node(a) {
            return inner;
        }
        self.intern_node(Tag::Not, Sort::Bool, Symbol(0), &[a], Sort::Bool)
    }

    /// N-ary conjunction; flattens nested conjunctions, removes duplicates
    /// and `true`, and short-circuits on `false` or complementary literals.
    ///
    /// # Panics
    ///
    /// Panics if any operand is not a formula.
    pub fn and(&mut self, operands: impl IntoIterator<Item = ExprId>) -> ExprId {
        self.nary(operands, true)
    }

    /// N-ary disjunction; dual of [`Context::and`].
    ///
    /// # Panics
    ///
    /// Panics if any operand is not a formula.
    pub fn or(&mut self, operands: impl IntoIterator<Item = ExprId>) -> ExprId {
        self.nary(operands, false)
    }

    fn nary(&mut self, operands: impl IntoIterator<Item = ExprId>, is_and: bool) -> ExprId {
        let (absorbing, identity) = if is_and {
            (Context::FALSE, Context::TRUE)
        } else {
            (Context::TRUE, Context::FALSE)
        };
        let mut flat: Vec<ExprId> = Vec::new();
        for op in operands {
            assert_eq!(
                self.sort(op),
                Sort::Bool,
                "and/or: operand must be a formula"
            );
            if op == absorbing {
                return absorbing;
            }
            if op == identity {
                continue;
            }
            match self.node(op) {
                Node::And(xs) if is_and => flat.extend_from_slice(xs),
                Node::Or(xs) if !is_and => flat.extend_from_slice(xs),
                _ => flat.push(op),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        if flat.contains(&absorbing) {
            return absorbing;
        }
        // complementary pair detection: x and not(x)
        for &x in &flat {
            if let Node::Not(inner) = self.node(x) {
                if flat.binary_search(&inner).is_ok() {
                    return absorbing;
                }
            }
        }
        match flat.len() {
            0 => identity,
            1 => flat[0],
            _ => {
                let tag = if is_and { Tag::And } else { Tag::Or };
                self.intern_node(tag, Sort::Bool, Symbol(0), &flat, Sort::Bool)
            }
        }
    }

    /// Binary conjunction convenience wrapper.
    pub fn and2(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.and([a, b])
    }

    /// Binary disjunction convenience wrapper.
    pub fn or2(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.or([a, b])
    }

    /// Logical implication `a -> b`, built as `!a | b`.
    pub fn implies(&mut self, a: ExprId, b: ExprId) -> ExprId {
        let na = self.not(a);
        self.or2(na, b)
    }

    /// Logical equivalence `a <-> b`, built as an `ITE`.
    pub fn iff(&mut self, a: ExprId, b: ExprId) -> ExprId {
        let nb = self.not(b);
        self.ite(a, b, nb)
    }

    /// Exclusive or `a ^ b`.
    pub fn xor(&mut self, a: ExprId, b: ExprId) -> ExprId {
        let nb = self.not(b);
        self.ite(a, nb, b)
    }

    // ----- ITE --------------------------------------------------------------

    /// If-then-else over formulas, terms, or memory states.
    ///
    /// Simplifications: constant or equal branches collapse; Boolean `ITE`s
    /// with constant branches reduce to `and`/`or` forms;
    /// `ite(c, t, ite(c, _, e))` and `ite(c, ite(c, t, _), e)` collapse.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is not a formula or the branches' sorts differ.
    pub fn ite(&mut self, cond: ExprId, then_val: ExprId, else_val: ExprId) -> ExprId {
        assert_eq!(
            self.sort(cond),
            Sort::Bool,
            "ite: condition must be a formula"
        );
        let sort = self.sort(then_val);
        assert_eq!(sort, self.sort(else_val), "ite: branch sorts must agree");
        if cond == Context::TRUE || then_val == else_val {
            return then_val;
        }
        if cond == Context::FALSE {
            return else_val;
        }
        // Collapse nested ITEs on the same condition.
        let mut then_val = then_val;
        let mut else_val = else_val;
        if let Node::Ite(c2, t2, _) = self.node(then_val) {
            if c2 == cond {
                then_val = t2;
            }
        }
        if let Node::Ite(c2, _, e2) = self.node(else_val) {
            if c2 == cond {
                else_val = e2;
            }
        }
        if then_val == else_val {
            return then_val;
        }
        if sort == Sort::Bool {
            return match (then_val, else_val) {
                (t, e) if t == Context::TRUE && e == Context::FALSE => cond,
                (t, e) if t == Context::FALSE && e == Context::TRUE => self.not(cond),
                (t, e) if t == Context::TRUE => self.or2(cond, e),
                (t, e) if t == Context::FALSE => {
                    let nc = self.not(cond);
                    self.and2(nc, e)
                }
                (t, e) if e == Context::TRUE => {
                    let nc = self.not(cond);
                    self.or2(nc, t)
                }
                (t, e) if e == Context::FALSE => self.and2(cond, t),
                _ => self.intern_node(
                    Tag::Ite,
                    Sort::Bool,
                    Symbol(0),
                    &[cond, then_val, else_val],
                    Sort::Bool,
                ),
            };
        }
        self.intern_node(Tag::Ite, sort, Symbol(0), &[cond, then_val, else_val], sort)
    }

    // ----- equations --------------------------------------------------------

    /// Equation between two terms or two memory states.
    ///
    /// Identical operands fold to `true`; operands are stored in canonical
    /// (smaller-id-first) order.
    ///
    /// # Panics
    ///
    /// Panics if the operands' sorts differ or are Boolean (use
    /// [`Context::iff`] for formulas).
    pub fn eq(&mut self, a: ExprId, b: ExprId) -> ExprId {
        let sa = self.sort(a);
        assert_eq!(sa, self.sort(b), "eq: operand sorts must agree");
        assert_ne!(sa, Sort::Bool, "eq: use iff for formulas");
        if a == b {
            return Context::TRUE;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern_node(Tag::Eq, Sort::Bool, Symbol(0), &[a, b], Sort::Bool)
    }

    // ----- memories ---------------------------------------------------------

    /// `read(mem, addr)`: the data at `addr` in memory state `mem`.
    ///
    /// # Panics
    ///
    /// Panics if `mem` is not memory-sorted or `addr` is not a term.
    pub fn read(&mut self, mem: ExprId, addr: ExprId) -> ExprId {
        assert_eq!(
            self.sort(mem),
            Sort::Mem,
            "read: first operand must be a memory"
        );
        assert_eq!(self.sort(addr), Sort::Term, "read: address must be a term");
        self.intern_node(Tag::Read, Sort::Term, Symbol(0), &[mem, addr], Sort::Term)
    }

    /// `write(mem, addr, data)`: the memory state after the store.
    ///
    /// # Panics
    ///
    /// Panics if the operand sorts are not (memory, term, term).
    pub fn write(&mut self, mem: ExprId, addr: ExprId, data: ExprId) -> ExprId {
        assert_eq!(
            self.sort(mem),
            Sort::Mem,
            "write: first operand must be a memory"
        );
        assert_eq!(self.sort(addr), Sort::Term, "write: address must be a term");
        assert_eq!(self.sort(data), Sort::Term, "write: data must be a term");
        self.intern_node(
            Tag::Write,
            Sort::Mem,
            Symbol(0),
            &[mem, addr, data],
            Sort::Mem,
        )
    }

    /// A conditional write: `ite(cond, write(mem, addr, data), mem)`.
    ///
    /// This is the *update* shape of Velev's correctness formulas
    /// (`context, address, data` triples).
    pub fn update(&mut self, mem: ExprId, cond: ExprId, addr: ExprId, data: ExprId) -> ExprId {
        let written = self.write(mem, addr, data);
        self.ite(cond, written, mem)
    }

    // ----- traversal helpers -------------------------------------------------

    /// The children of `id`, as a slice into the shared child slab.
    ///
    /// Uniform across node kinds (scalar-child kinds like `Not` and `Ite`
    /// expose their operands the same way), zero-allocation, and the
    /// traversal primitive generic passes should prefer over matching on
    /// [`Context::node`].
    #[inline]
    pub fn children(&self, id: ExprId) -> &[ExprId] {
        let r = &self.records[id.index()];
        &self.child_slab[r.child_off as usize..(r.child_off + r.child_len) as usize]
    }

    /// Returns a lazy iterator over the transitive sub-DAG of `roots`,
    /// yielding each reachable node exactly once in post-order (children
    /// before parents).
    ///
    /// Bookkeeping is proportional to the visited sub-DAG, not to the whole
    /// context, so many small traversals of a large context stay cheap.
    /// This is the liveness primitive behind [`Context::dag_size`],
    /// [`Context::extract`], the statistics censuses, and the lint passes.
    pub fn reachable(&self, roots: &[ExprId]) -> Reachable<'_> {
        Reachable {
            ctx: self,
            seen: std::collections::HashSet::with_capacity(roots.len() * 4),
            stack: roots.iter().rev().map(|&r| (r, false)).collect(),
        }
    }

    /// Iterates over the transitive sub-DAG of `roots` (each node once) in
    /// a post-order (children before parents), calling `visit` on each id.
    ///
    /// Convenience wrapper over [`Context::reachable`].
    pub fn visit_post_order(&self, roots: &[ExprId], mut visit: impl FnMut(ExprId)) {
        for id in self.reachable(roots) {
            visit(id);
        }
    }

    /// The number of distinct nodes reachable from `roots`.
    pub fn dag_size(&self, roots: &[ExprId]) -> usize {
        self.reachable(roots).count()
    }

    /// Extracts the sub-DAG reachable from `roots` into a fresh, compact
    /// context, returning it together with the new ids of the roots.
    ///
    /// Long-running pipelines accumulate garbage (intermediate rewriting
    /// results, per-obligation formulas); extracting the live roots
    /// reclaims that memory. Ids from the old context are meaningless in
    /// the new one — use the returned roots.
    pub fn extract(&self, roots: &[ExprId]) -> (Context, Vec<ExprId>) {
        let mut new = Context::new();
        let mut map: HashMap<ExprId, ExprId> = HashMap::new();
        self.visit_post_order(roots, |id| {
            let new_id = match self.node(id) {
                Node::True => Context::TRUE,
                Node::False => Context::FALSE,
                Node::Var(sym, sort) => new.var(self.symbols.resolve(sym), sort),
                Node::Uf(sym, args, sort) => {
                    let new_args: Vec<ExprId> = args.iter().map(|a| map[a]).collect();
                    new.apply(self.symbols.resolve(sym), new_args, sort)
                }
                Node::Ite(c, t, e) => new.ite(map[&c], map[&t], map[&e]),
                Node::Eq(a, b) => new.eq(map[&a], map[&b]),
                Node::Not(a) => new.not(map[&a]),
                Node::And(xs) => {
                    let ops: Vec<ExprId> = xs.iter().map(|x| map[x]).collect();
                    new.and(ops)
                }
                Node::Or(xs) => {
                    let ops: Vec<ExprId> = xs.iter().map(|x| map[x]).collect();
                    new.or(ops)
                }
                Node::Read(m, a) => new.read(map[&m], map[&a]),
                Node::Write(m, a, d) => new.write(map[&m], map[&a], map[&d]),
            };
            map.insert(id, new_id);
        });
        let new_roots = roots.iter().map(|r| map[r]).collect();
        (new, new_roots)
    }
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_u8(h: u64, byte: u8) -> u64 {
    (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME)
}

#[inline]
fn fnv_u32(mut h: u64, word: u32) -> u64 {
    for byte in word.to_le_bytes() {
        h = fnv_u8(h, byte);
    }
    h
}

/// Shallow structural hash of a node record: FNV-1a/64 over the kind tag,
/// the structural sort, the symbol, and the child ids.
///
/// This is the hash-consing key, *not* a content digest: children enter by
/// id, so it is only meaningful within one context. Deep, layout- and
/// context-independent identity lives in [`crate::digest`].
fn record_hash(tag: Tag, node_sort: Sort, symbol: Symbol, children: &[ExprId]) -> u64 {
    let sort_byte = match node_sort {
        Sort::Bool => 0u8,
        Sort::Term => 1,
        Sort::Mem => 2,
    };
    let mut h = FNV_OFFSET;
    h = fnv_u8(h, tag as u8);
    h = fnv_u8(h, sort_byte);
    h = fnv_u32(h, symbol.0);
    for c in children {
        h = fnv_u32(h, c.0);
    }
    h
}

/// Splits a node view into its record key, spilling scalar children into
/// `buf`. The returned slice borrows either `buf` or the view's own slice.
fn decompose<'a>(node: Node<'a>, buf: &'a mut [ExprId; 3]) -> (Tag, Sort, Symbol, &'a [ExprId]) {
    match node {
        Node::True => (Tag::True, Sort::Bool, Symbol(0), &[]),
        Node::False => (Tag::False, Sort::Bool, Symbol(0), &[]),
        Node::Var(sym, sort) => (Tag::Var, sort, sym, &[]),
        Node::Uf(sym, args, sort) => (Tag::Uf, sort, sym, args),
        Node::Ite(c, t, e) => {
            *buf = [c, t, e];
            (Tag::Ite, Sort::Bool, Symbol(0), &buf[..])
        }
        Node::Eq(a, b) => {
            buf[0] = a;
            buf[1] = b;
            (Tag::Eq, Sort::Bool, Symbol(0), &buf[..2])
        }
        Node::Not(a) => {
            buf[0] = a;
            (Tag::Not, Sort::Bool, Symbol(0), &buf[..1])
        }
        Node::And(xs) => (Tag::And, Sort::Bool, Symbol(0), xs),
        Node::Or(xs) => (Tag::Or, Sort::Bool, Symbol(0), xs),
        Node::Read(m, a) => {
            buf[0] = m;
            buf[1] = a;
            (Tag::Read, Sort::Term, Symbol(0), &buf[..2])
        }
        Node::Write(m, a, d) => {
            *buf = [m, a, d];
            (Tag::Write, Sort::Mem, Symbol(0), &buf[..])
        }
    }
}

/// Lazy post-order iterator over the live sub-DAG of a set of roots.
///
/// Created by [`Context::reachable`]. Each reachable id is yielded exactly
/// once, children strictly before parents. Out-of-bounds (dangling) ids are
/// yielded but not expanded, so analysis passes can traverse corrupted DAGs
/// and report the dangling ids instead of panicking.
#[derive(Debug, Clone)]
pub struct Reachable<'a> {
    ctx: &'a Context,
    seen: std::collections::HashSet<ExprId>,
    stack: Vec<(ExprId, bool)>,
}

impl Iterator for Reachable<'_> {
    type Item = ExprId;

    fn next(&mut self) -> Option<ExprId> {
        while let Some((id, expanded)) = self.stack.pop() {
            if expanded {
                return Some(id);
            }
            if !self.seen.insert(id) {
                continue;
            }
            self.stack.push((id, true));
            if let Some(node) = self.ctx.try_node(id) {
                node.for_each_child(|c| self.stack.push((c, false)));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_nodes() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let e1 = ctx.eq(a, b);
        let e2 = ctx.eq(b, a);
        assert_eq!(e1, e2, "equations are canonically ordered");
        let u1 = ctx.uf("f", vec![a, b]);
        let u2 = ctx.uf("f", vec![a, b]);
        assert_eq!(u1, u2);
    }

    #[test]
    fn and_or_normalization() {
        let mut ctx = Context::new();
        let x = ctx.pvar("x");
        let y = ctx.pvar("y");
        let t = Context::TRUE;
        let f = Context::FALSE;
        assert_eq!(ctx.and([x, t]), x);
        assert_eq!(ctx.and([x, f]), f);
        assert_eq!(ctx.or([x, f]), x);
        assert_eq!(ctx.or([x, t]), t);
        assert_eq!(ctx.and([] as [ExprId; 0]), t);
        assert_eq!(ctx.or([] as [ExprId; 0]), f);
        assert_eq!(ctx.and([x, x, y]), ctx.and([y, x]));
        // complementary literals
        let nx = ctx.not(x);
        assert_eq!(ctx.and([x, nx]), f);
        assert_eq!(ctx.or([x, nx]), t);
        // flattening
        let xy = ctx.and2(x, y);
        let z = ctx.pvar("z");
        let a1 = ctx.and2(xy, z);
        let a2 = ctx.and([x, y, z]);
        assert_eq!(a1, a2);
    }

    #[test]
    fn ite_simplifications() {
        let mut ctx = Context::new();
        let c = ctx.pvar("c");
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        assert_eq!(ctx.ite(Context::TRUE, a, b), a);
        assert_eq!(ctx.ite(Context::FALSE, a, b), b);
        assert_eq!(ctx.ite(c, a, a), a);
        assert_eq!(ctx.ite(c, Context::TRUE, Context::FALSE), c);
        let nc = ctx.not(c);
        assert_eq!(ctx.ite(c, Context::FALSE, Context::TRUE), nc);
        // nested collapse
        let inner = ctx.ite(c, a, b);
        let outer = ctx.ite(c, inner, b);
        assert_eq!(outer, inner);
    }

    #[test]
    fn eq_folds_identical() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        assert_eq!(ctx.eq(a, a), Context::TRUE);
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let mut ctx = Context::new();
        let v1 = ctx.fresh_var("tmp", Sort::Term);
        let v2 = ctx.fresh_var("tmp", Sort::Term);
        assert_ne!(v1, v2);
    }

    #[test]
    fn update_builds_conditional_write() {
        let mut ctx = Context::new();
        let m = ctx.mvar("rf");
        let c = ctx.pvar("c");
        let a = ctx.tvar("a");
        let d = ctx.tvar("d");
        let u = ctx.update(m, c, a, d);
        match ctx.node(u) {
            Node::Ite(cc, t, e) => {
                assert_eq!(cc, c);
                assert_eq!(e, m);
                assert!(matches!(ctx.node(t), Node::Write(..)));
            }
            other => panic!("expected ITE, got {other:?}"),
        }
        // constant contexts fold away
        assert_eq!(ctx.update(m, Context::FALSE, a, d), m);
    }

    #[test]
    #[should_panic(expected = "inconsistent signature")]
    fn signature_mismatch_panics() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let _ = ctx.uf("f", vec![a]);
        let _ = ctx.uf("f", vec![a, a]);
    }

    #[test]
    fn reachable_is_deduplicated_post_order() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let fa = ctx.uf("f", vec![a]);
        let eq = ctx.eq(fa, b);
        let x = ctx.pvar("x");
        let root = ctx.and2(x, eq);
        let order: Vec<ExprId> = ctx.reachable(&[root]).collect();
        // each node exactly once
        let mut dedup = order.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), order.len());
        // children strictly before parents
        let pos = |id: ExprId| order.iter().position(|&o| o == id).expect("visited");
        assert!(pos(a) < pos(fa));
        assert!(pos(fa) < pos(eq));
        assert!(pos(b) < pos(eq));
        assert!(pos(eq) < pos(root));
        assert!(pos(x) < pos(root));
        assert_eq!(order.last(), Some(&root));
        // shared sub-DAGs across roots visited once
        assert_eq!(ctx.reachable(&[root, eq, root]).count(), order.len());
    }

    #[test]
    fn reachable_yields_dangling_ids_without_panicking() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let dangling = ExprId::from_index(ctx.len() + 7);
        let bad = ctx.insert_unchecked(Node::Not(dangling), Sort::Bool);
        let order: Vec<ExprId> = ctx.reachable(&[bad]).collect();
        assert_eq!(order, vec![dangling, bad]);
        assert!(ctx.try_node(dangling).is_none());
        assert!(ctx.try_sort(dangling).is_none());
        assert!(ctx.try_node(a).is_some());
        assert_eq!(ctx.try_sort(a), Some(Sort::Term));
    }

    #[test]
    fn insert_unchecked_bypasses_hash_consing() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let eq = ctx.eq(a, b);
        let dup = ctx.insert_unchecked(Node::Eq(a, b), Sort::Bool);
        assert_ne!(eq, dup, "duplicate must get a fresh id");
        assert_eq!(ctx.node(eq), ctx.node(dup));
        // the original mapping is untouched
        assert_eq!(ctx.eq(a, b), eq);
    }

    #[test]
    fn dag_size_counts_shared_nodes_once() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let e = ctx.eq(a, b);
        let n = ctx.not(e);
        let conj = ctx.and2(e, n); // folds to false
        assert_eq!(conj, Context::FALSE);
        let f = ctx.or2(e, n); // folds to true
        assert_eq!(f, Context::TRUE);
        let g = ctx.and2(e, e);
        assert_eq!(g, e);
        assert_eq!(ctx.dag_size(&[e]), 3); // a, b, eq
    }
}

#[cfg(test)]
mod extract_tests {
    use super::*;
    use crate::print::to_sexpr;

    #[test]
    fn extract_compacts_and_preserves_structure() {
        let mut ctx = Context::new();
        // build garbage
        for i in 0..100 {
            let _ = ctx.tvar(&format!("garbage{i}"));
        }
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let fa = ctx.uf("f", vec![a]);
        let eq = ctx.eq(fa, b);
        let x = ctx.pvar("x");
        let root = ctx.and2(x, eq);
        let before = ctx.len();
        let (small, roots) = ctx.extract(&[root]);
        assert!(small.len() < before, "{} !< {before}", small.len());
        assert_eq!(roots.len(), 1);
        // Canonical operand order depends on per-context ids, so compare by
        // re-parsing both prints into ONE fresh context: hash-consing then
        // makes structural equality an id check.
        let mut probe = Context::new();
        let p1 = crate::parse::from_sexpr(&mut probe, &to_sexpr(&ctx, root)).expect("parse");
        let p2 = crate::parse::from_sexpr(&mut probe, &to_sexpr(&small, roots[0])).expect("parse");
        assert_eq!(p1, p2);
    }

    #[test]
    fn extract_preserves_evaluation() {
        use crate::eval::{eval_formula, Assignment, HashModel};
        let mut ctx = Context::new();
        let m = ctx.mvar("m");
        let a = ctx.tvar("a");
        let d = ctx.tvar("d");
        let w = ctx.write(m, a, d);
        let r = ctx.read(w, a);
        let goal = ctx.eq(r, d);
        let (mut small, roots) = ctx.extract(&[goal]);
        let model = HashModel::new(3, 4);
        let a2 = small.tvar("a");
        let d2 = small.tvar("d");
        for va in 0..4 {
            let mut asn_old = Assignment::default();
            asn_old.term.insert(a, va);
            asn_old.term.insert(d, 2);
            let mut asn_new = Assignment::default();
            asn_new.term.insert(a2, va);
            asn_new.term.insert(d2, 2);
            assert_eq!(
                eval_formula(&ctx, goal, &asn_old, &model),
                eval_formula(&small, roots[0], &asn_new, &model)
            );
        }
    }

    #[test]
    fn extract_shares_common_subdags_across_roots() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let eq = ctx.eq(a, b);
        let ne = ctx.not(eq);
        let (small, roots) = ctx.extract(&[eq, ne]);
        assert_eq!(roots.len(), 2);
        match small.node(roots[1]) {
            Node::Not(inner) => assert_eq!(inner, roots[0]),
            other => panic!("expected Not, got {other:?}"),
        }
    }
}
