//! String interning for variable and function names.

use std::collections::HashMap;

/// An interned name: a cheap, copyable handle to a string owned by the
/// [`Context`](crate::Context).
///
/// Symbols are only meaningful relative to the context that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// The raw index of this symbol in its context's intern table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A simple append-only string interner.
#[derive(Debug, Default, Clone)]
pub(crate) struct Interner {
    names: Vec<String>,
    map: HashMap<String, u32>,
}

impl Interner {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&id) = self.map.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), id);
        Symbol(id)
    }

    pub(crate) fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    pub(crate) fn len(&self) -> usize {
        self.names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedupes() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        let a2 = i.intern("a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "a");
        assert_eq!(i.resolve(b), "b");
        assert_eq!(i.len(), 2);
    }
}
