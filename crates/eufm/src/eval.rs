//! Concrete evaluation of EUFM expressions under finite interpretations.
//!
//! Evaluation is the semantic ground truth used to test every syntactic
//! transformation in the pipeline: a transformation is correct if the
//! original and transformed formulas evaluate identically under (a sample
//! of) interpretations.
//!
//! Term values range over a finite domain `0..domain`. Uninterpreted
//! functions, predicates, and initial memory contents are interpreted by a
//! deterministic pseudo-random [`HashModel`], so a `(seed, domain)` pair
//! fully determines an interpretation extension; sampling seeds samples
//! interpretations.

use std::collections::HashMap;
use std::rc::Rc;

use crate::context::Context;
use crate::node::{ExprId, Node, Sort};
use crate::symbol::Symbol;

/// A concrete value of an EUFM expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A truth value.
    Bool(bool),
    /// An element of the finite term domain.
    Term(u64),
    /// A memory state: an initial-state variable plus an overlay of writes.
    Mem(MemState),
}

impl Value {
    /// Extracts a Boolean, panicking on sort confusion.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a [`Value::Bool`].
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected Bool value, found {other:?}"),
        }
    }

    /// Extracts a term value.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a [`Value::Term`].
    pub fn as_term(&self) -> u64 {
        match self {
            Value::Term(t) => *t,
            other => panic!("expected Term value, found {other:?}"),
        }
    }
}

/// A memory state value: a persistent list of writes over a named initial
/// state. Cloning is O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemState(Rc<MemNode>);

#[derive(Debug, PartialEq, Eq)]
enum MemNode {
    /// The initial state of the memory variable with this id.
    Base(ExprId),
    /// A write of `data` at `addr` over the previous state.
    Write(MemState, u64, u64),
}

impl MemState {
    /// A fresh initial memory state for variable `var`.
    pub fn base(var: ExprId) -> Self {
        MemState(Rc::new(MemNode::Base(var)))
    }

    /// The state after writing `data` at `addr`.
    pub fn store(&self, addr: u64, data: u64) -> Self {
        MemState(Rc::new(MemNode::Write(self.clone(), addr, data)))
    }

    /// Reads `addr`, falling back to `init` for the base state content.
    pub fn load(&self, addr: u64, init: &impl Fn(ExprId, u64) -> u64) -> u64 {
        let mut cur = self;
        loop {
            match &*cur.0 {
                MemNode::Base(var) => return init(*var, addr),
                MemNode::Write(prev, a, d) => {
                    if *a == addr {
                        return *d;
                    }
                    cur = prev;
                }
            }
        }
    }
}

/// The variable assignment part of an interpretation.
#[derive(Debug, Clone, Default)]
pub struct Assignment {
    /// Values of term variables.
    pub term: HashMap<ExprId, u64>,
    /// Values of propositional variables.
    pub boolean: HashMap<ExprId, bool>,
}

/// A deterministic pseudo-random interpretation of uninterpreted symbols and
/// initial memory contents over a finite domain.
#[derive(Debug, Clone, Copy)]
pub struct HashModel {
    /// Seed distinguishing interpretations.
    pub seed: u64,
    /// Size of the term domain; values are `0..domain`.
    pub domain: u64,
}

impl HashModel {
    /// Creates a model with the given seed and domain size.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is zero.
    pub fn new(seed: u64, domain: u64) -> Self {
        assert!(domain > 0, "domain must be non-empty");
        HashModel { seed, domain }
    }

    fn mix(&self, xs: &[u64]) -> u64 {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for &x in xs {
            h ^= x
                .wrapping_add(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(h << 6)
                .wrapping_add(h >> 2);
            h = splitmix64(h);
        }
        h
    }

    /// The value of uninterpreted function `sym` on `args`.
    pub fn uf_value(&self, sym: Symbol, args: &[u64]) -> u64 {
        let mut key = vec![0xF00D, u64::from(sym.0)];
        key.extend_from_slice(args);
        self.mix(&key) % self.domain
    }

    /// The value of uninterpreted predicate `sym` on `args`.
    pub fn up_value(&self, sym: Symbol, args: &[u64]) -> bool {
        let mut key = vec![0xBEEF, u64::from(sym.0)];
        key.extend_from_slice(args);
        self.mix(&key) & 1 == 1
    }

    /// The initial content of memory variable `var` at `addr`.
    pub fn mem_init(&self, var: ExprId, addr: u64) -> u64 {
        self.mix(&[0xCAFE, u64::from(var.0), addr]) % self.domain
    }

    /// A default value for an unassigned term variable.
    pub fn default_term(&self, var: ExprId) -> u64 {
        self.mix(&[0xD00F, u64::from(var.0)]) % self.domain
    }

    /// A default value for an unassigned propositional variable.
    pub fn default_bool(&self, var: ExprId) -> bool {
        self.mix(&[0xB001, u64::from(var.0)]) & 1 == 1
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Evaluates `root` under `asn`, extending with `model` for uninterpreted
/// symbols, unassigned variables, and initial memory contents.
///
/// Memory equality is decided extensionally over the finite domain: two
/// memory states are equal iff they agree at every address in `0..domain`.
pub fn eval(ctx: &Context, root: ExprId, asn: &Assignment, model: &HashModel) -> Value {
    let mut memo: HashMap<ExprId, Value> = HashMap::new();
    let mut order: Vec<ExprId> = Vec::new();
    ctx.visit_post_order(&[root], |id| order.push(id));
    for id in order {
        let value = eval_node(ctx, id, asn, model, &memo);
        memo.insert(id, value);
    }
    memo.remove(&root).expect("root evaluated")
}

fn eval_node(
    ctx: &Context,
    id: ExprId,
    asn: &Assignment,
    model: &HashModel,
    memo: &HashMap<ExprId, Value>,
) -> Value {
    let get = |c: ExprId| memo.get(&c).expect("children evaluated before parents");
    match ctx.node(id) {
        Node::True => Value::Bool(true),
        Node::False => Value::Bool(false),
        Node::Var(_, Sort::Bool) => Value::Bool(
            asn.boolean
                .get(&id)
                .copied()
                .unwrap_or_else(|| model.default_bool(id)),
        ),
        Node::Var(_, Sort::Term) => Value::Term(
            asn.term
                .get(&id)
                .copied()
                .unwrap_or_else(|| model.default_term(id)),
        ),
        Node::Var(_, Sort::Mem) => Value::Mem(MemState::base(id)),
        Node::Uf(sym, args, sort) => {
            let vals: Vec<u64> = args.iter().map(|&a| encode_arg(get(a), model)).collect();
            match sort {
                Sort::Bool => Value::Bool(model.up_value(sym, &vals)),
                Sort::Term => Value::Term(model.uf_value(sym, &vals)),
                Sort::Mem => {
                    // Memory-sorted UF results only appear after conservative
                    // abstraction; model them as fresh bases keyed by the
                    // application's own id, overlaid with nothing. Functional
                    // consistency is preserved because the key is the hash of
                    // the argument values.
                    let key = model.uf_value(sym, &vals);
                    Value::Mem(MemState::base(ExprId::from_index(
                        usize::try_from(key % (1 << 30)).expect("mem key fits"),
                    )))
                }
            }
        }
        Node::Ite(c, t, e) => {
            if get(c).as_bool() {
                get(t).clone()
            } else {
                get(e).clone()
            }
        }
        Node::Eq(a, b) => Value::Bool(values_equal(get(a), get(b), model)),
        Node::Not(a) => Value::Bool(!get(a).as_bool()),
        Node::And(xs) => Value::Bool(xs.iter().all(|&x| get(x).as_bool())),
        Node::Or(xs) => Value::Bool(xs.iter().any(|&x| get(x).as_bool())),
        Node::Read(m, a) => match get(m) {
            Value::Mem(state) => {
                let addr = get(a).as_term();
                Value::Term(state.load(addr, &|var, ad| model.mem_init(var, ad)))
            }
            other => panic!("read of non-memory value {other:?}"),
        },
        Node::Write(m, a, d) => match get(m) {
            Value::Mem(state) => {
                let addr = get(a).as_term();
                let data = get(d).as_term();
                Value::Mem(state.store(addr, data))
            }
            other => panic!("write of non-memory value {other:?}"),
        },
    }
}

fn encode_arg(v: &Value, model: &HashModel) -> u64 {
    match v {
        Value::Bool(b) => u64::from(*b),
        Value::Term(t) => *t,
        Value::Mem(state) => {
            // Fingerprint the memory extensionally over the finite domain so
            // that extensionally equal memories are equal UF arguments.
            let mut h: u64 = 0x4d45_4d46;
            for addr in 0..model.domain {
                let d = state.load(addr, &|var, ad| model.mem_init(var, ad));
                h = splitmix64(h ^ d.wrapping_add(addr << 32));
            }
            h
        }
    }
}

fn values_equal(a: &Value, b: &Value, model: &HashModel) -> bool {
    match (a, b) {
        (Value::Term(x), Value::Term(y)) => x == y,
        (Value::Mem(x), Value::Mem(y)) => (0..model.domain).all(|addr| {
            x.load(addr, &|var, ad| model.mem_init(var, ad))
                == y.load(addr, &|var, ad| model.mem_init(var, ad))
        }),
        _ => panic!("equation between incompatible values {a:?} and {b:?}"),
    }
}

/// Evaluates a formula to a Boolean.
///
/// # Panics
///
/// Panics if `root` is not a formula.
pub fn eval_formula(ctx: &Context, root: ExprId, asn: &Assignment, model: &HashModel) -> bool {
    assert_eq!(
        ctx.sort(root),
        Sort::Bool,
        "eval_formula: root must be a formula"
    );
    eval(ctx, root, asn, model).as_bool()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> HashModel {
        HashModel::new(7, 8)
    }

    #[test]
    fn boolean_connectives() {
        let mut ctx = Context::new();
        let x = ctx.pvar("x");
        let y = ctx.pvar("y");
        let f = {
            let o = ctx.or2(x, y);
            let a = ctx.and2(x, y);
            let na = ctx.not(a);
            ctx.and2(o, na) // xor
        };
        let mut asn = Assignment::default();
        for (vx, vy, expect) in [
            (false, false, false),
            (true, false, true),
            (true, true, false),
        ] {
            asn.boolean.insert(x, vx);
            asn.boolean.insert(y, vy);
            assert_eq!(eval_formula(&ctx, f, &asn, &model()), expect);
        }
    }

    #[test]
    fn functional_consistency_holds() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let fa = ctx.uf("f", vec![a]);
        let fb = ctx.uf("f", vec![b]);
        let prem = ctx.eq(a, b);
        let concl = ctx.eq(fa, fb);
        let goal = ctx.implies(prem, concl);
        // valid: must hold under every sampled interpretation
        for seed in 0..50 {
            let m = HashModel::new(seed, 4);
            for va in 0..4 {
                for vb in 0..4 {
                    let mut asn = Assignment::default();
                    asn.term.insert(a, va);
                    asn.term.insert(b, vb);
                    assert!(eval_formula(&ctx, goal, &asn, &m));
                }
            }
        }
    }

    #[test]
    fn memory_forwarding_semantics() {
        let mut ctx = Context::new();
        let mem = ctx.mvar("m");
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let d = ctx.tvar("d");
        let w = ctx.write(mem, a, d);
        let r = ctx.read(w, b);
        // read(write(m,a,d), b) == ite(a = b, d, read(m, b)) — valid
        let rm = ctx.read(mem, b);
        let cond = ctx.eq(a, b);
        let rhs = ctx.ite(cond, d, rm);
        let goal = ctx.eq(r, rhs);
        for seed in 0..20 {
            let m = HashModel::new(seed, 4);
            for va in 0..4 {
                for vb in 0..4 {
                    let mut asn = Assignment::default();
                    asn.term.insert(a, va);
                    asn.term.insert(b, vb);
                    asn.term.insert(d, 2);
                    assert!(eval_formula(&ctx, goal, &asn, &m));
                }
            }
        }
    }

    #[test]
    fn memory_extensional_equality() {
        let mut ctx = Context::new();
        let mem = ctx.mvar("m");
        let a = ctx.tvar("a");
        let d = ctx.tvar("d");
        let r = ctx.read(mem, a);
        let w = ctx.write(mem, a, r);
        // write(m, a, read(m, a)) == m — valid extensionally
        let goal = ctx.eq(w, mem);
        for seed in 0..20 {
            let m = HashModel::new(seed, 4);
            for va in 0..4 {
                let mut asn = Assignment::default();
                asn.term.insert(a, va);
                asn.term.insert(d, 1);
                assert!(eval_formula(&ctx, goal, &asn, &m));
            }
        }
        // but write(m, a, d) == m is falsifiable
        let w2 = ctx.write(mem, a, d);
        let goal2 = ctx.eq(w2, mem);
        let mut found_false = false;
        for seed in 0..20 {
            let m = HashModel::new(seed, 4);
            for va in 0..4 {
                for vd in 0..4 {
                    let mut asn = Assignment::default();
                    asn.term.insert(a, va);
                    asn.term.insert(d, vd);
                    if !eval_formula(&ctx, goal2, &asn, &m) {
                        found_false = true;
                    }
                }
            }
        }
        assert!(found_false);
    }
}
