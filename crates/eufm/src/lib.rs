//! The logic of Equality with Uninterpreted Functions and Memories (EUFM).
//!
//! EUFM is the term-level logic introduced by Burch and Dill for
//! microprocessor correspondence checking, and used by Velev's TLSim/EVC
//! tool flow. This crate provides:
//!
//! - a hash-consed expression DAG ([`Context`]) holding *terms* (word-level
//!   values: term variables, uninterpreted-function applications, term
//!   `ITE`s, and the special memory functions `read`/`write`) and *formulas*
//!   (propositional variables, uninterpreted predicates, equations, formula
//!   `ITE`s, and Boolean connectives);
//! - polarity analysis classifying equations and term variables into
//!   *p-terms* (positive-only) and *g-terms* (general), the basis of the
//!   Positive Equality reduction ([`polarity`]);
//! - substitution and simplification under partial Boolean assignments
//!   ([`subst`]), the workhorse of the rewriting-rule engine;
//! - evaluation under concrete interpretations and a brute-force validity
//!   oracle for cross-validating the whole verification pipeline on tiny
//!   instances ([`eval`], [`oracle`]);
//! - structural statistics ([`stats`]) and an s-expression printer/parser
//!   ([`print`], [`parse`]);
//! - stable content-addressed digests of sub-formulas, the identity layer
//!   beneath the obligation memoization store ([`digest`]).
//!
//! # Example
//!
//! ```
//! use eufm::{Context, Sort};
//!
//! let mut ctx = Context::new();
//! let a = ctx.tvar("a");
//! let b = ctx.tvar("b");
//! let fa = ctx.uf("f", vec![a]);
//! let fb = ctx.uf("f", vec![b]);
//! // functional consistency: a = b implies f(a) = f(b)
//! let premise = ctx.eq(a, b);
//! let concl = ctx.eq(fa, fb);
//! let prop = ctx.implies(premise, concl);
//! assert_eq!(ctx.sort(prop), Sort::Bool);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod intern;
mod node;
mod symbol;

pub mod cancel;
pub mod digest;
pub mod eval;
pub mod idmap;
pub mod oracle;
pub mod parse;
pub mod polarity;
pub mod print;
pub mod stats;
pub mod subst;

pub use cancel::CancelToken;
pub use context::{Context, Reachable};
pub use idmap::IdMap;
pub use node::{ExprId, Node, Sort};
pub use symbol::Symbol;

/// Errors produced when constructing or manipulating EUFM expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EufmError {
    /// An operand had the wrong sort for the operation.
    SortMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// The sort that was expected.
        expected: Sort,
        /// The sort that was found.
        found: Sort,
    },
    /// An uninterpreted function or predicate was re-applied with a
    /// signature different from its first application.
    SignatureMismatch {
        /// The function or predicate name.
        name: String,
    },
    /// A parse error with a message and byte offset.
    Parse {
        /// What went wrong.
        message: String,
        /// Byte offset in the input where the error occurred.
        offset: usize,
    },
}

impl std::fmt::Display for EufmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EufmError::SortMismatch {
                op,
                expected,
                found,
            } => {
                write!(
                    f,
                    "sort mismatch in {op}: expected {expected:?}, found {found:?}"
                )
            }
            EufmError::SignatureMismatch { name } => {
                write!(
                    f,
                    "inconsistent signature for uninterpreted symbol `{name}`"
                )
            }
            EufmError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for EufmError {}
