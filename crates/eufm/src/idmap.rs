//! Dense per-node side tables keyed by [`ExprId`].
//!
//! Expression ids are dense arena indices, so a per-traversal memo keyed
//! by `ExprId` does not need a hash table at all: a flat `Vec` indexed by
//! `id.index()` replaces the `HashMap<ExprId, V>` the passes used before
//! the arena, turning every memo hit from a SipHash computation plus
//! probe sequence into a bounds-checked load. The translation passes
//! (substitution, memory elimination, UF elimination, Positive Equality,
//! Tseitin) all keep one of these per walk; they are the constant factor
//! behind the rewrite/translate phase times in `BENCH_*.json`.
//!
//! The table grows lazily to the highest inserted id, so a walk over a
//! small sub-DAG of a large context stays proportional to the ids it
//! actually touches (which, for post-order rebuilds over fresh contexts,
//! are clustered at the low end of the arena).

use crate::node::ExprId;

/// A map from [`ExprId`] to `V`, stored as a flat slot vector.
///
/// Semantically equivalent to `HashMap<ExprId, V>` for dense arena ids;
/// `get`/`insert`/`contains` are O(1) with no hashing.
#[derive(Debug, Clone, Default)]
pub struct IdMap<V> {
    slots: Vec<Option<V>>,
}

impl<V: Copy> IdMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        IdMap { slots: Vec::new() }
    }

    /// An empty map with room for ids below `capacity` preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        IdMap {
            slots: Vec::with_capacity(capacity),
        }
    }

    /// The value stored for `id`, if any.
    #[inline]
    pub fn get(&self, id: ExprId) -> Option<V> {
        self.slots.get(id.index()).copied().flatten()
    }

    /// Whether `id` has a stored value.
    #[inline]
    pub fn contains(&self, id: ExprId) -> bool {
        matches!(self.slots.get(id.index()), Some(Some(_)))
    }

    /// Stores `value` for `id`, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, id: ExprId, value: V) -> Option<V> {
        let index = id.index();
        if self.slots.len() <= index {
            self.slots.resize(index + 1, None);
        }
        self.slots[index].replace(value)
    }

    /// Removes and returns the value stored for `id`.
    #[inline]
    pub fn remove(&mut self, id: ExprId) -> Option<V> {
        self.slots.get_mut(id.index()).and_then(Option::take)
    }

    /// Drops all entries, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(index: usize) -> ExprId {
        ExprId::from_index(index)
    }

    #[test]
    fn insert_get_contains_remove() {
        let mut m: IdMap<u32> = IdMap::new();
        assert_eq!(m.get(id(3)), None);
        assert!(!m.contains(id(3)));
        assert_eq!(m.insert(id(3), 7), None);
        assert_eq!(m.get(id(3)), Some(7));
        assert!(m.contains(id(3)));
        assert_eq!(m.insert(id(3), 9), Some(7));
        assert_eq!(m.get(id(3)), Some(9));
        // ids below the high-water mark stay empty
        assert_eq!(m.get(id(0)), None);
        assert_eq!(m.remove(id(3)), Some(9));
        assert_eq!(m.get(id(3)), None);
        assert_eq!(m.remove(id(1000)), None);
    }

    #[test]
    fn clear_keeps_working() {
        let mut m: IdMap<u8> = IdMap::with_capacity(8);
        m.insert(id(5), 1);
        m.clear();
        assert!(!m.contains(id(5)));
        m.insert(id(2), 2);
        assert_eq!(m.get(id(2)), Some(2));
    }
}
