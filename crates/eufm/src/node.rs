//! Expression node representation.
//!
//! Storage and view are separate layers. The [`Context`](crate::Context)
//! arena stores each node as a fixed-size POD [`NodeRecord`] whose children
//! live contiguously in a shared child slab; [`Node`] is a borrowed,
//! `Copy` *view* reconstructed on demand. Pattern-matching code sees the
//! same variants it always did, while the arena never chases a `Box` and
//! never stores a node twice.

use crate::symbol::Symbol;

/// The sort (type) of an EUFM expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sort {
    /// A formula (Boolean value).
    Bool,
    /// A term (abstract word-level value: data, register id, address, ...).
    Term,
    /// The state of a memory array (e.g. a Register File).
    Mem,
}

/// A handle to an expression stored in a [`Context`](crate::Context).
///
/// Ids are dense indices; because the context hash-conses every node,
/// two expressions are structurally equal **iff** their ids are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprId(pub(crate) u32);

impl ExprId {
    /// The raw index of this expression in its context's node table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a raw index.
    ///
    /// Intended for dense side tables; the index must have come from
    /// [`ExprId::index`] on the same context.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ExprId(u32::try_from(index).expect("expression index overflow"))
    }
}

/// The kind of a stored node record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum Tag {
    True = 0,
    False = 1,
    Var = 2,
    Uf = 3,
    Ite = 4,
    Eq = 5,
    Not = 6,
    And = 7,
    Or = 8,
    Read = 9,
    Write = 10,
}

/// Fixed-size storage record for one node.
///
/// Children are a `[child_off, child_off + child_len)` window into the
/// context's child slab; `symbol` and `node_sort` are meaningful only for
/// the symbol-bearing kinds (`Var`, `Uf`), where they are part of the
/// node's structural identity. Sixteen bytes, `Copy`, no indirection.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeRecord {
    pub(crate) tag: Tag,
    /// Structural sort: a variable's sort or a `Uf`'s result sort. For the
    /// other kinds this caches the recorded expression sort and plays no
    /// part in identity.
    pub(crate) node_sort: Sort,
    pub(crate) symbol: Symbol,
    pub(crate) child_off: u32,
    pub(crate) child_len: u32,
}

/// A borrowed view of an expression node. Children are [`ExprId`]s into the
/// same context; child *lists* borrow the context's child slab.
///
/// Nodes of sort [`Sort::Bool`] model the control path and the correctness
/// condition; nodes of sort [`Sort::Term`] abstract word-level values; nodes
/// of sort [`Sort::Mem`] abstract entire memory states.
///
/// Views are `Copy` and cheap to reconstruct; they are produced by
/// [`Context::node`](crate::Context::node) and compare/hash structurally,
/// so they can key scratch maps in analysis passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node<'a> {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// A variable of the given sort (propositional, term, or memory).
    Var(Symbol, Sort),
    /// An uninterpreted function application producing a value of the given
    /// result sort. Uninterpreted predicates are `Uf` nodes with result sort
    /// [`Sort::Bool`].
    Uf(Symbol, &'a [ExprId], Sort),
    /// An if-then-else over values of equal sort; the first child is the
    /// controlling formula.
    Ite(ExprId, ExprId, ExprId),
    /// An equation between two values of equal, non-Boolean sort.
    ///
    /// Children are stored with the smaller id first (equations are
    /// symmetric, and canonical ordering improves sharing).
    Eq(ExprId, ExprId),
    /// Logical negation.
    Not(ExprId),
    /// N-ary conjunction; children are flattened, sorted, and deduplicated.
    And(&'a [ExprId]),
    /// N-ary disjunction; children are flattened, sorted, and deduplicated.
    Or(&'a [ExprId]),
    /// `read(mem, addr)`: the data stored at `addr` in memory state `mem`.
    Read(ExprId, ExprId),
    /// `write(mem, addr, data)`: the memory state after storing `data` at
    /// `addr` in `mem`.
    Write(ExprId, ExprId, ExprId),
}

impl Node<'_> {
    /// Visits every child id of this node.
    pub fn for_each_child(&self, mut f: impl FnMut(ExprId)) {
        match *self {
            Node::True | Node::False | Node::Var(..) => {}
            Node::Uf(_, args, _) => args.iter().copied().for_each(&mut f),
            Node::Ite(c, t, e) => {
                f(c);
                f(t);
                f(e);
            }
            Node::Eq(a, b) | Node::Read(a, b) => {
                f(a);
                f(b);
            }
            Node::Not(a) => f(a),
            Node::And(xs) | Node::Or(xs) => xs.iter().copied().for_each(&mut f),
            Node::Write(m, a, d) => {
                f(m);
                f(a);
                f(d);
            }
        }
    }

    /// The number of children of this node.
    pub fn child_count(&self) -> usize {
        let mut n = 0;
        self.for_each_child(|_| n += 1);
        n
    }

    /// A short human-readable tag for the node kind, used in statistics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Node::True => "true",
            Node::False => "false",
            Node::Var(_, Sort::Bool) => "pvar",
            Node::Var(_, Sort::Term) => "tvar",
            Node::Var(_, Sort::Mem) => "mvar",
            Node::Uf(_, _, Sort::Bool) => "up",
            Node::Uf(..) => "uf",
            Node::Ite(..) => "ite",
            Node::Eq(..) => "eq",
            Node::Not(..) => "not",
            Node::And(..) => "and",
            Node::Or(..) => "or",
            Node::Read(..) => "read",
            Node::Write(..) => "write",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_iteration_covers_all_kinds() {
        let a = ExprId(1);
        let b = ExprId(2);
        let c = ExprId(3);
        assert_eq!(Node::True.child_count(), 0);
        assert_eq!(Node::Var(Symbol(0), Sort::Term).child_count(), 0);
        assert_eq!(Node::Uf(Symbol(0), &[a, b], Sort::Term).child_count(), 2);
        assert_eq!(Node::Ite(a, b, c).child_count(), 3);
        assert_eq!(Node::Eq(a, b).child_count(), 2);
        assert_eq!(Node::Not(a).child_count(), 1);
        assert_eq!(Node::And(&[a, b, c]).child_count(), 3);
        assert_eq!(Node::Or(&[a]).child_count(), 1);
        assert_eq!(Node::Read(a, b).child_count(), 2);
        assert_eq!(Node::Write(a, b, c).child_count(), 3);
    }

    #[test]
    fn expr_id_roundtrip() {
        let id = ExprId::from_index(42);
        assert_eq!(id.index(), 42);
    }
}
