//! Stable, content-addressed digests of EUFM expressions.
//!
//! The memoization layer (`rob-memo`) keys cached obligation verdicts by
//! the *structure* of the formula, not by [`ExprId`] — ids are dense
//! per-context indices and mean nothing across contexts or processes.
//! This module computes a 128-bit FNV-1a digest bottom-up over the
//! hash-consed DAG: each node's digest folds in a kind tag, its resolved
//! symbol name and sort (for variables and uninterpreted functions), and
//! the digests of its children. Two structurally identical formulas —
//! even built in different contexts, in different processes, on
//! different days — produce the same digest.
//!
//! The digest deliberately avoids the s-expression printer: rendering a
//! shared DAG as a tree can blow up exponentially, while the memoized
//! bottom-up fold visits each distinct node exactly once.
//!
//! 128 bits keep the collision probability negligible at any plausible
//! store size (a 2^64-entry store would be needed before birthday
//! collisions become likely), which is what lets the store trust the
//! digest for identity instead of carrying the full canonical rendering.

use crate::{Context, ExprId, Node, Sort};

/// FNV-1a/128 offset basis.
pub const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a/128 prime.
pub const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// Folds `bytes` into a running FNV-1a/128 state.
#[inline]
pub fn fnv1a_128(mut state: u128, bytes: &[u8]) -> u128 {
    for &b in bytes {
        state ^= u128::from(b);
        state = state.wrapping_mul(FNV128_PRIME);
    }
    state
}

/// Renders a digest as 32 lowercase hex digits.
pub fn digest_hex(digest: u128) -> String {
    format!("{digest:032x}")
}

/// Parses the 32-hex-digit rendering back into a digest.
pub fn digest_from_hex(text: &str) -> Option<u128> {
    if text.len() != 32 {
        return None;
    }
    u128::from_str_radix(text, 16).ok()
}

fn sort_tag(sort: Sort) -> u8 {
    match sort {
        Sort::Bool => b'B',
        Sort::Term => b'T',
        Sort::Mem => b'M',
    }
}

fn kind_tag(node: Node<'_>) -> u8 {
    match node {
        Node::True => b't',
        Node::False => b'f',
        Node::Var(..) => b'v',
        Node::Uf(..) => b'u',
        Node::Ite(..) => b'i',
        Node::Eq(..) => b'e',
        Node::Not(..) => b'n',
        Node::And(..) => b'a',
        Node::Or(..) => b'o',
        Node::Read(..) => b'r',
        Node::Write(..) => b'w',
    }
}

/// A per-[`Context`] digest calculator with a node-level cache.
///
/// The cache is a dense side table indexed by [`ExprId`], so a
/// `Digester` is only valid for the context it was first used with;
/// create one per context (contexts only ever grow, so a long-lived
/// digester stays correct as new nodes are interned). The dense table
/// doubles as the traversal's visited set, so digesting needs no hash
/// lookups at all — this sits on the warm path of every memo query.
#[derive(Debug, Default)]
pub struct Digester {
    cache: Vec<Option<u128>>,
}

impl Digester {
    /// An empty digester.
    pub fn new() -> Self {
        Digester::default()
    }

    fn get(&self, id: ExprId) -> Option<u128> {
        self.cache.get(id.index()).copied().flatten()
    }

    fn set(&mut self, id: ExprId, digest: u128) {
        let index = id.index();
        if self.cache.len() <= index {
            self.cache.resize(index + 1, None);
        }
        self.cache[index] = Some(digest);
    }

    /// The structural digest of `root` in `ctx`.
    ///
    /// Visits each distinct reachable node once (post-order), reusing
    /// digests cached by earlier calls on the same context.
    pub fn digest(&mut self, ctx: &Context, root: ExprId) -> u128 {
        if let Some(d) = self.get(root) {
            return d;
        }
        // Explicit post-order with the cache as the visited set: a node
        // is pushed unexpanded, re-pushed expanded after its children,
        // and digested once all of them are cached.
        let mut stack = vec![(root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if self.get(id).is_some() {
                continue;
            }
            if expanded {
                let d = self.node_digest(ctx, id);
                self.set(id, d);
            } else {
                stack.push((id, true));
                ctx.node(id).for_each_child(|child| {
                    if self.get(child).is_none() {
                        stack.push((child, false));
                    }
                });
            }
        }
        self.get(root).expect("root digested by traversal")
    }

    /// Digest of a single node whose children are already cached.
    fn node_digest(&self, ctx: &Context, id: ExprId) -> u128 {
        let node = ctx.node(id);
        let mut state = fnv1a_128(FNV128_OFFSET, &[kind_tag(node)]);
        match node {
            Node::True | Node::False => {}
            Node::Var(sym, sort) => {
                state = fnv1a_128(state, &[sort_tag(sort)]);
                state = fnv1a_128(state, ctx.name(sym).as_bytes());
                state = fnv1a_128(state, &[0]);
            }
            Node::Uf(sym, _, sort) => {
                state = fnv1a_128(state, &[sort_tag(sort)]);
                state = fnv1a_128(state, ctx.name(sym).as_bytes());
                state = fnv1a_128(state, &[0]);
            }
            _ => {}
        }
        let mut child_digests = [0u128; 4];
        let mut extra = Vec::new();
        let mut n = 0usize;
        node.for_each_child(|child| {
            let d = self.get(child).expect("children digested before parents");
            if n < child_digests.len() {
                child_digests[n] = d;
            } else {
                extra.push(d);
            }
            n += 1;
        });
        for d in child_digests.iter().take(n.min(child_digests.len())) {
            state = fnv1a_128(state, &d.to_be_bytes());
        }
        for d in &extra {
            state = fnv1a_128(state, &d.to_be_bytes());
        }
        // Arity terminator: distinguishes and(a, b) from and(a, b, c)
        // prefixes beyond what the child fold alone guarantees.
        fnv1a_128(state, &(n as u32).to_be_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden digest vectors, mirroring the `fnv_vector` test in
    /// `core::jobkey`: these values must never change — a change means
    /// every persisted memo store silently invalidates (or worse,
    /// aliases). Update only alongside a store fingerprint bump.
    #[test]
    fn golden_digest_vectors() {
        let mut ctx = Context::new();
        let mut d = Digester::new();
        assert_eq!(
            digest_hex(d.digest(&ctx, Context::TRUE)),
            "ca3282ea3b83d94f70816a0a3978e7b3"
        );
        assert_eq!(
            digest_hex(d.digest(&ctx, Context::FALSE)),
            "29bb76e55583d94f7081428ced83b319"
        );
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let eq = ctx.eq(a, b);
        assert_eq!(
            digest_hex(d.digest(&ctx, eq)),
            "76655c22dae82425e54e4006f9ffe1cf"
        );
        let fa = ctx.uf("f", vec![a]);
        let fb = ctx.uf("f", vec![b]);
        let concl = ctx.eq(fa, fb);
        let prop = ctx.implies(eq, concl);
        assert_eq!(
            digest_hex(d.digest(&ctx, prop)),
            "4e8c5a2e3616a0d4f8af719a8e619009"
        );
    }

    #[test]
    fn structurally_equal_formulas_in_fresh_contexts_agree() {
        let build = |ctx: &mut Context| {
            let x = ctx.pvar("x");
            let a = ctx.tvar("addr");
            let m = ctx.mvar("rf");
            let r = ctx.read(m, a);
            let fa = ctx.uf("alu", vec![a, r]);
            let eq = ctx.eq(fa, r);
            ctx.and2(x, eq)
        };
        let mut ctx1 = Context::new();
        let root1 = build(&mut ctx1);
        let mut ctx2 = Context::new();
        // Interleave unrelated junk so the raw ids differ.
        ctx2.tvar("junk1");
        ctx2.pvar("junk2");
        let root2 = build(&mut ctx2);
        assert_ne!(root1, root2, "ids differ between the contexts");
        let d1 = Digester::new().digest(&ctx1, root1);
        let d2 = Digester::new().digest(&ctx2, root2);
        assert_eq!(d1, d2, "digests depend on structure, not ids");
    }

    #[test]
    fn distinct_structures_get_distinct_digests() {
        let mut ctx = Context::new();
        let mut d = Digester::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let c = ctx.tvar("c");
        let mut seen = std::collections::HashSet::new();
        let eq_ab = ctx.eq(a, b);
        let eq_ac = ctx.eq(a, c);
        let f_ab = ctx.uf("f", vec![a, b]);
        let g_ab = ctx.uf("g", vec![a, b]);
        let h_a = ctx.uf("h", vec![a]);
        let not_eq = ctx.not(eq_ab);
        let roots = [a, b, c, eq_ab, eq_ac, f_ab, g_ab, h_a, not_eq];
        for root in roots {
            assert!(
                seen.insert(d.digest(&ctx, root)),
                "digest collision at {root:?}"
            );
        }
    }

    #[test]
    fn var_and_uf_with_same_name_differ() {
        let mut ctx = Context::new();
        let v = ctx.pvar("p");
        let u = ctx.up("p", vec![]);
        let mut d = Digester::new();
        assert_ne!(d.digest(&ctx, v), d.digest(&ctx, u));
    }

    #[test]
    fn shared_dag_digesting_is_linear_not_exponential() {
        // A 64-level doubling DAG: as a tree this is 2^64 nodes; the
        // digester must finish instantly by visiting each node once.
        let mut ctx = Context::new();
        let mut x = ctx.tvar("x0");
        let mut y = ctx.tvar("y0");
        for i in 0..64 {
            let f = ctx.uf("f", vec![x, y]);
            let g = ctx.uf("g", vec![y, x]);
            x = f;
            y = g;
            let _ = i;
        }
        let top = ctx.eq(x, y);
        let digest = Digester::new().digest(&ctx, top);
        assert_ne!(digest, 0);
    }

    #[test]
    fn hex_roundtrip() {
        let d = 0x0123_4567_89ab_cdef_0123_4567_89ab_cdefu128;
        assert_eq!(digest_from_hex(&digest_hex(d)), Some(d));
        assert_eq!(digest_from_hex("zz"), None);
        assert_eq!(digest_from_hex(&"0".repeat(31)), None);
    }
}
