//! Brute-force validity checking for small formulas.
//!
//! The oracle cross-validates the verification pipeline: on tiny processor
//! configurations the full EUFM correctness formula can be checked for
//! validity directly, and the result compared against the rewriting-rule /
//! Positive-Equality / SAT flow.
//!
//! Two modes are provided:
//!
//! - [`check_sampled`] evaluates the formula under pseudo-random
//!   interpretations; a failed sample is a definite counterexample, while
//!   all-pass means "probably valid".
//! - [`check_exhaustive`] decides validity exactly for formulas whose terms
//!   contain no uninterpreted functions or memories (i.e. after
//!   elimination), by enumerating all equality patterns (set partitions) of
//!   the term variables and all Boolean assignments. This is exact because
//!   such formulas depend on term values only through equality.

use crate::context::Context;
use crate::eval::{eval_formula, Assignment, HashModel};
use crate::node::{ExprId, Node, Sort};
use crate::subst::collect_vars;

/// A falsifying interpretation found by the oracle.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The variable assignment that falsifies the formula.
    pub assignment: Assignment,
    /// The model seed (for sampled checks) under which it falsifies.
    pub seed: u64,
}

/// The outcome of an oracle check.
#[derive(Debug, Clone)]
pub enum OracleResult {
    /// The formula is valid (exhaustive mode) or survived all samples
    /// (sampled mode).
    Valid,
    /// A falsifying interpretation was found.
    Invalid(Box<Counterexample>),
    /// The formula was too large or used unsupported constructs within the
    /// given budget.
    Unsupported(String),
}

impl OracleResult {
    /// Whether the result is [`OracleResult::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, OracleResult::Valid)
    }

    /// Whether the result is [`OracleResult::Invalid`].
    pub fn is_invalid(&self) -> bool {
        matches!(self, OracleResult::Invalid(_))
    }
}

/// Checks validity by sampling `samples` pseudo-random interpretations over
/// a domain sized to the number of term variables.
///
/// Returns [`OracleResult::Invalid`] on the first failing sample. This mode
/// supports the full logic (uninterpreted functions, predicates, memories).
pub fn check_sampled(ctx: &Context, root: ExprId, samples: u64) -> OracleResult {
    check_sampled_with_domain(ctx, root, samples, 0)
}

/// Like [`check_sampled`] but with an explicit term-domain size
/// (`0` = one value per term variable, the default).
///
/// Small domains make aliasing between term variables frequent, which is
/// where counterexamples hide, and keep the extensional memory comparisons
/// cheap — refutation-oriented callers (the rewrite engine's slice
/// diagnosis) use a domain of 8.
pub fn check_sampled_with_domain(
    ctx: &Context,
    root: ExprId,
    samples: u64,
    domain: u64,
) -> OracleResult {
    assert_eq!(ctx.sort(root), Sort::Bool, "oracle: root must be a formula");
    let vars = collect_vars(ctx, &[root]);
    let term_vars: Vec<ExprId> = vars
        .iter()
        .copied()
        .filter(|&v| ctx.sort(v) == Sort::Term)
        .collect();
    let bool_vars: Vec<ExprId> = vars
        .iter()
        .copied()
        .filter(|&v| ctx.sort(v) == Sort::Bool)
        .collect();
    let domain = if domain == 0 {
        (term_vars.len() as u64 + 1).max(2)
    } else {
        domain.max(2)
    };
    for seed in 0..samples {
        let model = HashModel::new(seed.wrapping_mul(0x9e37), domain);
        let mut asn = Assignment::default();
        // Vary variable values with the seed as well, including frequent
        // aliasing between term variables (aliasing is where bugs hide).
        for (i, &v) in term_vars.iter().enumerate() {
            let h = mix(seed, i as u64);
            asn.term.insert(v, h % domain);
        }
        for (i, &v) in bool_vars.iter().enumerate() {
            let h = mix(seed ^ 0xb001, i as u64);
            asn.boolean.insert(v, h & 1 == 1);
        }
        if !eval_formula(ctx, root, &asn, &model) {
            return OracleResult::Invalid(Box::new(Counterexample {
                assignment: asn,
                seed,
            }));
        }
    }
    OracleResult::Valid
}

fn mix(a: u64, b: u64) -> u64 {
    let mut x = a.wrapping_mul(0xff51_afd7_ed55_8ccd) ^ b.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x
}

/// Decides validity exactly for a UF/memory-free formula by enumerating
/// all set partitions of the term variables (equality patterns) and all
/// Boolean assignments, up to `budget` total interpretations.
///
/// Returns [`OracleResult::Unsupported`] if the formula contains
/// uninterpreted functions, predicates, reads, or writes, or if the
/// enumeration would exceed `budget`.
pub fn check_exhaustive(ctx: &Context, root: ExprId, budget: u64) -> OracleResult {
    assert_eq!(ctx.sort(root), Sort::Bool, "oracle: root must be a formula");
    let mut unsupported = None;
    ctx.visit_post_order(&[root], |id| match ctx.node(id) {
        Node::Uf(..) => unsupported = Some("uninterpreted function/predicate"),
        Node::Read(..) | Node::Write(..) => unsupported = Some("memory operation"),
        Node::Var(_, Sort::Mem) => unsupported = Some("memory variable"),
        _ => {}
    });
    if let Some(what) = unsupported {
        return OracleResult::Unsupported(format!("formula contains {what}"));
    }
    let vars = collect_vars(ctx, &[root]);
    let term_vars: Vec<ExprId> = vars
        .iter()
        .copied()
        .filter(|&v| ctx.sort(v) == Sort::Term)
        .collect();
    let bool_vars: Vec<ExprId> = vars
        .iter()
        .copied()
        .filter(|&v| ctx.sort(v) == Sort::Bool)
        .collect();
    if bool_vars.len() >= 63 {
        return OracleResult::Unsupported("too many Boolean variables".to_owned());
    }
    let bool_count = 1u64 << bool_vars.len();
    let Some(partitions) = bell_number(term_vars.len(), budget) else {
        return OracleResult::Unsupported("too many term variables".to_owned());
    };
    match partitions.checked_mul(bool_count) {
        Some(total) if total <= budget => {}
        _ => return OracleResult::Unsupported("enumeration exceeds budget".to_owned()),
    }

    let domain = (term_vars.len() as u64 + 1).max(2);
    let model = HashModel::new(0, domain);
    let mut rgs = RestrictedGrowth::new(term_vars.len());
    loop {
        let blocks = rgs.current();
        for bits in 0..bool_count {
            let mut asn = Assignment::default();
            for (i, &v) in term_vars.iter().enumerate() {
                asn.term.insert(v, u64::from(blocks[i]));
            }
            for (i, &v) in bool_vars.iter().enumerate() {
                asn.boolean.insert(v, bits >> i & 1 == 1);
            }
            if !eval_formula(ctx, root, &asn, &model) {
                return OracleResult::Invalid(Box::new(Counterexample {
                    assignment: asn,
                    seed: 0,
                }));
            }
        }
        if !rgs.advance() {
            break;
        }
    }
    OracleResult::Valid
}

/// The number of set partitions of `n` elements, or `None` if it exceeds
/// `cap`.
fn bell_number(n: usize, cap: u64) -> Option<u64> {
    // Bell triangle with overflow/cap checks: B(n) is the last element of
    // the n-th row; each row starts with the previous row's last element.
    if n == 0 {
        return Some(1);
    }
    let mut row = vec![1u64]; // row for n = 1
    for _ in 2..=n {
        let mut next = Vec::with_capacity(row.len() + 1);
        next.push(*row.last().expect("non-empty row"));
        for &x in &row {
            let last = *next.last().expect("non-empty row");
            let sum = last.checked_add(x)?;
            if sum > cap.saturating_mul(64) {
                return None;
            }
            next.push(sum);
        }
        row = next;
    }
    Some(*row.last().expect("non-empty row"))
}

/// Enumerates set partitions of `{0, .., n-1}` as restricted growth strings.
struct RestrictedGrowth {
    codes: Vec<u32>,
    maxes: Vec<u32>,
}

impl RestrictedGrowth {
    fn new(n: usize) -> Self {
        RestrictedGrowth {
            codes: vec![0; n.max(1)],
            maxes: vec![0; n.max(1)],
        }
    }

    fn current(&self) -> &[u32] {
        &self.codes
    }

    fn advance(&mut self) -> bool {
        let n = self.codes.len();
        for i in (1..n).rev() {
            if self.codes[i] <= self.maxes[i - 1] {
                self.codes[i] += 1;
                let new_max = self.maxes[i - 1].max(self.codes[i]);
                self.maxes[i] = new_max;
                for j in i + 1..n {
                    self.codes[j] = 0;
                    self.maxes[j] = new_max;
                }
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_numbers_match_known_values() {
        assert_eq!(bell_number(0, 1 << 30), Some(1));
        assert_eq!(bell_number(1, 1 << 30), Some(1));
        assert_eq!(bell_number(2, 1 << 30), Some(2));
        assert_eq!(bell_number(3, 1 << 30), Some(5));
        assert_eq!(bell_number(4, 1 << 30), Some(15));
        assert_eq!(bell_number(5, 1 << 30), Some(52));
        assert_eq!(bell_number(10, 1 << 30), Some(115_975));
    }

    #[test]
    fn rgs_enumerates_all_partitions_of_three() {
        let mut rgs = RestrictedGrowth::new(3);
        let mut seen = vec![rgs.current().to_vec()];
        while rgs.advance() {
            seen.push(rgs.current().to_vec());
        }
        assert_eq!(seen.len(), 5);
        assert!(seen.contains(&vec![0, 0, 0]));
        assert!(seen.contains(&vec![0, 0, 1]));
        assert!(seen.contains(&vec![0, 1, 0]));
        assert!(seen.contains(&vec![0, 1, 1]));
        assert!(seen.contains(&vec![0, 1, 2]));
    }

    #[test]
    fn exhaustive_validates_excluded_middle_over_equality() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let c = ctx.tvar("c");
        // transitivity: a=b & b=c -> a=c
        let ab = ctx.eq(a, b);
        let bc = ctx.eq(b, c);
        let ac = ctx.eq(a, c);
        let prem = ctx.and2(ab, bc);
        let goal = ctx.implies(prem, ac);
        assert!(check_exhaustive(&ctx, goal, 1 << 20).is_valid());
        // and the converse is invalid
        let bad = ctx.implies(ac, ab);
        assert!(check_exhaustive(&ctx, bad, 1 << 20).is_invalid());
    }

    #[test]
    fn exhaustive_rejects_ufs() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let fa = ctx.uf("f", vec![a]);
        let goal = ctx.eq(fa, a);
        assert!(matches!(
            check_exhaustive(&ctx, goal, 1 << 20),
            OracleResult::Unsupported(_)
        ));
    }

    #[test]
    fn sampled_finds_counterexample() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let goal = ctx.eq(a, b); // not valid
        assert!(check_sampled(&ctx, goal, 64).is_invalid());
    }

    #[test]
    fn sampled_passes_valid_formula_with_ufs() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let fa = ctx.uf("f", vec![a]);
        let fb = ctx.uf("f", vec![b]);
        let prem = ctx.eq(a, b);
        let concl = ctx.eq(fa, fb);
        let goal = ctx.implies(prem, concl);
        assert!(check_sampled(&ctx, goal, 256).is_valid());
    }

    #[test]
    fn bool_assignments_are_enumerated() {
        let mut ctx = Context::new();
        let x = ctx.pvar("x");
        let nx = ctx.not(x);
        let taut = ctx.or2(x, nx);
        assert_eq!(taut, Context::TRUE);
        let y = ctx.pvar("y");
        let f = ctx.or2(x, y); // falsifiable at x=y=false
        assert!(check_exhaustive(&ctx, f, 1 << 20).is_invalid());
    }
}
