//! Cooperative cancellation for long-running pipeline phases.
//!
//! A [`CancelToken`] is a shared atomic flag with an optional wall-clock
//! deadline and an optional parent link. Every long-running loop of the
//! verification pipeline — symbolic simulation steps, rewrite-rule
//! slices, the Positive-Equality encoder, the CDCL search — polls a
//! token and winds down gracefully when it trips, instead of being
//! abandoned by a watchdog to burn CPU on a detached thread.
//!
//! Tokens form a tree: [`CancelToken::child`] creates a token that trips
//! when its parent trips but can also be tripped (or expire) on its own
//! without affecting the parent. The verification driver uses this to
//! give the rewrite phase a private deadline: when only the child trips,
//! the driver degrades to Positive-Equality-only translation; when the
//! parent trips, the whole job is cancelled.
//!
//! Polling is a couple of relaxed-ordering atomic loads plus (when a
//! deadline is set) a monotonic clock read, so it is cheap enough for
//! per-conflict / per-node check sites.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<CancelToken>,
}

/// A shared cancellation flag with an optional deadline and parent.
///
/// Cloning is cheap (an [`Arc`] bump) and every clone observes the same
/// flag. The default token never trips on its own.
#[derive(Debug, Clone)]
pub struct CancelToken(Arc<Inner>);

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh token that only trips when [`CancelToken::cancel`] is
    /// called.
    pub fn new() -> Self {
        CancelToken(Arc::new(Inner {
            flag: AtomicBool::new(false),
            deadline: None,
            parent: None,
        }))
    }

    /// A fresh token that trips automatically once `budget` has elapsed
    /// (measured from now), in addition to explicit cancellation.
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken(Arc::new(Inner {
            flag: AtomicBool::new(false),
            deadline: Instant::now().checked_add(budget),
            parent: None,
        }))
    }

    /// A child token: trips when `self` trips, when explicitly cancelled,
    /// but never the other way around.
    pub fn child(&self) -> Self {
        CancelToken(Arc::new(Inner {
            flag: AtomicBool::new(false),
            deadline: None,
            parent: Some(self.clone()),
        }))
    }

    /// A child token with its own deadline: trips when `self` trips, when
    /// explicitly cancelled, or once `budget` has elapsed.
    pub fn child_with_deadline(&self, budget: Duration) -> Self {
        CancelToken(Arc::new(Inner {
            flag: AtomicBool::new(false),
            deadline: Instant::now().checked_add(budget),
            parent: Some(self.clone()),
        }))
    }

    /// Trips the token (and, transitively, every child).
    pub fn cancel(&self) {
        self.0.flag.store(true, Ordering::Release);
    }

    /// Whether the token has tripped: explicitly cancelled, past its
    /// deadline, or descended from a tripped parent.
    pub fn is_cancelled(&self) -> bool {
        if self.0.flag.load(Ordering::Acquire) {
            return true;
        }
        if let Some(deadline) = self.0.deadline {
            if Instant::now() >= deadline {
                // Latch the deadline expiry so later polls take the
                // cheap flag path and children observe a stable answer.
                self.0.flag.store(true, Ordering::Release);
                return true;
            }
        }
        match &self.0.parent {
            Some(parent) => parent.is_cancelled(),
            None => false,
        }
    }

    /// Whether *this* token was tripped directly (explicit cancel or its
    /// own deadline), ignoring any parent. Lets a caller distinguish "my
    /// phase budget expired" from "the whole job was cancelled".
    pub fn is_cancelled_locally(&self) -> bool {
        if self.0.flag.load(Ordering::Acquire) {
            return true;
        }
        if let Some(deadline) = self.0.deadline {
            if Instant::now() >= deadline {
                self.0.flag.store(true, Ordering::Release);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tokens_are_untripped_and_cancel_is_sticky() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
        assert!(token.is_cancelled(), "cancellation must be sticky");
    }

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let observer = token.clone();
        token.cancel();
        assert!(observer.is_cancelled());
    }

    #[test]
    fn deadlines_trip_automatically() {
        let token = CancelToken::with_deadline(Duration::ZERO);
        assert!(token.is_cancelled(), "zero deadline trips immediately");
        let patient = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!patient.is_cancelled());
    }

    #[test]
    fn children_observe_the_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled(), "parent cancellation reaches children");
        assert!(
            !child.is_cancelled_locally(),
            "the child itself was never tripped"
        );

        let parent = CancelToken::new();
        let child = parent.child();
        child.cancel();
        assert!(child.is_cancelled_locally());
        assert!(!parent.is_cancelled(), "children never trip the parent");
    }

    #[test]
    fn child_deadline_is_private() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Duration::ZERO);
        assert!(child.is_cancelled());
        assert!(child.is_cancelled_locally());
        assert!(!parent.is_cancelled());
    }
}
