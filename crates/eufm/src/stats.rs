//! Structural statistics over expression DAGs.
//!
//! These drive the "primary inputs" rows of the paper's Tables 3 and 5
//! (variable census of the Boolean correctness formula) and the size
//! scaling reported for the EUFM correctness formulas.

use std::collections::BTreeMap;

use crate::context::Context;
use crate::node::{ExprId, Node, Sort};
use crate::polarity;

/// A census of a DAG reachable from a set of roots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DagStats {
    /// Total distinct nodes.
    pub nodes: usize,
    /// Node counts per kind tag (see [`Node::kind_name`]).
    pub by_kind: BTreeMap<&'static str, usize>,
    /// Distinct term variables.
    pub term_vars: usize,
    /// Distinct propositional variables.
    pub prop_vars: usize,
    /// Distinct memory variables.
    pub mem_vars: usize,
    /// Equation nodes.
    pub equations: usize,
    /// Uninterpreted function applications (term- or memory-sorted).
    pub uf_apps: usize,
    /// Uninterpreted predicate applications.
    pub up_apps: usize,
    /// `read` nodes.
    pub reads: usize,
    /// `write` nodes.
    pub writes: usize,
    /// Maximum depth (longest root-to-leaf path).
    pub depth: usize,
}

impl DagStats {
    /// Total variables of all sorts.
    pub fn total_vars(&self) -> usize {
        self.term_vars + self.prop_vars + self.mem_vars
    }
}

/// Computes a [`DagStats`] census of the DAG under `roots`.
pub fn dag_stats(ctx: &Context, roots: &[ExprId]) -> DagStats {
    let mut stats = DagStats::default();
    let mut depth: BTreeMap<ExprId, usize> = BTreeMap::new();
    for id in ctx.reachable(roots) {
        stats.nodes += 1;
        let node = ctx.node(id);
        *stats.by_kind.entry(node.kind_name()).or_insert(0) += 1;
        match node {
            Node::Var(_, Sort::Term) => stats.term_vars += 1,
            Node::Var(_, Sort::Bool) => stats.prop_vars += 1,
            Node::Var(_, Sort::Mem) => stats.mem_vars += 1,
            Node::Eq(..) => stats.equations += 1,
            Node::Uf(_, _, Sort::Bool) => stats.up_apps += 1,
            Node::Uf(..) => stats.uf_apps += 1,
            Node::Read(..) => stats.reads += 1,
            Node::Write(..) => stats.writes += 1,
            _ => {}
        }
        let mut d = 0;
        node.for_each_child(|c| d = d.max(depth.get(&c).copied().unwrap_or(0) + 1));
        depth.insert(id, d);
        stats.depth = stats.depth.max(d);
    }
    stats
}

/// A census of the *Boolean-level* variable structure of a formula, in the
/// shape reported by the paper's Tables 3 and 5: how many `e_ij` encoding
/// variables, how many other primary Boolean variables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrimaryInputStats {
    /// Boolean variables whose name marks them as `e_ij` equality encoders.
    pub eij_vars: usize,
    /// All other primary Boolean variables.
    pub other_vars: usize,
}

impl PrimaryInputStats {
    /// Total primary inputs.
    pub fn total(&self) -> usize {
        self.eij_vars + self.other_vars
    }
}

/// The name prefix that marks `e_ij` equality-encoding variables.
pub const EIJ_PREFIX: &str = "eij!";

/// Counts the primary Boolean inputs of an (already propositional) formula,
/// splitting out `e_ij` encoder variables by their name prefix.
pub fn primary_inputs(ctx: &Context, root: ExprId) -> PrimaryInputStats {
    let mut stats = PrimaryInputStats::default();
    for id in ctx.reachable(&[root]) {
        if let Node::Var(sym, Sort::Bool) = ctx.node(id) {
            if ctx.name(sym).starts_with(EIJ_PREFIX) {
                stats.eij_vars += 1;
            } else {
                stats.other_vars += 1;
            }
        }
    }
    stats
}

/// A polarity census: equation counts by polarity class, plus p-var/g-var
/// counts. This is the quantity Positive Equality exploits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolarityStats {
    /// Equations that appear only positively.
    pub positive_eqs: usize,
    /// Equations that appear negatively or in both polarities.
    pub general_eqs: usize,
    /// Term variables only ever compared positively.
    pub p_vars: usize,
    /// Term variables reaching general equations.
    pub g_vars: usize,
}

/// Computes the polarity census of a formula.
pub fn polarity_stats(ctx: &Context, root: ExprId) -> PolarityStats {
    let analysis = polarity::analyze(ctx, &[root]);
    PolarityStats {
        positive_eqs: analysis.positive_eq_count(),
        general_eqs: analysis.general_eq_count(),
        p_vars: analysis
            .term_vars
            .iter()
            .filter(|v| analysis.is_pvar(**v))
            .count(),
        g_vars: analysis.gvars.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_counts_kinds() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let fa = ctx.uf("f", vec![a]);
        let eq = ctx.eq(fa, b);
        let x = ctx.pvar("x");
        let root = ctx.and2(x, eq);
        let s = dag_stats(&ctx, &[root]);
        assert_eq!(s.term_vars, 2);
        assert_eq!(s.prop_vars, 1);
        assert_eq!(s.uf_apps, 1);
        assert_eq!(s.equations, 1);
        assert_eq!(s.nodes, 6);
        assert_eq!(s.depth, 3); // and -> eq -> uf -> a
    }

    #[test]
    fn primary_inputs_split_eij() {
        let mut ctx = Context::new();
        let e1 = ctx.pvar(&format!("{EIJ_PREFIX}0!1"));
        let v = ctx.pvar("Valid_1");
        let root = ctx.and2(e1, v);
        let s = primary_inputs(&ctx, root);
        assert_eq!(s.eij_vars, 1);
        assert_eq!(s.other_vars, 1);
        assert_eq!(s.total(), 2);
    }

    #[test]
    fn polarity_stats_classify() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let c = ctx.tvar("c");
        let d = ctx.tvar("d");
        let pos = ctx.eq(a, b);
        let neg_inner = ctx.eq(c, d);
        let neg = ctx.not(neg_inner);
        let root = ctx.and2(pos, neg);
        let s = polarity_stats(&ctx, root);
        assert_eq!(s.positive_eqs, 1);
        assert_eq!(s.general_eqs, 1);
        assert_eq!(s.p_vars, 2);
        assert_eq!(s.g_vars, 2);
    }
}
