//! Substitution and simplification under partial assignments.
//!
//! Substitution rebuilds expressions bottom-up through the context's smart
//! constructors, so replacing a variable by a constant automatically
//! propagates all the constant folding the constructors perform. This is the
//! mechanism behind the rewriting-rule engine's *case splits* ("assume
//! `ValidResult_i` is true and check the written data collapses to
//! `Result_i`") and its *update-chain surgery* ("replace this proven-equal
//! memory prefix by a fresh variable").

use std::collections::HashMap;

use crate::context::Context;
use crate::idmap::IdMap;
use crate::node::{ExprId, Node};

/// A substitution mapping expression ids to replacement ids.
///
/// Keys may be any expression (not just variables): every occurrence of a
/// key in the traversed DAG is replaced, and parents are rebuilt through the
/// smart constructors.
pub type Substitution = HashMap<ExprId, ExprId>;

/// Applies `subst` to `root`, returning the rebuilt expression.
///
/// Replacement is *not* applied recursively to the replacements themselves
/// (occurrences inside a replacement image are left alone), matching the
/// usual simultaneous-substitution semantics.
///
/// # Panics
///
/// Panics if a replacement's sort differs from the sort of the expression it
/// replaces.
pub fn substitute(ctx: &mut Context, root: ExprId, subst: &Substitution) -> ExprId {
    let mut memo = seeded_memo(ctx, subst);
    substitute_memo(ctx, root, &mut memo)
}

/// Applies `subst` to several roots, sharing the traversal memo.
pub fn substitute_all(ctx: &mut Context, roots: &[ExprId], subst: &Substitution) -> Vec<ExprId> {
    let mut memo = seeded_memo(ctx, subst);
    roots
        .iter()
        .map(|&r| substitute_memo(ctx, r, &mut memo))
        .collect()
}

/// Seeds the traversal memo with the substitution pairs, so the walk
/// itself never consults the (hashed) substitution map: a key hit is an
/// ordinary memo hit, one dense load per node.
fn seeded_memo(ctx: &Context, subst: &Substitution) -> IdMap<ExprId> {
    let mut memo: IdMap<ExprId> = IdMap::new();
    for (&id, &img) in subst {
        assert_eq!(
            ctx.sort(id),
            ctx.sort(img),
            "substitution must preserve sorts"
        );
        memo.insert(id, img);
    }
    memo
}

fn substitute_memo(ctx: &mut Context, root: ExprId, memo: &mut IdMap<ExprId>) -> ExprId {
    // Iterative post-order rebuild to avoid stack overflow on deep chains.
    enum Frame {
        Enter(ExprId),
        Exit(ExprId),
    }
    let mut stack = vec![Frame::Enter(root)];
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Enter(id) => {
                if memo.contains(id) {
                    continue;
                }
                if ctx.node(id).child_count() == 0 {
                    memo.insert(id, id);
                    continue;
                }
                stack.push(Frame::Exit(id));
                ctx.node(id).for_each_child(|c| stack.push(Frame::Enter(c)));
            }
            Frame::Exit(id) => {
                let rebuilt = rebuild(ctx, id, memo);
                memo.insert(id, rebuilt);
            }
        }
    }
    memo.get(root).expect("root rebuilt by traversal")
}

fn rebuild(ctx: &mut Context, id: ExprId, memo: &IdMap<ExprId>) -> ExprId {
    let m = |id: ExprId| memo.get(id).expect("child rebuilt before parent");
    match ctx.node(id) {
        Node::True | Node::False | Node::Var(..) => unreachable!("leaves are memoized directly"),
        Node::Uf(sym, args, sort) => {
            let new_args: Vec<ExprId> = args.iter().map(|&a| m(a)).collect();
            ctx.apply_sym(sym, new_args, sort)
        }
        Node::Ite(c, t, e) => ctx.ite(m(c), m(t), m(e)),
        Node::Eq(a, b) => ctx.eq(m(a), m(b)),
        Node::Not(a) => ctx.not(m(a)),
        Node::And(xs) => {
            let ops: Vec<ExprId> = xs.iter().map(|&x| m(x)).collect();
            ctx.and(ops)
        }
        Node::Or(xs) => {
            let ops: Vec<ExprId> = xs.iter().map(|&x| m(x)).collect();
            ctx.or(ops)
        }
        Node::Read(mem, addr) => ctx.read(m(mem), m(addr)),
        Node::Write(mem, addr, d) => ctx.write(m(mem), m(addr), m(d)),
    }
}

/// Simplifies `root` under a partial Boolean assignment: each key formula is
/// replaced by the given constant and the result is re-normalized.
///
/// The keys are typically propositional variables, but any formula id works
/// (e.g. assuming a whole guard expression true).
pub fn simplify_under(
    ctx: &mut Context,
    root: ExprId,
    assignment: &HashMap<ExprId, bool>,
) -> ExprId {
    let subst: Substitution = assignment
        .iter()
        .map(|(&k, &v)| (k, ctx.bool_const(v)))
        .collect();
    substitute(ctx, root, &subst)
}

/// The positive or negative cofactor of `root` with respect to formula `on`.
pub fn cofactor(ctx: &mut Context, root: ExprId, on: ExprId, value: bool) -> ExprId {
    let mut subst = Substitution::new();
    subst.insert(on, ctx.bool_const(value));
    substitute(ctx, root, &subst)
}

/// Collects every variable (of any sort) reachable from `roots`.
pub fn collect_vars(ctx: &Context, roots: &[ExprId]) -> Vec<ExprId> {
    ctx.reachable(roots)
        .filter(|&id| matches!(ctx.node(id), Node::Var(..)))
        .collect()
}

/// Whether `needle` occurs in the DAG of `root`.
///
/// Short-circuits as soon as the needle is found, unlike a full census.
pub fn occurs(ctx: &Context, root: ExprId, needle: ExprId) -> bool {
    ctx.reachable(&[root]).any(|id| id == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Sort;

    #[test]
    fn substitute_var_with_constant_simplifies() {
        let mut ctx = Context::new();
        let x = ctx.pvar("x");
        let y = ctx.pvar("y");
        let f = ctx.and2(x, y);
        let g = cofactor(&mut ctx, f, x, true);
        assert_eq!(g, y);
        let h = cofactor(&mut ctx, f, x, false);
        assert_eq!(h, Context::FALSE);
    }

    #[test]
    fn substitute_subexpression() {
        let mut ctx = Context::new();
        let m = ctx.mvar("rf");
        let a = ctx.tvar("a");
        let d = ctx.tvar("d");
        let w = ctx.write(m, a, d);
        let r = ctx.read(w, a);
        // replace the whole write-prefix by a fresh memory variable
        let fresh = ctx.mvar("rf_equal");
        let mut s = Substitution::new();
        s.insert(w, fresh);
        let r2 = substitute(&mut ctx, r, &s);
        let expected = ctx.read(fresh, a);
        assert_eq!(r2, expected);
    }

    #[test]
    fn ite_collapses_under_assignment() {
        let mut ctx = Context::new();
        let c = ctx.pvar("c");
        let t = ctx.tvar("t");
        let e = ctx.tvar("e");
        let ite = ctx.ite(c, t, e);
        let mut asn = HashMap::new();
        asn.insert(c, true);
        assert_eq!(simplify_under(&mut ctx, ite, &asn), t);
        asn.insert(c, false);
        assert_eq!(simplify_under(&mut ctx, ite, &asn), e);
    }

    #[test]
    fn derived_formulas_simplify_through_structure() {
        // retire_2 = Valid_2 & ValidResult_2 & retire_1; assuming !retire_1
        // must collapse retire_2 to false even though retire_2 itself is not
        // a key of the assignment.
        let mut ctx = Context::new();
        let v2 = ctx.pvar("Valid_2");
        let vr2 = ctx.pvar("ValidResult_2");
        let retire1 = ctx.pvar("retire_1");
        let retire2 = ctx.and([v2, vr2, retire1]);
        let mut asn = HashMap::new();
        asn.insert(retire1, false);
        assert_eq!(simplify_under(&mut ctx, retire2, &asn), Context::FALSE);
    }

    #[test]
    fn collect_vars_and_occurs() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let c = ctx.pvar("c");
        let eq = ctx.eq(a, b);
        let f = ctx.and2(c, eq);
        let mut vars = collect_vars(&ctx, &[f]);
        vars.sort_unstable();
        let mut expected = vec![a, b, c];
        expected.sort_unstable();
        assert_eq!(vars, expected);
        assert!(occurs(&ctx, f, a));
        let z = ctx.tvar("z");
        assert!(!occurs(&ctx, f, z));
    }

    #[test]
    fn substitution_preserves_uf_sharing() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let fa = ctx.uf("f", vec![a]);
        let mut s = Substitution::new();
        s.insert(a, b);
        let fb = substitute(&mut ctx, fa, &s);
        let expected = ctx.uf("f", vec![b]);
        assert_eq!(fb, expected);
        assert_eq!(ctx.sort(fb), Sort::Term);
    }
}
