//! S-expression parsing of EUFM expressions (the inverse of [`crate::print`]).
//!
//! The grammar matches the printer's output:
//!
//! ```text
//! expr  := "true" | "false" | var | "(" head expr* ")"
//! var   := NAME ":" ("b" | "t" | "m")
//! head  := "and" | "or" | "not" | "ite" | "=" | "read" | "write"
//!        | "uf" NAME | "up" NAME
//! ```

use crate::context::Context;
use crate::node::{ExprId, Sort};
use crate::EufmError;

/// Parses an s-expression into `ctx`.
///
/// # Errors
///
/// Returns [`EufmError::Parse`] on malformed input, and propagates sort
/// errors as parse errors with the offending construct's position.
pub fn from_sexpr(ctx: &mut Context, input: &str) -> Result<ExprId, EufmError> {
    let mut parser = Parser {
        ctx,
        input: input.as_bytes(),
        pos: 0,
    };
    let expr = parser.expr()?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return Err(parser.error("trailing input"));
    }
    Ok(expr)
}

struct Parser<'a> {
    ctx: &'a mut Context,
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> EufmError {
        EufmError::Parse {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn token(&mut self) -> Result<&'static str, EufmError> {
        // tokens are consumed as atoms by `atom`; this is only for errors
        Err(self.error("unexpected token"))
    }

    fn atom(&mut self) -> Result<String, EufmError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() || c == b'(' || c == b')' {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected atom"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn expr(&mut self) -> Result<ExprId, EufmError> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let head = self.atom()?;
                let result = self.compound(&head)?;
                self.skip_ws();
                if self.peek() != Some(b')') {
                    return Err(self.error("expected `)`"));
                }
                self.pos += 1;
                Ok(result)
            }
            Some(_) => {
                let atom = self.atom()?;
                self.leaf(&atom)
            }
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn leaf(&mut self, atom: &str) -> Result<ExprId, EufmError> {
        match atom {
            "true" => return Ok(Context::TRUE),
            "false" => return Ok(Context::FALSE),
            _ => {}
        }
        let Some((name, tag)) = atom.rsplit_once(':') else {
            return Err(self.error("variables must be written name:sort"));
        };
        let sort = match tag {
            "b" => Sort::Bool,
            "t" => Sort::Term,
            "m" => Sort::Mem,
            _ => return Err(self.error("unknown sort tag (expected b, t, or m)")),
        };
        Ok(self.ctx.var(name, sort))
    }

    fn args(&mut self) -> Result<Vec<ExprId>, EufmError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b')') || self.peek().is_none() {
                return Ok(out);
            }
            out.push(self.expr()?);
        }
    }

    fn compound(&mut self, head: &str) -> Result<ExprId, EufmError> {
        match head {
            "and" => {
                let xs = self.args()?;
                Ok(self.ctx.and(xs))
            }
            "or" => {
                let xs = self.args()?;
                Ok(self.ctx.or(xs))
            }
            "not" => {
                let a = self.expr()?;
                Ok(self.ctx.not(a))
            }
            "ite" => {
                let c = self.expr()?;
                let t = self.expr()?;
                let e = self.expr()?;
                Ok(self.ctx.ite(c, t, e))
            }
            "=" => {
                let a = self.expr()?;
                let b = self.expr()?;
                Ok(self.ctx.eq(a, b))
            }
            "read" => {
                let m = self.expr()?;
                let a = self.expr()?;
                Ok(self.ctx.read(m, a))
            }
            "write" => {
                let m = self.expr()?;
                let a = self.expr()?;
                let d = self.expr()?;
                Ok(self.ctx.write(m, a, d))
            }
            "uf" => {
                let name = self.atom()?;
                let args = self.args()?;
                Ok(self.ctx.uf(&name, args))
            }
            "up" => {
                let name = self.atom()?;
                let args = self.args()?;
                Ok(self.ctx.up(&name, args))
            }
            _ => self.token().map(|_| unreachable!()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::to_sexpr;

    fn roundtrip(src: &str) {
        let mut ctx = Context::new();
        let e = from_sexpr(&mut ctx, src).expect("parse");
        let printed = to_sexpr(&ctx, e);
        let mut ctx2 = Context::new();
        let e2 = from_sexpr(&mut ctx2, &printed).expect("reparse");
        assert_eq!(to_sexpr(&ctx2, e2), printed);
    }

    #[test]
    fn roundtrips() {
        roundtrip("(= a:t b:t)");
        roundtrip("(and x:b (not y:b) (= a:t b:t))");
        roundtrip("(ite x:b (uf f a:t) (uf f b:t))");
        roundtrip("(read (write rf:m a:t d:t) b:t)");
        roundtrip("(up p a:t b:t)");
        roundtrip("true");
        roundtrip("false");
    }

    #[test]
    fn parse_errors_are_reported() {
        let mut ctx = Context::new();
        assert!(from_sexpr(&mut ctx, "(and x:b").is_err());
        assert!(from_sexpr(&mut ctx, "(bogus a:t)").is_err());
        assert!(from_sexpr(&mut ctx, "a").is_err());
        assert!(from_sexpr(&mut ctx, "a:q").is_err());
        assert!(from_sexpr(&mut ctx, "(= a:t b:t) extra").is_err());
        assert!(from_sexpr(&mut ctx, "").is_err());
    }

    #[test]
    fn parser_reuses_context_variables() {
        let mut ctx = Context::new();
        let a1 = from_sexpr(&mut ctx, "a:t").expect("parse");
        let a2 = ctx.tvar("a");
        assert_eq!(a1, a2);
    }
}
